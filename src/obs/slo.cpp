#include "obs/slo.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mgrid::obs {

namespace {

/// Quantile from one merged fixed-range histogram: nearest-rank over the
/// cumulative bucket counts with linear interpolation inside the winning
/// bucket. Underflow counts as <= lo; overflow answers with the tracked
/// window maximum (the histogram cannot resolve beyond its range).
double histogram_quantile(const stats::Histogram& histogram, double q,
                          double window_max) {
  const std::size_t total = histogram.total();
  if (total == 0) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(total)));
  std::size_t cumulative = histogram.underflow();
  if (rank <= cumulative) return histogram.bucket_lo(0);
  for (std::size_t b = 0; b < histogram.bucket_count(); ++b) {
    const std::size_t in_bucket = histogram.count(b);
    if (rank <= cumulative + in_bucket) {
      const double fraction =
          in_bucket == 0
              ? 1.0
              : static_cast<double>(rank - cumulative) /
                    static_cast<double>(in_bucket);
      return histogram.bucket_lo(b) +
             fraction * (histogram.bucket_hi(b) - histogram.bucket_lo(b));
    }
    cumulative += in_bucket;
  }
  return window_max;
}

}  // namespace

const char* slo_state_name(SloState state) noexcept {
  switch (state) {
    case SloState::kOk:
      return "ok";
    case SloState::kWarn:
      return "warn";
    case SloState::kPage:
      return "page";
  }
  return "unknown";
}

const SloSliReport* SloReport::find(std::string_view name) const noexcept {
  for (const SloSliReport& sli : slis) {
    if (sli.name == name) return &sli;
  }
  return nullptr;
}

double SloWindowStats::burn_rate(
    const SloObjective& objective) const noexcept {
  const double budget = 1.0 - objective.target_fraction;
  if (count == 0 || !(budget > 0.0)) return 0.0;
  return bad_fraction() / budget;
}

void SloMonitor::Sli::observe(double sample) {
  Epoch& epoch = ring[head];
  ++epoch.count;
  if (sample > objective.threshold) ++epoch.bad;
  epoch.max = std::max(epoch.max, sample);
  epoch.histogram.add(sample);
}

void SloMonitor::Sli::roll_to(std::int64_t epoch_index) {
  if (epoch_index - ring[head].index >=
      static_cast<std::int64_t>(ring.size())) {
    // The whole ring is older than the window: reset wholesale instead of
    // rotating once per skipped epoch (a wall-clock caller that slept for
    // hours would otherwise spin here).
    for (Epoch& slot : ring) {
      slot.index = -1;
      slot.count = 0;
      slot.bad = 0;
      slot.max = 0.0;
      slot.histogram = stats::Histogram(0.0, range_hi, buckets);
    }
    head = 0;
    ring[head].index = epoch_index;
    return;
  }
  while (ring[head].index < epoch_index) {
    const std::int64_t next = ring[head].index + 1;
    head = (head + 1) % ring.size();
    Epoch& slot = ring[head];
    slot.index = next;
    slot.count = 0;
    slot.bad = 0;
    slot.max = 0.0;
    slot.histogram = stats::Histogram(0.0, range_hi, buckets);
  }
}

SloWindowStats SloMonitor::Sli::window(std::size_t epochs) const {
  SloWindowStats out;
  stats::Histogram merged(0.0, range_hi, buckets);
  const std::size_t take = std::min(epochs, ring.size());
  for (std::size_t i = 0; i < take; ++i) {
    const Epoch& epoch = ring[(head + ring.size() - i) % ring.size()];
    if (epoch.index < 0) continue;
    out.count += epoch.count;
    out.bad += epoch.bad;
    out.max = std::max(out.max, epoch.max);
    merged.merge(epoch.histogram);
  }
  // Clamp to the tracked maximum: when every sample lands in one coarse
  // bucket, mid-bucket interpolation must not report a quantile above the
  // largest sample actually seen.
  out.p50 = std::min(histogram_quantile(merged, 0.50, out.max), out.max);
  out.p95 = std::min(histogram_quantile(merged, 0.95, out.max), out.max);
  out.p99 = std::min(histogram_quantile(merged, 0.99, out.max), out.max);
  return out;
}

namespace {

void validate_options(const SloOptions& options) {
  if (!(options.epoch_seconds > 0.0)) {
    throw std::invalid_argument("SloMonitor: epoch_seconds must be > 0");
  }
  if (options.window_epochs == 0 || options.short_epochs == 0 ||
      options.short_epochs > options.window_epochs) {
    throw std::invalid_argument(
        "SloMonitor: need 1 <= short_epochs <= window_epochs");
  }
  if (!(options.latency_range_seconds > 0.0) ||
      !(options.staleness_range_seconds > 0.0) ||
      options.latency_buckets == 0 || options.staleness_buckets == 0) {
    throw std::invalid_argument("SloMonitor: histogram shape must be > 0");
  }
}

}  // namespace

SloMonitor::Sli SloMonitor::make_sli(std::string name, SloObjective objective,
                                     double hi, std::size_t buckets) const {
  Sli sli;
  sli.name = std::move(name);
  sli.objective = objective;
  sli.range_hi = hi;
  sli.buckets = buckets;
  sli.ring.reserve(options_.window_epochs);
  for (std::size_t i = 0; i < options_.window_epochs; ++i) {
    sli.ring.emplace_back(hi, buckets);
  }
  sli.ring[0].index = 0;
  return sli;
}

SloMonitor::SloMonitor(SloOptions options) : options_(options) {
  validate_options(options_);
  slis_.push_back(make_sli("lookup_latency", options_.lookup,
                           options_.latency_range_seconds,
                           options_.latency_buckets));
  slis_.push_back(make_sli("update_latency", options_.update,
                           options_.latency_range_seconds,
                           options_.latency_buckets));
  slis_.push_back(make_sli("staleness", options_.staleness,
                           options_.staleness_range_seconds,
                           options_.staleness_buckets));
}

SloMonitor::SloMonitor(std::vector<SloSliSpec> specs, SloOptions options)
    : options_(options) {
  validate_options(options_);
  if (specs.empty()) {
    throw std::invalid_argument("SloMonitor: need at least one SLI spec");
  }
  for (SloSliSpec& spec : specs) {
    if (!(spec.range_hi > 0.0) || spec.buckets == 0) {
      throw std::invalid_argument("SloMonitor: histogram shape must be > 0");
    }
    slis_.push_back(make_sli(std::move(spec.name), spec.objective,
                             spec.range_hi, spec.buckets));
  }
}

void SloMonitor::bind_registry(MetricsRegistry& registry) {
  const std::lock_guard<std::mutex> lock(mutex_);
  gauges_.clear();
  for (const Sli& sli : slis_) {
    SliGauges gauges;
    gauges.state = registry.gauge(
        "mgrid_slo_state", {{"sli", sli.name}},
        "SLO state: 0 = ok, 1 = warn, 2 = page");
    gauges.burn_short = registry.gauge(
        "mgrid_slo_burn_rate", {{"sli", sli.name}, {"window", "short"}},
        "Error-budget burn rate (1.0 = spending exactly the budget)");
    gauges.burn_long = registry.gauge(
        "mgrid_slo_burn_rate", {{"sli", sli.name}, {"window", "long"}},
        "Error-budget burn rate (1.0 = spending exactly the budget)");
    gauges.p50 = registry.gauge("mgrid_slo_p50", {{"sli", sli.name}},
                                "Long-window p50 of the SLI");
    gauges.p99 = registry.gauge("mgrid_slo_p99", {{"sli", sli.name}},
                                "Long-window p99 of the SLI");
    gauges.max = registry.gauge("mgrid_slo_max", {{"sli", sli.name}},
                                "Long-window maximum of the SLI");
    gauges_.push_back(gauges);
  }
  bound_ = true;
  refresh_gauges_locked(report_locked());
}

void SloMonitor::observe_lookup(double seconds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  slis_[0].observe(seconds);
}

void SloMonitor::observe_update(double seconds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  slis_[1].observe(seconds);
}

void SloMonitor::observe_staleness(double seconds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  slis_[2].observe(seconds);
}

void SloMonitor::observe(std::string_view name, double sample) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (Sli& sli : slis_) {
    if (sli.name == name) {
      sli.observe(sample);
      return;
    }
  }
}

void SloMonitor::roll_locked(double now) {
  const auto epoch = static_cast<std::int64_t>(
      std::floor(now / options_.epoch_seconds));
  if (epoch <= current_epoch_) return;  // clamp: time never runs backwards
  epochs_seen_ += static_cast<std::size_t>(
      std::min<std::int64_t>(epoch - current_epoch_,
                             static_cast<std::int64_t>(options_.window_epochs)));
  epochs_seen_ = std::min(epochs_seen_, options_.window_epochs);
  current_epoch_ = epoch;
  for (Sli& sli : slis_) sli.roll_to(epoch);
}

void SloMonitor::advance(double now) {
  const std::lock_guard<std::mutex> lock(mutex_);
  now_ = std::max(now_, now);
  roll_locked(now);
  if (bound_) refresh_gauges_locked(report_locked());
}

SloReport SloMonitor::report_locked() const {
  SloReport out;
  out.now = now_;
  out.epoch_seconds = options_.epoch_seconds;
  out.epochs_filled = epochs_seen_;
  for (const Sli& sli : slis_) {
    SloSliReport entry;
    entry.name = sli.name;
    entry.objective = sli.objective;
    entry.short_window = sli.window(options_.short_epochs);
    entry.long_window = sli.window(options_.window_epochs);
    const double burn_short = entry.short_window.burn_rate(sli.objective);
    const double burn_long = entry.long_window.burn_rate(sli.objective);
    if (burn_short >= options_.page_burn && burn_long >= options_.page_burn) {
      entry.state = SloState::kPage;
    } else if (burn_short >= options_.warn_burn &&
               burn_long >= options_.warn_burn) {
      entry.state = SloState::kWarn;
    }
    out.overall = std::max(out.overall, entry.state);
    out.slis.push_back(std::move(entry));
  }
  return out;
}

SloReport SloMonitor::report() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return report_locked();
}

void SloMonitor::refresh_gauges_locked(const SloReport& report) {
  for (std::size_t i = 0; i < report.slis.size() && i < gauges_.size(); ++i) {
    const SloSliReport& sli = report.slis[i];
    SliGauges& gauges = gauges_[i];
    gauges.state.set(static_cast<double>(static_cast<int>(sli.state)));
    gauges.burn_short.set(sli.short_window.burn_rate(sli.objective));
    gauges.burn_long.set(sli.long_window.burn_rate(sli.objective));
    gauges.p50.set(sli.long_window.p50);
    gauges.p99.set(sli.long_window.p99);
    gauges.max.set(sli.long_window.max);
  }
}

}  // namespace mgrid::obs

// Minimal embedded HTTP/1.1 server for live observability endpoints.
//
// Dependency-free (POSIX sockets only): one accept thread feeds a bounded
// connection queue drained by a small fixed pool of worker threads. Each
// connection serves exactly one request (`Connection: close` semantics — a
// scrape is one round trip, keep-alive buys nothing but lifecycle bugs;
// pipelined bytes after the first head are ignored, the response closes the
// connection) and is bounded in every dimension: header bytes (431 beyond
// max_request_bytes), a declared body (413 — the admin plane is read-only,
// judged by Content-Length/Transfer-Encoding, not by how the bytes happened
// to land in recv()), wall time
// (SO_RCVTIMEO/SO_SNDTIMEO) and queued connections (excess accepts get an
// immediate 503 and close, so a scrape storm cannot pile up file
// descriptors).
//
// stop() is graceful and idempotent: the listener is shut down to unblock
// accept(), already-queued connections are still served, and every thread
// is joined before stop() returns — no leaked threads or sockets under
// ASan/TSan, which the CI presets assert.
//
// The server itself is route-agnostic; the registered Handler maps requests
// to responses (see serve/admin.h for the mgrid admin surface). http_get()
// is the matching minimal blocking client used by the test suites and the
// scrape-under-load bench.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace mgrid::obs::http {

/// One parsed request. Header names are lower-cased; values are trimmed.
struct Request {
  std::string method;   ///< "GET", "POST", ... (upper-case as received).
  std::string target;   ///< Raw request target, e.g. "/statusz?verbose=1".
  std::string path;     ///< Target up to '?', e.g. "/statusz".
  std::string query;    ///< After '?', "" when absent.
  std::string version;  ///< "HTTP/1.1" or "HTTP/1.0".
  std::vector<std::pair<std::string, std::string>> headers;

  /// First header with this (lower-case) name, nullptr when absent.
  [[nodiscard]] const std::string* header(std::string_view name) const;
};

struct Response {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;

  [[nodiscard]] static Response text(int status, std::string body);
  [[nodiscard]] static Response json(int status, std::string body);
  [[nodiscard]] static Response not_found();
};

/// Standard reason phrase for a status code ("OK", "Not Found", ...).
[[nodiscard]] const char* status_reason(int status) noexcept;

struct ServerOptions {
  /// Loopback by default: the admin plane is an operator surface, not a
  /// public API. Set "0.0.0.0" explicitly to expose it.
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral; the bound port is readable via Server::port().
  std::uint16_t port = 0;
  /// Worker threads serving queued connections (>= 1).
  std::size_t worker_threads = 2;
  /// Accepted-but-unserved connection bound; excess gets 503 + close.
  std::size_t max_queued_connections = 64;
  /// Request head (request line + headers) byte bound; 431 beyond.
  std::size_t max_request_bytes = 16 * 1024;
  /// Per-connection socket read/write timeout.
  double io_timeout_seconds = 5.0;
};

/// Monotonic server counters (snapshot copy).
struct ServerStats {
  std::uint64_t accepted = 0;       ///< Connections accepted.
  /// Well-formed requests parsed. Counted exactly once per request after
  /// the full head has been assembled — a head trickling in byte-by-byte
  /// across many recv() calls (slowloris) still counts as one.
  std::uint64_t requests = 0;
  std::uint64_t served = 0;         ///< Responses written (any status).
  std::uint64_t rejected_busy = 0;  ///< 503s from a full connection queue.
  std::uint64_t bad_requests = 0;   ///< 400/413/431 protocol rejections.
  std::uint64_t io_errors = 0;      ///< Timeouts / resets mid-request.
};

using Handler = std::function<Response(const Request&)>;

class Server {
 public:
  /// The handler runs on worker threads and must be thread-safe. It is
  /// invoked for every well-formed request regardless of method.
  Server(ServerOptions options, Handler handler);
  ~Server();  ///< Implies stop().

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the accept/worker threads. Throws
  /// std::runtime_error on socket/bind failure or when already started.
  void start();

  /// Graceful shutdown: stops accepting, serves what is already queued,
  /// joins every thread. Idempotent; a stopped server cannot be restarted.
  void stop();

  [[nodiscard]] bool running() const noexcept;
  /// Bound port (resolves port 0 after start()); 0 before start().
  [[nodiscard]] std::uint16_t port() const noexcept;
  [[nodiscard]] ServerStats stats() const;

 private:
  void accept_main();
  void worker_main();
  void serve_connection(int fd);
  void write_response(int fd, const Response& response, bool head_only);

  ServerOptions options_;
  Handler handler_;

  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  bool stopped_ = false;

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::deque<int> pending_;  ///< Accepted fds awaiting a worker.

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> rejected_busy_{0};
  std::atomic<std::uint64_t> bad_requests_{0};
  std::atomic<std::uint64_t> io_errors_{0};

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
};

/// Minimal blocking GET client (tests, benches, smoke scripts). Returns
/// ok=false with `error` set on connect/timeout/protocol failure; headers
/// beyond the status line are parsed but only Content-Type is retained.
struct ClientResponse {
  bool ok = false;
  int status = 0;
  std::string content_type;
  std::string body;
  std::string error;
};

[[nodiscard]] ClientResponse http_get(const std::string& host,
                                      std::uint16_t port,
                                      const std::string& target,
                                      double timeout_seconds = 5.0);

}  // namespace mgrid::obs::http

// Per-LU decision event log: one structured LuDecisionRecord per MN per
// sampled tick, assembled incrementally as the LU walks the pipeline
// (sample -> gateway -> channel -> filter verdict -> broker -> estimator ->
// scoring) and exported as a versioned JSONL/CSV document
// (mgrid-eventlog-v1).
//
// Injection mirrors obs::MetricsRegistry exactly: a ScopedEventLog installs
// a log for the current thread (sweep workers and threaded federation
// workers inherit their parent's log), eventlog_enabled() is a single
// relaxed atomic load so fully-disabled call sites cost one load + one
// never-taken branch, and export sorts records by (sim time, node id) so
// the serialized document is byte-identical regardless of worker count.
//
// Layering: mg_obs sits below geo/mobility/net, so records hold only
// primitives — region and classified state are single-char codes ('R'oad /
// 'B'uilding / 'G'ate, 'S'top / 'R'andom / 'L'inear) that the writers
// expand to words.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace mgrid::obs {

/// Final verdict on one sampled position.
enum class LuDecision : std::uint8_t {
  kNone = 0,          ///< Record begun but no verdict reached (e.g. in flight).
  kSent,              ///< LU forwarded to the broker.
  kSuppressed,        ///< LU reached the filter and was suppressed.
  kDeviceSuppressed,  ///< Suppressed on the device by a pushed DTH.
  kLostOnAir,         ///< LU lost by the wireless channel model.
  kBatteryDead,       ///< MN battery empty; nothing transmitted.
};

/// Why the verdict came out the way it did.
enum class LuReason : std::uint8_t {
  kNone = 0,       ///< No reason recorded.
  kPolicy,         ///< Non-distance policy decided (ideal/time/prediction).
  kFirstReport,    ///< First sample of this MN: always sent.
  kBeyondDth,      ///< Displacement exceeded the threshold.
  kBelowDth,       ///< Displacement within the threshold.
  kForcedRefresh,  ///< Bounded-silence override forced the LU through.
  kDeviceDth,      ///< Device-side filter held it back.
  kChannelLoss,    ///< Channel dropped it before the filter saw it.
  kBatteryEmpty,   ///< Energy model ran dry.
};

[[nodiscard]] const char* to_string(LuDecision decision) noexcept;
[[nodiscard]] const char* to_string(LuReason reason) noexcept;

/// One MN sample's full lifecycle. Fields start at "unset" sentinels
/// (-1 ids, '?' codes, '-' channel) and are filled in as pipeline stages
/// annotate the record.
struct LuDecisionRecord {
  std::uint32_t mn = 0;
  double t = 0.0;
  double true_x = 0.0;
  double true_y = 0.0;
  char region = '?';  ///< 'R' road, 'B' building, 'G' gate.
  std::int64_t gateway = -1;
  bool handover = false;
  char state = '?';  ///< Classified pattern: 'S' stop, 'R' random, 'L' linear.
  std::int64_t cluster = -1;
  double cluster_speed = 0.0;
  double dth = 0.0;
  double moved = 0.0;  ///< Displacement since the last transmitted LU.
  LuDecision decision = LuDecision::kNone;
  LuReason reason = LuReason::kNone;
  char channel = '-';  ///< 'D' delivered, 'L' lost, '-' no uplink attempt.
  bool broker_rx = false;
  double vx = 0.0;  ///< Velocity hint the broker fed its estimator.
  double vy = 0.0;
  bool estimated = false;    ///< Broker coasted an estimate at this tick.
  bool est_clamped = false;  ///< Horizon clamp engaged while estimating.
  bool est_snapped = false;  ///< Map-matcher snapped the estimate to a road.
  bool scored = false;
  double est_x = 0.0;
  double est_y = 0.0;
  double error = 0.0;  ///< Distance truth -> broker view when scored.
};

struct EventLogOptions {
  /// Max records retained; further begins are counted as dropped.
  std::size_t capacity = std::size_t{1} << 20;
  /// Record only MNs with id % sample_every == 0 (1 = every MN).
  std::uint32_t sample_every = 1;
  /// Lock shards (records are sharded by MN id).
  std::size_t shards = 16;
};

/// Run-level header context stamped into the exported document so the
/// offline analyzer can recompute rates without the result JSON.
struct EventLogRunInfo {
  double duration = 0.0;
  double sample_period = 0.0;
  double bucket_width = 0.0;
  std::uint64_t seed = 0;
  std::string filter;
  std::string estimator;
  std::string scoring;
  /// Estimator smoothing factor (0 = factory default for the name).
  double estimator_alpha = 0.0;
  /// Estimate horizon clamp in seconds (0 = unclamped).
  double forecast_horizon = 0.0;
  bool map_match = false;
  /// Federation cycles between an MN sampling a position and the broker
  /// receiving the LU (MN -> ADF -> broker). Replay drivers need it to
  /// reconstruct broker arrival ticks from sample timestamps.
  std::uint32_t pipeline_depth = 0;
};

class EventLog {
 public:
  EventLog() : EventLog(EventLogOptions{}) {}
  explicit EventLog(EventLogOptions options);

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// True when `mn` falls inside the sampling stride.
  [[nodiscard]] bool wants(std::uint32_t mn) const noexcept {
    return options_.sample_every <= 1 || mn % options_.sample_every == 0;
  }

  /// Opens (or re-opens) the record for (mn, t) with ground truth. All
  /// later amendments for keys that were never begun (sampled out or
  /// dropped at capacity) are silently ignored. Returns the record (or
  /// nullptr when sampled out / dropped); see locate() for pointer
  /// stability.
  LuDecisionRecord* begin(std::uint32_t mn, double t, double x, double y,
                          char region);

  /// Locked lookup of the record for (mn, t); nullptr when absent. The
  /// returned pointer stays valid until clear() — records live in node-
  /// based maps, so rehashing never moves them. Used by the thread-local
  /// cursor to amend the active record without re-hashing per annotation;
  /// cross-thread writes are safe as long as no two threads write the same
  /// member concurrently (the pipeline's federation barriers guarantee
  /// this for the decision/reason members; all other members have a single
  /// writing stage).
  [[nodiscard]] LuDecisionRecord* locate(std::uint32_t mn, double t);

  /// Like locate() but opens the record on demand (same sampling/capacity
  /// rules as begin()).
  [[nodiscard]] LuDecisionRecord* open(std::uint32_t mn, double t);

  /// Applies `fn(LuDecisionRecord&)` under the shard lock if the record
  /// exists. Returns false when the key is absent. With `create` the
  /// record is opened on demand (same sampling/capacity rules as begin()):
  /// used by annotations that may race the same-tick begin() in threaded
  /// federation mode, so the final record is order-independent.
  template <typename Fn>
  bool amend(std::uint32_t mn, double t, Fn&& fn, bool create = false) {
    if (!wants(mn)) return false;
    Shard& shard = shard_for(mn);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.records.find(Key{mn, t});
    if (it == shard.records.end()) {
      if (!create) return false;
      it = open_locked(shard, mn, t);
      if (it == shard.records.end()) return false;  // dropped at capacity
    }
    fn(it->second);
    return true;
  }

  void set_run_info(EventLogRunInfo info);
  [[nodiscard]] EventLogRunInfo run_info() const;

  [[nodiscard]] std::uint64_t recorded() const noexcept {
    return recorded_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint32_t sample_every() const noexcept {
    return options_.sample_every;
  }

  /// All records sorted by (t, mn) — deterministic regardless of which
  /// threads produced them.
  [[nodiscard]] std::vector<LuDecisionRecord> records() const;

  /// Serializes to the mgrid-eventlog-v1 JSONL document (header line with
  /// schema/run info, then one object per record, unset fields omitted).
  [[nodiscard]] std::string to_jsonl() const;
  /// Same records as CSV with a fixed column set.
  [[nodiscard]] std::string to_csv() const;

  /// Drops every record and resets the counters (run info is kept).
  void clear();

 private:
  struct Key {
    std::uint32_t mn;
    double t;
    bool operator==(const Key& other) const noexcept {
      return mn == other.mn &&
             std::bit_cast<std::uint64_t>(t) ==
                 std::bit_cast<std::uint64_t>(other.t);
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const noexcept {
      std::uint64_t x =
          std::bit_cast<std::uint64_t>(key.t) ^
          (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(key.mn) + 1));
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ULL;
      x ^= x >> 27;
      return static_cast<std::size_t>(x);
    }
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<Key, LuDecisionRecord, KeyHash> records;
  };

  /// Inserts the record for (mn, t) — caller holds the shard lock. Returns
  /// end() when the log is at capacity (the drop is counted).
  std::unordered_map<Key, LuDecisionRecord, KeyHash>::iterator open_locked(
      Shard& shard, std::uint32_t mn, double t);

  Shard& shard_for(std::uint32_t mn) noexcept {
    return *shards_[mn % shards_.size()];
  }
  const Shard& shard_for(std::uint32_t mn) const noexcept {
    return *shards_[mn % shards_.size()];
  }

  EventLogOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<std::uint64_t> dropped_{0};
  mutable std::mutex run_info_mutex_;
  EventLogRunInfo run_info_;
};

/// Writes JSONL (or CSV when `path` ends in ".csv") to `path`. Throws
/// std::runtime_error when the file cannot be written.
void write_eventlog_file(const std::string& path, const EventLog& log);

namespace detail {
/// Count of live ScopedEventLog installs across all threads; nonzero means
/// some thread is capturing, so producer guards must take the slow path.
extern std::atomic<std::uint32_t> g_eventlog_installs;
/// Swaps the calling thread's event log pointer, returning the previous one.
EventLog* exchange_current_event_log(EventLog* log) noexcept;
}  // namespace detail

/// The one relaxed load every producer call site pays when no log is
/// installed anywhere.
[[nodiscard]] inline bool eventlog_enabled() noexcept {
  return detail::g_eventlog_installs.load(std::memory_order_relaxed) != 0;
}

/// The calling thread's installed log, or nullptr.
[[nodiscard]] EventLog* current_event_log() noexcept;

/// RAII per-thread install, mirroring obs::ScopedRegistry: sweep and
/// federation workers install their parent's log so concurrent jobs never
/// cross-contaminate.
class ScopedEventLog {
 public:
  explicit ScopedEventLog(EventLog& log) noexcept
      : previous_(detail::exchange_current_event_log(&log)) {
    detail::g_eventlog_installs.fetch_add(1, std::memory_order_relaxed);
  }
  ~ScopedEventLog() {
    detail::g_eventlog_installs.fetch_sub(1, std::memory_order_relaxed);
    detail::exchange_current_event_log(previous_);
  }
  ScopedEventLog(const ScopedEventLog&) = delete;
  ScopedEventLog& operator=(const ScopedEventLog&) = delete;

 private:
  EventLog* previous_;
};

// Annotation points for the pipeline stages. Every function is an
// out-of-line no-op when the calling thread has no log installed; call
// sites still guard with `if (obs::eventlog_enabled())` so the disabled
// cost stays one relaxed load without any call.
//
// Stages that run deep inside core/net/estimation (classifier, clustering,
// DTH computation, distance test, channel draw, horizon clamp, map snap)
// cannot name the MN/tick they serve, so the thread that drives a sample
// through them first points a thread-local cursor at the record
// (set_cursor / the cursor side of sample()) and the deep stages amend
// through it.
namespace evt {

namespace detail {
/// True while the calling thread's cursor points at (or may create) a live
/// record. The inline annotation wrappers below gate on this one
/// thread-local bool, so under a sampling stride the nodes that are
/// sampled *out* pay a TLS load + branch per deep-stage site instead of an
/// out-of-line call.
extern thread_local bool t_cursor_live;
void gateway_impl(std::int64_t gateway_id, bool handover);
void channel_outcome_impl(bool delivered);
void classified_impl(char state);
void clustered_impl(std::int64_t cluster, double cluster_speed);
void threshold_impl(double dth);
void df_outcome_impl(bool transmit, double moved, bool first_report);
void forced_refresh_impl();
void estimate_clamped_impl();
void estimate_snapped_impl();
}  // namespace detail

/// Begins the record with ground truth and points the cursor at it.
void sample(std::uint32_t mn, double t, double x, double y, char region);
/// Points the cursor at an existing record (e.g. when the filter federate
/// replays a received LU through the ADF).
void set_cursor(std::uint32_t mn, double t) noexcept;
void clear_cursor() noexcept;

// --- cursor-based deep-stage annotations ---
inline void gateway(std::int64_t gateway_id, bool handover) {
  if (detail::t_cursor_live) detail::gateway_impl(gateway_id, handover);
}
inline void channel_outcome(bool delivered) {
  if (detail::t_cursor_live) detail::channel_outcome_impl(delivered);
}
inline void classified(char state) {
  if (detail::t_cursor_live) detail::classified_impl(state);
}
inline void clustered(std::int64_t cluster, double cluster_speed) {
  if (detail::t_cursor_live) detail::clustered_impl(cluster, cluster_speed);
}
inline void threshold(double dth) {
  if (detail::t_cursor_live) detail::threshold_impl(dth);
}
/// Raw distance-filter outcome: transmit/suppress + displacement, with the
/// first-report special case.
inline void df_outcome(bool transmit, double moved, bool first_report) {
  if (detail::t_cursor_live) {
    detail::df_outcome_impl(transmit, moved, first_report);
  }
}
/// Bounded-silence override turned a suppression into a send.
inline void forced_refresh() {
  if (detail::t_cursor_live) detail::forced_refresh_impl();
}
inline void estimate_clamped() {
  if (detail::t_cursor_live) detail::estimate_clamped_impl();
}
inline void estimate_snapped() {
  if (detail::t_cursor_live) detail::estimate_snapped_impl();
}

// --- explicit-key annotations (callers know mn/t) ---
/// Filter federate's final word: decision + the numbers behind it. Keeps a
/// more specific reason already recorded by a deep stage; otherwise marks
/// the verdict as plain policy.
void verdict(std::uint32_t mn, double t, bool transmit, double moved,
             double dth, std::int64_t cluster);
void device_suppressed(std::uint32_t mn, double t, double dth);
void battery_dead(std::uint32_t mn, double t);
/// `vx`/`vy` echo the velocity hint delivered with the LU so a replay can
/// feed the broker's estimator the exact observation sequence.
void broker_received(std::uint32_t mn, double t, double vx, double vy);
void broker_estimated(std::uint32_t mn, double t);
void scored(std::uint32_t mn, double t, double est_x, double est_y,
            double error);

}  // namespace evt
}  // namespace mgrid::obs

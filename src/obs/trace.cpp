#include "obs/trace.h"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <utility>

#include "util/json.h"

namespace mgrid::obs {

std::uint32_t trace_thread_id() noexcept {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

TraceRecorder::TraceRecorder(std::size_t capacity)
    : capacity_(capacity), epoch_(std::chrono::steady_clock::now()) {
  if (capacity == 0) {
    throw std::invalid_argument("TraceRecorder: capacity must be > 0");
  }
  ring_.reserve(capacity);
}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder recorder;
  return recorder;
}

void TraceRecorder::set_clock(std::function<double()> clock) {
  std::lock_guard lock(mutex_);
  clock_ = std::move(clock);
}

void TraceRecorder::clear() {
  std::lock_guard lock(mutex_);
  ring_.clear();
  next_ = 0;
  recorded_ = 0;
  first_dropped_wall_us_ = 0;
  last_dropped_wall_us_ = 0;
}

std::uint64_t TraceRecorder::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void TraceRecorder::set_process_name(std::string name) {
  std::lock_guard lock(mutex_);
  process_name_ = std::move(name);
}

void TraceRecorder::set_thread_name(std::uint32_t tid, std::string name) {
  std::lock_guard lock(mutex_);
  if (name.empty()) {
    thread_names_.erase(tid);
  } else {
    thread_names_[tid] = std::move(name);
  }
}

void TraceRecorder::push(TraceEvent event) {
  event.tid = trace_thread_id();
  std::lock_guard lock(mutex_);
  event.sim_time = clock_ ? clock_() : 0.0;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
    next_ = ring_.size() % capacity_;
  } else {
    // Overwriting the oldest event: remember the wall-clock extent of what
    // the ring has lost so the export can report the gap.
    const std::uint64_t lost_wall_us = ring_[next_].wall_us;
    if (recorded_ == ring_.size()) first_dropped_wall_us_ = lost_wall_us;
    last_dropped_wall_us_ = lost_wall_us;
    ring_[next_] = std::move(event);
    next_ = (next_ + 1) % capacity_;
  }
  ++recorded_;
}

void TraceRecorder::instant(std::string_view name, std::string_view category) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = std::string(name);
  event.category = std::string(category);
  event.phase = 'i';
  event.wall_us = now_us();
  push(std::move(event));
}

void TraceRecorder::begin(std::string_view name, std::string_view category) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = std::string(name);
  event.category = std::string(category);
  event.phase = 'B';
  event.wall_us = now_us();
  push(std::move(event));
}

void TraceRecorder::end(std::string_view name, std::string_view category) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = std::string(name);
  event.category = std::string(category);
  event.phase = 'E';
  event.wall_us = now_us();
  push(std::move(event));
}

void TraceRecorder::complete(std::string_view name, std::string_view category,
                             std::uint64_t wall_start_us,
                             std::uint64_t duration_us) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = std::string(name);
  event.category = std::string(category);
  event.phase = 'X';
  event.wall_us = wall_start_us;
  event.duration_us = duration_us;
  push(std::move(event));
}

TraceRecorder::Span::Span(TraceRecorder& recorder, std::string_view name,
                          std::string_view category)
    : recorder_(recorder.enabled() ? &recorder : nullptr) {
  if (recorder_ == nullptr) return;
  name_ = std::string(name);
  category_ = std::string(category);
  start_us_ = recorder_->now_us();
}

TraceRecorder::Span::~Span() {
  if (recorder_ == nullptr) return;
  recorder_->complete(name_, category_, start_us_,
                      recorder_->now_us() - start_us_);
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::lock_guard lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
    return out;
  }
  // Full ring: the oldest surviving event sits at next_.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % capacity_]);
  }
  return out;
}

std::size_t TraceRecorder::size() const {
  std::lock_guard lock(mutex_);
  return ring_.size();
}

std::uint64_t TraceRecorder::dropped() const {
  std::lock_guard lock(mutex_);
  return recorded_ - ring_.size();
}

TraceRecorder::DroppedInfo TraceRecorder::dropped_info() const {
  std::lock_guard lock(mutex_);
  DroppedInfo info;
  info.count = recorded_ - ring_.size();
  if (info.count > 0) {
    info.first_wall_us = first_dropped_wall_us_;
    info.last_wall_us = last_dropped_wall_us_;
  }
  return info;
}

std::string TraceRecorder::to_chrome_json() const {
  const std::vector<TraceEvent> snapshot = events();
  const DroppedInfo dropped_events_info = dropped_info();
  const std::uint64_t dropped_events = dropped_events_info.count;
  std::string process_name;
  // (name, tid) sorted: the sort index is a function of the names alone, so
  // the same set of named threads always groups identically regardless of
  // which thread happened to grab which trace id first.
  std::vector<std::pair<std::string, std::uint32_t>> named_threads;
  {
    std::lock_guard lock(mutex_);
    process_name = process_name_;
    named_threads.reserve(thread_names_.size());
    for (const auto& [tid, name] : thread_names_) {
      named_threads.emplace_back(name, tid);
    }
  }
  std::sort(named_threads.begin(), named_threads.end());

  util::JsonWriter json;
  json.begin_object();
  json.key("traceEvents").begin_array();
  // Metadata first: viewers apply 'M' events to everything that follows.
  // These are synthesized at export time and never occupy ring slots.
  if (!process_name.empty()) {
    json.begin_object();
    json.field("name", "process_name");
    json.field("ph", "M");
    json.field("pid", static_cast<std::uint64_t>(1));
    json.key("args").begin_object();
    json.field("name", process_name);
    json.end_object();
    json.end_object();
  }
  for (std::size_t i = 0; i < named_threads.size(); ++i) {
    const auto& [thread_name, tid] = named_threads[i];
    json.begin_object();
    json.field("name", "thread_name");
    json.field("ph", "M");
    json.field("pid", static_cast<std::uint64_t>(1));
    json.field("tid", static_cast<std::uint64_t>(tid));
    json.key("args").begin_object();
    json.field("name", thread_name);
    json.end_object();
    json.end_object();
    json.begin_object();
    json.field("name", "thread_sort_index");
    json.field("ph", "M");
    json.field("pid", static_cast<std::uint64_t>(1));
    json.field("tid", static_cast<std::uint64_t>(tid));
    json.key("args").begin_object();
    json.field("sort_index", static_cast<std::uint64_t>(i));
    json.end_object();
    json.end_object();
  }
  for (const TraceEvent& event : snapshot) {
    json.begin_object();
    json.field("name", event.name);
    json.field("cat", event.category);
    json.field("ph", std::string_view(&event.phase, 1));
    json.field("ts", static_cast<std::uint64_t>(event.wall_us));
    if (event.phase == 'X') {
      json.field("dur", static_cast<std::uint64_t>(event.duration_us));
    }
    if (event.phase == 'i') {
      json.field("s", "g");  // global-scope instant
    }
    json.field("pid", static_cast<std::uint64_t>(1));
    json.field("tid", static_cast<std::uint64_t>(event.tid));
    json.key("args").begin_object();
    json.field("sim_time", event.sim_time);
    json.end_object();
    json.end_object();
  }
  json.end_array();
  json.field("displayTimeUnit", "ms");
  if (dropped_events > 0) {
    json.field("mgrid_dropped_events", dropped_events);
    json.field("mgrid_dropped_first_wall_us",
               static_cast<std::uint64_t>(dropped_events_info.first_wall_us));
    json.field("mgrid_dropped_last_wall_us",
               static_cast<std::uint64_t>(dropped_events_info.last_wall_us));
  }
  json.end_object();
  return json.str();
}

namespace {
thread_local TraceRecorder* t_trace_recorder = nullptr;
}  // namespace

namespace detail {

TraceRecorder* exchange_current_trace_recorder(
    TraceRecorder* recorder) noexcept {
  TraceRecorder* previous = t_trace_recorder;
  t_trace_recorder = recorder;
  return previous;
}

}  // namespace detail

TraceRecorder& current_trace_recorder() noexcept {
  TraceRecorder* recorder = t_trace_recorder;
  return recorder != nullptr ? *recorder : TraceRecorder::global();
}

}  // namespace mgrid::obs

// Per-LU latency attribution: stage-sliced spans through the serving
// pipeline (enqueue -> source-queue wait -> WAL append -> directory apply ->
// visible-to-lookup) with deterministic trace-id sampling and histogram
// exemplars.
//
// Sampling is a pure function of the LU's identity — a splitmix64-style hash
// of (source, mn, seq), no RNG, no per-thread state — so replaying the same
// stream with 1 worker or 8 selects the byte-identical span set (mirroring
// the eventlog determinism gates). A sampled span records wall-clock seconds
// per stage; the stage values tile the span exactly: their sum equals
// total_seconds by construction.
//
// Exemplars follow the Prometheus/OpenMetrics idiom: each sampled span is
// attached to the latency-histogram bucket its total lands in, so an SLO
// page can jump from "p99 spiked" to a concrete offending LU with its stage
// breakdown. The admin plane serves them at /tracez (mgrid-tracez-v1).
//
// The disabled path is one relaxed atomic load (no hash, no clock): the
// tracer is safe to leave wired into the hot ingest path.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mgrid::obs {

/// Pipeline stages a location update passes through, in cluster-wide
/// chronological order. A process-local span fills only the stages it
/// observed (the rest stay 0), so the sum-equals-total tiling invariant
/// holds for single-process and cross-process spans alike.
enum class LuStage : std::uint8_t {
  kRouterBatch = 0,    ///< router submit to batch flush (cluster only)
  kNet = 1,            ///< batch flush to shard receive (cluster only)
  kQueue = 2,          ///< source-queue wait (submit to worker pickup)
  kWal = 3,            ///< WAL append (+fsync) inside submit
  kApply = 4,          ///< directory apply_batch
  kVisible = 5,        ///< apply end to visible-to-lookup
  kFollowerApply = 6,  ///< replication-stream apply on a follower
};

inline constexpr std::size_t kLuStageCount = 7;

[[nodiscard]] const char* lu_stage_name(LuStage stage) noexcept;

/// The `source` value a router feeds SpanTracer::trace_id() for
/// cluster-wide sampling. A fixed, out-of-band constant (no shard computes
/// it as a queue index) so every router over the same ring — and any test
/// predicting the sampled set — derives identical trace ids from (mn, seq)
/// alone.
inline constexpr std::uint32_t kClusterTraceSource = 0xFFFFFFFFu;

/// CLOCK_MONOTONIC microseconds (steady_clock). The timestamp base for
/// cross-process trace propagation: monotonic clocks share the boot epoch,
/// so deltas are comparable between processes on one machine — which is
/// the only place stage attribution across a TCP hop is meaningful.
[[nodiscard]] std::uint64_t span_now_us() noexcept;

/// One completed, sampled per-LU span.
struct LuSpan {
  std::uint64_t trace_id = 0;
  std::uint32_t mn = 0;
  std::uint32_t seq = 0;
  std::uint32_t source = 0;
  std::uint32_t tid = 0;  ///< recording worker's trace thread id
  /// Completion wall timestamp, steady-clock microseconds (ordering and
  /// age comparisons only — not an absolute epoch).
  std::uint64_t wall_us = 0;
  /// End-to-end enqueue-to-visible seconds (== sum of stage_seconds).
  double total_seconds = 0.0;
  /// Seconds per LuStage, indexed by static_cast<size_t>(stage).
  std::array<double, kLuStageCount> stage_seconds{};
};

struct SpanTracerOptions {
  /// Sample an LU iff trace_id % sample_period == 0 (0 disables sampling).
  std::uint64_t sample_period = 64;
  /// Recent-span ring capacity; the oldest spans are dropped when full.
  std::size_t ring_capacity = 4096;
  /// Slowest spans kept per SLI.
  std::size_t top_k = 16;
  /// Mirror each recorded span's stages as 'X' events into the thread's
  /// current_trace_recorder() so they appear on the Perfetto timeline.
  bool emit_trace_events = true;
};

/// The latest sampled span that landed in one histogram bucket.
struct BucketExemplar {
  /// Bucket index; == bucket count for the overflow bucket.
  std::size_t bucket = 0;
  /// Inclusive upper bound of the bucket (+infinity for overflow).
  double le = 0.0;
  LuSpan span;
};

/// Snapshot of one SLI's exemplars and slowest spans.
struct SliSpans {
  std::string name;
  double lo = 0.0;
  double hi = 0.1;
  std::size_t buckets = 100;
  std::uint64_t recorded = 0;
  /// Non-empty buckets in ascending bucket order, latest span each.
  std::vector<BucketExemplar> exemplars;
  /// Slowest spans, descending total_seconds, at most top_k.
  std::vector<LuSpan> slowest;
};

struct SpanSnapshot {
  std::uint64_t sampled = 0;  ///< spans recorded over the tracer's lifetime
  std::uint64_t dropped = 0;  ///< spans pushed out of the recent ring
  std::uint64_t sample_period = 0;
  /// Recent spans, oldest first.
  std::vector<LuSpan> recent;
  std::vector<SliSpans> slis;
};

/// Records stage-sliced per-LU spans with deterministic sampling. All
/// mutation goes through record() under one mutex — spans arrive at
/// 1/sample_period of the LU rate, so the lock is cold by construction.
class SpanTracer {
 public:
  explicit SpanTracer(SpanTracerOptions options = {});

  /// Deterministic trace id: splitmix64-style mix of (source, mn, seq).
  /// Identical across processes, worker counts and platforms.
  [[nodiscard]] static std::uint64_t trace_id(std::uint32_t source,
                                              std::uint32_t mn,
                                              std::uint32_t seq) noexcept;

  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// True when this LU's span should be recorded. Disabled cost: one
  /// relaxed atomic load, nothing else.
  [[nodiscard]] bool sampled(std::uint32_t source, std::uint32_t mn,
                             std::uint32_t seq) const noexcept {
    if (!enabled_.load(std::memory_order_relaxed)) return false;
    const std::uint64_t period = options_.sample_period;
    return period != 0 && trace_id(source, mn, seq) % period == 0;
  }

  /// Declares an SLI's exemplar bucket layout (mirrors the latency
  /// histogram it annotates). Idempotent: re-registering an existing name
  /// keeps the first layout.
  void register_sli(std::string_view name, double lo, double hi,
                    std::size_t buckets);

  /// Records one completed span under `sli` (auto-registered with the
  /// default 0..0.1s/100-bucket layout when unknown).
  void record(std::string_view sli, const LuSpan& span);

  [[nodiscard]] SpanSnapshot snapshot() const;

  /// Drops all recorded spans and counters; SLI registrations are kept.
  void clear();

  [[nodiscard]] const SpanTracerOptions& options() const noexcept {
    return options_;
  }

 private:
  struct SliState {
    std::string name;
    double lo = 0.0;
    double hi = 0.1;
    std::size_t buckets = 100;
    std::uint64_t recorded = 0;
    /// buckets + 1 slots (last = overflow), latest span per bucket.
    std::vector<LuSpan> latest;
    std::vector<bool> filled;
    std::vector<LuSpan> slowest;  ///< descending total_seconds
  };

  SliState& sli_state_locked(std::string_view name, double lo, double hi,
                             std::size_t buckets);

  SpanTracerOptions options_;
  std::atomic<bool> enabled_{false};

  mutable std::mutex mutex_;
  std::vector<LuSpan> ring_;  ///< recent spans, ring over ring_capacity
  std::size_t next_ = 0;
  std::uint64_t recorded_total_ = 0;
  std::vector<SliState> slis_;  ///< registration order; small, linear scan
};

}  // namespace mgrid::obs

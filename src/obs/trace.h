// Sim-time-aware tracing: begin/end spans and instant events captured into a
// bounded ring buffer and exported as Chrome/Perfetto `trace_event` JSON
// (load the file in https://ui.perfetto.dev or chrome://tracing).
//
// Every event is stamped with BOTH clocks:
//   * wall time — microseconds of std::chrono::steady_clock since the
//     recorder was constructed (the trace viewer's timeline), and
//   * sim time  — whatever clock was installed with set_clock() (surfaced as
//     an event argument), so a slow wall-clock span can be correlated with
//     the simulation second it happened in.
//
// Recording is gated on the recorder's own enable flag (default off; a
// single relaxed atomic load when disabled) and is thread-safe: the threaded
// federation executor traces from worker threads.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mgrid::obs {

/// Small dense id of the calling thread — the `tid` every recorder stamps
/// into its events (first caller gets 1, then 2, ...). Public so pipeline
/// workers can name themselves via set_thread_name() and so span records can
/// carry the same id the trace timeline shows.
[[nodiscard]] std::uint32_t trace_thread_id() noexcept;

struct TraceEvent {
  std::string name;
  std::string category;
  /// Chrome trace phase: 'B' begin, 'E' end, 'X' complete, 'i' instant.
  char phase = 'i';
  /// Microseconds since recorder construction (steady clock).
  std::uint64_t wall_us = 0;
  /// Duration for 'X' (complete) events, microseconds.
  std::uint64_t duration_us = 0;
  /// Simulation time at capture (NaN-free: 0 when no clock installed).
  double sim_time = 0.0;
  /// Small integer id of the recording thread.
  std::uint32_t tid = 0;
};

class TraceRecorder {
 public:
  /// `capacity`: ring-buffer slots (> 0). When full, the oldest events are
  /// overwritten and counted as dropped.
  explicit TraceRecorder(std::size_t capacity = 1 << 14);

  /// The process-global recorder the built-in instrumentation uses.
  static TraceRecorder& global();

  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Installs the simulation-time stamp source (e.g. a SimulationKernel's
  /// now(), or a Federation's current grant). Pass nullptr to clear. The
  /// callable must stay valid until replaced.
  void set_clock(std::function<double()> clock);

  /// Drops all recorded events (capacity and clock are kept).
  void clear();

  void instant(std::string_view name, std::string_view category);
  void begin(std::string_view name, std::string_view category);
  void end(std::string_view name, std::string_view category);
  /// One 'X' event covering [wall_start_us, wall_start_us + duration_us].
  void complete(std::string_view name, std::string_view category,
                std::uint64_t wall_start_us, std::uint64_t duration_us);

  /// RAII span: records one complete ('X') event covering its lifetime.
  /// Does nothing (and takes no timestamps) while the recorder is disabled.
  class Span {
   public:
    Span(TraceRecorder& recorder, std::string_view name,
         std::string_view category);
    ~Span();
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

   private:
    TraceRecorder* recorder_;
    std::string name_;
    std::string category_;
    std::uint64_t start_us_ = 0;
  };

  [[nodiscard]] Span span(std::string_view name, std::string_view category) {
    return Span(*this, name, category);
  }

  /// Current wall timestamp, microseconds since construction.
  [[nodiscard]] std::uint64_t now_us() const;

  /// Events in capture order, oldest first (wraparound resolved).
  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Events overwritten because the ring was full.
  [[nodiscard]] std::uint64_t dropped() const;

  /// Wall-clock extent of the overwritten events, for judging how much of
  /// the timeline the ring lost. Timestamps are 0 while count is 0.
  struct DroppedInfo {
    std::uint64_t count = 0;
    std::uint64_t first_wall_us = 0;  ///< wall_us of the first overwritten event
    std::uint64_t last_wall_us = 0;   ///< wall_us of the latest overwritten event
  };
  [[nodiscard]] DroppedInfo dropped_info() const;

  /// Names the exported process ('M' process_name metadata event). Applies
  /// to future exports; empty clears it.
  void set_process_name(std::string name);

  /// Names a thread for the export ('M' thread_name metadata event), keyed
  /// by its trace_thread_id(). Named threads also get stable
  /// thread_sort_index metadata — sorted by (name, tid) — so Perfetto
  /// groups e.g. ingest workers together instead of by raw-tid order.
  void set_thread_name(std::uint32_t tid, std::string name);

  /// Chrome trace_event JSON ("traceEvents" array form). Metadata events
  /// (process_name / thread_name / thread_sort_index) come first, then each
  /// recorded event with args.sim_time; dropped-event metadata is attached
  /// when relevant.
  [[nodiscard]] std::string to_chrome_json() const;

 private:
  void push(TraceEvent event);

  std::atomic<bool> enabled_{false};
  std::size_t capacity_;
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mutex_;
  std::function<double()> clock_;
  std::string process_name_;
  std::map<std::uint32_t, std::string> thread_names_;
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;        // ring slot the next event lands in
  std::uint64_t recorded_ = 0;  // lifetime total
  std::uint64_t first_dropped_wall_us_ = 0;
  std::uint64_t last_dropped_wall_us_ = 0;
};

namespace detail {
/// Swaps the calling thread's trace-recorder override, returning the
/// previous one (nullptr = fall back to TraceRecorder::global()).
TraceRecorder* exchange_current_trace_recorder(TraceRecorder* recorder) noexcept;
}  // namespace detail

/// The recorder the built-in instrumentation should use on this thread:
/// the innermost ScopedTraceRecorder install, else the process global.
/// Mirrors obs::current_registry().
[[nodiscard]] TraceRecorder& current_trace_recorder() noexcept;

/// RAII per-thread recorder install, mirroring obs::ScopedRegistry: while
/// alive, current_trace_recorder() on this thread returns `recorder`, so
/// sweep workers keep their spans out of the global ring.
class ScopedTraceRecorder {
 public:
  explicit ScopedTraceRecorder(TraceRecorder& recorder) noexcept
      : previous_(detail::exchange_current_trace_recorder(&recorder)) {}
  ~ScopedTraceRecorder() {
    detail::exchange_current_trace_recorder(previous_);
  }
  ScopedTraceRecorder(const ScopedTraceRecorder&) = delete;
  ScopedTraceRecorder& operator=(const ScopedTraceRecorder&) = delete;

 private:
  TraceRecorder* previous_;
};

}  // namespace mgrid::obs

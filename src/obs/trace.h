// Sim-time-aware tracing: begin/end spans and instant events captured into a
// bounded ring buffer and exported as Chrome/Perfetto `trace_event` JSON
// (load the file in https://ui.perfetto.dev or chrome://tracing).
//
// Every event is stamped with BOTH clocks:
//   * wall time — microseconds of std::chrono::steady_clock since the
//     recorder was constructed (the trace viewer's timeline), and
//   * sim time  — whatever clock was installed with set_clock() (surfaced as
//     an event argument), so a slow wall-clock span can be correlated with
//     the simulation second it happened in.
//
// Recording is gated on the recorder's own enable flag (default off; a
// single relaxed atomic load when disabled) and is thread-safe: the threaded
// federation executor traces from worker threads.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mgrid::obs {

struct TraceEvent {
  std::string name;
  std::string category;
  /// Chrome trace phase: 'B' begin, 'E' end, 'X' complete, 'i' instant.
  char phase = 'i';
  /// Microseconds since recorder construction (steady clock).
  std::uint64_t wall_us = 0;
  /// Duration for 'X' (complete) events, microseconds.
  std::uint64_t duration_us = 0;
  /// Simulation time at capture (NaN-free: 0 when no clock installed).
  double sim_time = 0.0;
  /// Small integer id of the recording thread.
  std::uint32_t tid = 0;
};

class TraceRecorder {
 public:
  /// `capacity`: ring-buffer slots (> 0). When full, the oldest events are
  /// overwritten and counted as dropped.
  explicit TraceRecorder(std::size_t capacity = 1 << 14);

  /// The process-global recorder the built-in instrumentation uses.
  static TraceRecorder& global();

  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Installs the simulation-time stamp source (e.g. a SimulationKernel's
  /// now(), or a Federation's current grant). Pass nullptr to clear. The
  /// callable must stay valid until replaced.
  void set_clock(std::function<double()> clock);

  /// Drops all recorded events (capacity and clock are kept).
  void clear();

  void instant(std::string_view name, std::string_view category);
  void begin(std::string_view name, std::string_view category);
  void end(std::string_view name, std::string_view category);
  /// One 'X' event covering [wall_start_us, wall_start_us + duration_us].
  void complete(std::string_view name, std::string_view category,
                std::uint64_t wall_start_us, std::uint64_t duration_us);

  /// RAII span: records one complete ('X') event covering its lifetime.
  /// Does nothing (and takes no timestamps) while the recorder is disabled.
  class Span {
   public:
    Span(TraceRecorder& recorder, std::string_view name,
         std::string_view category);
    ~Span();
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

   private:
    TraceRecorder* recorder_;
    std::string name_;
    std::string category_;
    std::uint64_t start_us_ = 0;
  };

  [[nodiscard]] Span span(std::string_view name, std::string_view category) {
    return Span(*this, name, category);
  }

  /// Current wall timestamp, microseconds since construction.
  [[nodiscard]] std::uint64_t now_us() const;

  /// Events in capture order, oldest first (wraparound resolved).
  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Events overwritten because the ring was full.
  [[nodiscard]] std::uint64_t dropped() const;

  /// Chrome trace_event JSON ("traceEvents" array form). Each event carries
  /// args.sim_time; dropped-event metadata is attached when relevant.
  [[nodiscard]] std::string to_chrome_json() const;

 private:
  void push(TraceEvent event);

  std::atomic<bool> enabled_{false};
  std::size_t capacity_;
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mutex_;
  std::function<double()> clock_;
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;        // ring slot the next event lands in
  std::uint64_t recorded_ = 0;  // lifetime total
};

}  // namespace mgrid::obs

// Metrics federation: the router-side collector that turns N per-process
// admin planes into one cluster observability surface.
//
// A background thread scrapes each configured target's (shard or follower)
// admin endpoints on a fixed period:
//
//   /metrics   raw Prometheus text, stored verbatim and re-exported at
//              /clusterz?format=prom with `shard="<name>",role="<role>"`
//              labels injected into every series — the standard federation
//              relabeling, so one scrape of the router sees the whole
//              cluster without series collisions
//   /statusz   parsed (util::JsonValue) for the per-target tick cursor
//              (cluster.last_tick_t / last_tick) and ingest counters that
//              feed the derived cluster SLIs
//   /tracez    sampled span snapshots, merged by trace id: a shard's span
//              carries the router_batch/net/queue/wal/apply/visible stages
//              of a cluster trace, the follower's span the follower_apply
//              stage — the union is the full cross-process span tree,
//              recorded into the router's own SpanTracer under the
//              "cluster_e2e" SLI so the router's /tracez serves per-hop
//              exemplars for the whole cluster
//
// Derived cluster SLIs (multi-window burn-rate SLO monitor, obs/slo.h):
//
//   cluster_e2e               end-to-end seconds of each merged cluster
//                             trace (router submit -> visible on the shard)
//   availability:<target>     0 per successful scrape round, 1 per failure
//                             — a SIGKILLed shard burns its error budget at
//                             ~100x and pages within the short window
//   replication_lag:<target>  cluster tick time (cluster_now) minus the
//                             target's last applied tick time: a paused
//                             follower or dead shard grows it, a resumed
//                             one drives it back to 0
//   ingest_share:<shard>      relative deviation of the shard's share of
//                             accepted LUs from the 1/N the ring's bounded
//                             spread predicts
//
// ready() surfaces the worst SLI: any paging indicator fails readiness
// with a reason naming the SLI (and therefore the burning target) — wired
// into the router's /readyz by the driver.
//
// Thread-safety: every public method takes the collector mutex or defers
// to an internally-locked component; scrapes do their I/O without the
// mutex held so a slow target never blocks /clusterz.
#pragma once

#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/http.h"
#include "obs/slo.h"
#include "obs/span.h"
#include "util/json.h"

namespace mgrid::cluster {

struct FederationTarget {
  std::string name;  ///< Label value; ring node name for shards.
  std::string role = "shard";  ///< "shard" or "follower".
  std::string host = "127.0.0.1";
  std::uint16_t admin_port = 0;
};

struct FederationOptions {
  double scrape_period_seconds = 0.5;
  double scrape_timeout_seconds = 1.0;
  /// Epoch/window/burn shape of the cluster SLO monitor. The per-SLI
  /// objectives below override the triple defaults inside.
  obs::SloOptions slo;
  obs::SloObjective e2e{0.25, 0.99};          ///< merged trace seconds
  obs::SloObjective availability{0.5, 0.99};  ///< scrape failures (0/1)
  obs::SloObjective replication_lag{1.5, 0.99};  ///< tick-time seconds behind
  obs::SloObjective ingest_share{0.5, 0.99};  ///< relative deviation vs 1/N
  /// Router tracer: merged cluster span trees are recorded here under the
  /// "cluster_e2e" SLI (served by the router's /tracez). Optional; must
  /// outlive the collector.
  obs::SpanTracer* spans = nullptr;
  /// The cluster's tick clock (the router's last tick t): the minuend of
  /// the replication-lag SLI. Unset disables the lag SLI's samples.
  std::function<double()> cluster_now;
};

/// Snapshot of one target's scrape state.
struct FederationTargetStatus {
  std::string name;
  std::string role;
  bool up = false;  ///< Last scrape round succeeded.
  std::uint64_t scrapes = 0;
  std::uint64_t failures = 0;
  double last_tick_t = 0.0;
  std::uint64_t last_tick = 0;
  double replication_lag_seconds = 0.0;
  double lag_records = 0.0;  ///< mgrid_replication_subscriber_lag_records
  double ingest_accepted = 0.0;
  /// Fraction of the LUs the cluster accepted over the last scrape round
  /// (per-round delta, so it stays meaningful across shard restarts).
  double ingest_share = 0.0;
};

class FederationCollector {
 public:
  FederationCollector(std::vector<FederationTarget> targets,
                      FederationOptions options);
  ~FederationCollector();  ///< Implies stop().

  FederationCollector(const FederationCollector&) = delete;
  FederationCollector& operator=(const FederationCollector&) = delete;

  /// Starts the background scrape thread (idempotent).
  void start();
  /// Stops and joins it (idempotent).
  void stop();

  /// One synchronous scrape round (the thread's body; public so tests can
  /// drive the collector without timing dependence).
  void scrape_once();

  /// False while any cluster SLI pages; `reason` names the SLI — and,
  /// through the per-target SLI naming, the burning shard/follower.
  [[nodiscard]] bool ready(std::string* reason = nullptr) const;

  /// Serves GET /clusterz: mgrid-clusterz-v1 JSON by default,
  /// ?format=prom re-exports the scraped /metrics union with shard=/role=
  /// labels plus the derived cluster gauges.
  [[nodiscard]] obs::http::Response clusterz(
      const obs::http::Request& request) const;

  [[nodiscard]] std::vector<FederationTargetStatus> targets() const;

  /// The cluster SLO monitor (wire it into the router admin's slo hook so
  /// /statusz and /tracez join against the cluster objectives).
  [[nodiscard]] obs::SloMonitor& slo() noexcept { return slo_; }

  struct Stats {
    std::uint64_t rounds = 0;          ///< Scrape rounds completed.
    std::uint64_t scrapes = 0;         ///< Target scrapes attempted.
    std::uint64_t scrape_failures = 0;
    std::uint64_t traces_merged = 0;   ///< Distinct cluster trace ids seen.
    std::uint64_t spans_recorded = 0;  ///< Merged spans recorded/updated.
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct TargetState {
    FederationTarget config;
    bool up = false;
    std::uint64_t scrapes = 0;
    std::uint64_t failures = 0;
    double last_tick_t = 0.0;
    std::uint64_t last_tick = 0;
    double replication_lag_seconds = 0.0;
    double lag_records = 0.0;
    double ingest_accepted = 0.0;
    /// Accepted-counter reading at the previous round (NaN before the
    /// first), so shares are computed over per-round deltas — a restarted
    /// shard's counter reset must not read as minutes of starvation.
    double ingest_prev = std::nan("");
    double ingest_delta = 0.0;  ///< Accepted this round (0 while down).
    double ingest_share = 0.0;
    std::string metrics_text;  ///< Latest raw /metrics body.
  };

  /// One cluster trace's merged span; `fed` marks the e2e SLI sample sent.
  struct MergedTrace {
    obs::LuSpan span;
    bool fed = false;
  };

  void scrape_main();
  /// Merges one scraped span; returns true when a stage value grew (the
  /// span changed and should be re-recorded).
  bool merge_span_locked(const obs::LuSpan& span);
  void write_slo_json(util::JsonWriter& json) const;

  FederationOptions options_;

  mutable std::mutex mutex_;
  std::vector<TargetState> targets_;
  std::unordered_map<std::uint64_t, MergedTrace> traces_;
  std::uint64_t rounds_ = 0;
  std::uint64_t scrapes_ = 0;
  std::uint64_t scrape_failures_ = 0;
  std::uint64_t spans_recorded_ = 0;

  obs::SloMonitor slo_;

  std::mutex thread_mutex_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  bool running_ = false;
  std::thread thread_;
};

}  // namespace mgrid::cluster

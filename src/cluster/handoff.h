// Shard handoff: moving exactly the tracks a ring change reassigns.
//
// When a node joins or leaves, the consistent-hash ring moves only the keys
// that node gains or loses (cluster/ring.h); moved_mns() on the before/after
// rings names them. The new owner bootstraps each moved track from the old
// owner's durable state — the same snapshot + WAL-tail recipe crash
// recovery uses (serve/recovery.h), so a handoff is just a *filtered*
// recovery:
//
//   1. take (or fetch) the old owner's mgrid-snap-v1 image, restore only
//      the moved tracks (transfer_tracks);
//   2. replay the old owner's WAL records after the snapshot's cut,
//      filtered to the moved MNs (replay_wal_tail) — per-MN LU order is
//      preserved, so the moved tracks land bit-identical to the origin.
//
// The driver sequences the cutover (quiesce traffic for the moved range,
// transfer, flip the ring, resume); these helpers make each step exact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/directory.h"
#include "serve/snapshot.h"

namespace mgrid::cluster {

/// Restores into `to` only the `mns` tracks of a parsed snapshot. Returns
/// the number restored (tracks absent from the snapshot are not an error —
/// an MN that never sent an LU has no state to move).
std::size_t transfer_tracks(const serve::SnapshotData& snapshot,
                            const std::vector<std::uint32_t>& mns,
                            serve::ShardedDirectory& to);

/// Replays a WAL file's records after `from_record` into `to`, filtered to
/// the `mns` set: matching kLu records apply serially, kTick barriers
/// advance estimates (all barriers apply — the tick schedule is global).
/// Returns the number of LUs applied; -1 when the WAL cannot be read.
std::int64_t replay_wal_tail(const std::string& wal_path,
                             std::uint64_t from_record,
                             const std::vector<std::uint32_t>& mns,
                             serve::ShardedDirectory& to);

}  // namespace mgrid::cluster

// TCP front door of one shard node: accepts mgrid-lu-v1 connections and
// feeds the serving stack.
//
// Same shape as the obs/http admin server — one accept thread, a bounded
// queue of accepted connections, a small worker pool — but where an HTTP
// connection is one request, an LU connection is a long-lived stream: a
// worker owns it until the peer disconnects, decoding frames from a
// buffered reader and dispatching per type:
//
//   kLu            pipeline->submit() (no per-LU ack; queue-full rejects
//                  are counted and visible in /statusz, matching the ADF
//                  paper's fire-and-forget update model)
//   kTracedLu      pipeline->submit_traced() with the propagated trace
//                  context, stamping the receive time that closes the
//                  network stage of the cluster span
//   kTick          the cluster's barrier: flush the pipeline, append the
//                  WAL tick record, advance_estimates(t), notify the
//                  replication hub — the exact sequence the single-process
//                  driver runs, which is what keeps a shard's state
//                  bit-identical to its slice of a single-process run —
//                  then reply kAck
//   kLookup        directory lookup -> kLookupReply
//   kRegionQuery / directory spatial query -> kNeighbor stream + kQueryDone
//   kNearestQuery
//   kSubscribe     hand the socket over to the ReplicationHub (the worker
//                  is freed; the hub streams until the follower leaves)
//
// A malformed frame closes the connection (counted), never the server.
// stop() is graceful: the listener unblocks, live connections are shut
// down, every thread joins.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/replication.h"
#include "serve/directory.h"
#include "serve/ingest.h"
#include "serve/wal.h"
#include "serve/wire.h"

namespace mgrid::cluster {

struct LuServerOptions {
  /// Loopback by default, like the admin plane.
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral; read the bound port via port().
  std::uint16_t port = 0;
  /// Workers each own one live connection; size for the expected concurrent
  /// connection count (router + a few followers), not for request rate.
  std::size_t worker_threads = 4;
  /// Accepted-but-unowned connection bound; excess is closed immediately.
  std::size_t max_queued_connections = 16;
  /// Granularity at which an idle connection's worker polls for stop().
  double poll_seconds = 0.25;
};

struct LuServerHooks {
  serve::ShardedDirectory* directory = nullptr;  ///< Required.
  serve::IngestPipeline* pipeline = nullptr;     ///< Required.
  serve::WalWriter* wal = nullptr;               ///< Optional.
  ReplicationHub* replication = nullptr;         ///< Optional.
  /// Fired after each tick barrier completes (snapshotting drivers hook
  /// here). Runs on the connection's worker thread.
  std::function<void(double t, std::uint64_t tick)> on_tick;
};

/// Monotonic counters (snapshot copy).
struct LuServerStats {
  std::uint64_t connections = 0;       ///< Accepted.
  std::uint64_t rejected_busy = 0;     ///< Closed by the queue bound.
  std::uint64_t lus = 0;               ///< kLu frames received.
  std::uint64_t lus_rejected = 0;      ///< submit() refused (queue full).
  std::uint64_t ticks = 0;             ///< Barriers completed.
  std::uint64_t lookups = 0;
  std::uint64_t region_queries = 0;
  std::uint64_t nearest_queries = 0;
  std::uint64_t neighbors_sent = 0;    ///< kNeighbor frames written.
  std::uint64_t subscribes = 0;        ///< Sockets handed to replication.
  std::uint64_t bad_frames = 0;        ///< Connections dropped on decode.
};

class LuServer {
 public:
  LuServer(LuServerOptions options, LuServerHooks hooks);
  ~LuServer();  ///< Implies stop().

  LuServer(const LuServer&) = delete;
  LuServer& operator=(const LuServer&) = delete;

  /// Binds, listens, starts the threads. Throws std::runtime_error on
  /// socket failure or missing required hooks.
  void start();
  /// Graceful shutdown; idempotent. Live connections are dropped.
  void stop();

  [[nodiscard]] bool running() const noexcept;
  /// Bound port (resolves port 0 after start()); 0 before start().
  [[nodiscard]] std::uint16_t port() const noexcept { return bound_port_; }
  [[nodiscard]] LuServerStats stats() const;

 private:
  void accept_main();
  void worker_main();
  void serve_connection(int fd);
  /// Dispatches one frame; false = stop serving this connection.
  bool dispatch(FrameConn& conn, wire::Message& msg, bool& handed_off);

  LuServerOptions options_;
  LuServerHooks hooks_;

  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  bool stopped_ = false;

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::deque<int> pending_;
  /// Fds currently owned by workers; stop() shuts them down to unblock.
  std::set<int> active_;

  /// Serializes tick barriers: only one connection may run the
  /// flush/advance sequence at a time (the router sends one tick at a time,
  /// but a misbehaving second client must not corrupt the barrier).
  std::mutex barrier_mutex_;

  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> rejected_busy_{0};
  std::atomic<std::uint64_t> lus_{0};
  std::atomic<std::uint64_t> lus_rejected_{0};
  std::atomic<std::uint64_t> ticks_{0};
  std::atomic<std::uint64_t> lookups_{0};
  std::atomic<std::uint64_t> region_queries_{0};
  std::atomic<std::uint64_t> nearest_queries_{0};
  std::atomic<std::uint64_t> neighbors_sent_{0};
  std::atomic<std::uint64_t> subscribes_{0};
  std::atomic<std::uint64_t> bad_frames_{0};

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
};

}  // namespace mgrid::cluster

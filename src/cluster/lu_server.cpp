#include "cluster/lu_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <variant>

#include "obs/span.h"

namespace mgrid::cluster {

LuServer::LuServer(LuServerOptions options, LuServerHooks hooks)
    : options_(std::move(options)), hooks_(std::move(hooks)) {
  if (options_.worker_threads == 0) options_.worker_threads = 1;
  if (options_.poll_seconds <= 0.0) options_.poll_seconds = 0.25;
}

LuServer::~LuServer() { stop(); }

void LuServer::start() {
  if (running_.load() || stopped_) {
    throw std::runtime_error("LuServer: already started");
  }
  if (hooks_.directory == nullptr || hooks_.pipeline == nullptr) {
    throw std::runtime_error("LuServer: directory and pipeline are required");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("LuServer socket: ") +
                             std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("LuServer: bad bind address " +
                             options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("LuServer bind: " + error);
  }
  if (::listen(listen_fd_, 64) != 0) {
    const std::string error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("LuServer listen: " + error);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    bound_port_ = ntohs(bound.sin_port);
  }
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_main(); });
  workers_.reserve(options_.worker_threads);
  for (std::size_t i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

void LuServer::stop() {
  if (stopped_ || !running_.load()) {
    stopped_ = true;
    return;
  }
  stopping_.store(true);
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const int fd : active_) ::shutdown(fd, SHUT_RDWR);
  }
  work_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const int fd : pending_) ::close(fd);
    pending_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false);
  stopped_ = true;
}

bool LuServer::running() const noexcept { return running_.load(); }

LuServerStats LuServer::stats() const {
  LuServerStats s;
  s.connections = connections_.load(std::memory_order_relaxed);
  s.rejected_busy = rejected_busy_.load(std::memory_order_relaxed);
  s.lus = lus_.load(std::memory_order_relaxed);
  s.lus_rejected = lus_rejected_.load(std::memory_order_relaxed);
  s.ticks = ticks_.load(std::memory_order_relaxed);
  s.lookups = lookups_.load(std::memory_order_relaxed);
  s.region_queries = region_queries_.load(std::memory_order_relaxed);
  s.nearest_queries = nearest_queries_.load(std::memory_order_relaxed);
  s.neighbors_sent = neighbors_sent_.load(std::memory_order_relaxed);
  s.subscribes = subscribes_.load(std::memory_order_relaxed);
  s.bad_frames = bad_frames_.load(std::memory_order_relaxed);
  return s;
}

void LuServer::accept_main() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (stopping_.load()) return;
      if (errno == ECONNABORTED) continue;
      return;  // listener broken; workers still drain the queue
    }
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    bool rejected = false;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (pending_.size() >= options_.max_queued_connections) {
        rejected = true;
      } else {
        pending_.push_back(fd);
      }
    }
    if (rejected) {
      rejected_busy_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    work_cv_.notify_one();
  }
}

void LuServer::worker_main() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock,
                    [this] { return stopping_.load() || !pending_.empty(); });
      if (!pending_.empty()) {
        fd = pending_.front();
        pending_.pop_front();
      } else if (stopping_.load()) {
        return;
      }
    }
    if (fd >= 0) serve_connection(fd);
  }
}

void LuServer::serve_connection(int fd) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    active_.insert(fd);
  }
  {
    FrameConn conn(fd, options_.poll_seconds);
    bool handed_off = false;
    while (!handed_off) {
      wire::Message msg;
      if (!conn.recv_message(msg, /*idle_ok=*/true)) {
        if (conn.timed_out()) {
          if (stopping_.load()) break;
          continue;  // idle connection; poll again
        }
        if (conn.last_error().rfind("bad frame", 0) == 0) {
          bad_frames_.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      }
      if (!dispatch(conn, msg, handed_off)) break;
    }
    // conn's destructor closes the fd unless dispatch released it.
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  active_.erase(fd);
}

bool LuServer::dispatch(FrameConn& conn, wire::Message& msg,
                        bool& handed_off) {
  if (const auto* lu = std::get_if<wire::LuMsg>(&msg)) {
    lus_.fetch_add(1, std::memory_order_relaxed);
    if (!hooks_.pipeline->submit(*lu)) {
      lus_rejected_.fetch_add(1, std::memory_order_relaxed);
    }
    return true;
  }
  if (const auto* traced = std::get_if<wire::TracedLuMsg>(&msg)) {
    lus_.fetch_add(1, std::memory_order_relaxed);
    serve::IngestTraceContext trace;
    trace.trace_id = traced->trace.trace_id;
    trace.origin_us = traced->trace.origin_us;
    trace.send_us = traced->trace.send_us;
    // The network stage ends here: first point the shard owns the frame.
    trace.recv_us = obs::span_now_us();
    if (!hooks_.pipeline->submit_traced(traced->lu, trace)) {
      lus_rejected_.fetch_add(1, std::memory_order_relaxed);
    }
    return true;
  }
  if (const auto* tick = std::get_if<wire::TickMsg>(&msg)) {
    {
      // The single-process driver's barrier sequence, verbatim: flush (all
      // accepted LUs applied and WAL'd), tick record, estimate advance —
      // then replication, which snapshots/streams this exact state.
      const std::lock_guard<std::mutex> barrier(barrier_mutex_);
      hooks_.pipeline->flush();
      if (hooks_.wal != nullptr) hooks_.wal->append_tick(tick->t, tick->tick);
      hooks_.directory->advance_estimates(tick->t);
      if (hooks_.replication != nullptr) {
        hooks_.replication->on_tick(
            tick->t, tick->tick,
            hooks_.wal != nullptr ? hooks_.wal->records_appended() : 0);
      }
      if (hooks_.on_tick) hooks_.on_tick(tick->t, tick->tick);
    }
    ticks_.fetch_add(1, std::memory_order_relaxed);
    std::vector<std::uint8_t> reply;
    wire::encode(reply, wire::AckMsg{0, wire::AckStatus::kOk, tick->t});
    return conn.send(reply);
  }
  if (const auto* lookup = std::get_if<wire::LookupMsg>(&msg)) {
    lookups_.fetch_add(1, std::memory_order_relaxed);
    wire::LookupReplyMsg out;
    out.mn = lookup->mn;
    out.t = lookup->t;
    const auto entry = hooks_.directory->lookup(lookup->mn);
    if (entry.has_value()) {
      out.found = true;
      if (lookup->t > entry->t) {
        const auto belief =
            hooks_.directory->belief_at(lookup->mn, lookup->t);
        out.estimated = true;
        out.x = belief.has_value() ? belief->x : entry->position.x;
        out.y = belief.has_value() ? belief->y : entry->position.y;
      } else {
        out.estimated = entry->estimated;
        out.t = entry->t;
        out.x = entry->position.x;
        out.y = entry->position.y;
      }
    }
    std::vector<std::uint8_t> reply;
    wire::encode(reply, out);
    return conn.send(reply);
  }
  if (const auto* region = std::get_if<wire::RegionQueryMsg>(&msg)) {
    region_queries_.fetch_add(1, std::memory_order_relaxed);
    const std::vector<serve::Neighbor> hits = hooks_.directory->query_region(
        {region->x, region->y}, region->radius, region->max_results);
    std::vector<std::uint8_t> reply;
    for (const serve::Neighbor& hit : hits) {
      wire::encode(reply, wire::NeighborMsg{hit.mn, hit.distance,
                                            hit.position.x, hit.position.y});
    }
    wire::encode(reply, wire::QueryDoneMsg{
                            static_cast<std::uint32_t>(hits.size()), 0.0});
    neighbors_sent_.fetch_add(hits.size(), std::memory_order_relaxed);
    return conn.send(reply);
  }
  if (const auto* nearest = std::get_if<wire::NearestQueryMsg>(&msg)) {
    nearest_queries_.fetch_add(1, std::memory_order_relaxed);
    const std::vector<serve::Neighbor> hits =
        hooks_.directory->k_nearest({nearest->x, nearest->y}, nearest->k);
    std::vector<std::uint8_t> reply;
    for (const serve::Neighbor& hit : hits) {
      wire::encode(reply, wire::NeighborMsg{hit.mn, hit.distance,
                                            hit.position.x, hit.position.y});
    }
    wire::encode(reply, wire::QueryDoneMsg{
                            static_cast<std::uint32_t>(hits.size()), 0.0});
    neighbors_sent_.fetch_add(hits.size(), std::memory_order_relaxed);
    return conn.send(reply);
  }
  if (std::holds_alternative<wire::SubscribeMsg>(msg)) {
    if (hooks_.replication == nullptr) return false;  // not a primary
    const int raw = conn.release();
    if (raw < 0) {
      // Bytes were already buffered past the subscribe — a protocol
      // violation (the subscriber must not pipeline) — drop it.
      return false;
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      active_.erase(raw);  // the hub owns (and shuts down) the fd now
    }
    hooks_.replication->adopt(raw);
    subscribes_.fetch_add(1, std::memory_order_relaxed);
    handed_off = true;
    return true;
  }
  // Acks, replies and snapshot frames are server -> client only.
  bad_frames_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

}  // namespace mgrid::cluster

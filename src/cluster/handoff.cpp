#include "cluster/handoff.h"

#include <unordered_set>
#include <variant>

#include "serve/wal.h"

namespace mgrid::cluster {

std::size_t transfer_tracks(const serve::SnapshotData& snapshot,
                            const std::vector<std::uint32_t>& mns,
                            serve::ShardedDirectory& to) {
  const std::unordered_set<std::uint32_t> wanted(mns.begin(), mns.end());
  std::size_t restored = 0;
  for (const serve::SnapshotData::Track& track : snapshot.tracks) {
    if (wanted.find(track.mn) == wanted.end()) continue;
    const double* it = track.words.data();
    const double* end = it + track.words.size();
    if (to.restore_track(track.mn, it, end) && it == end) ++restored;
  }
  return restored;
}

std::int64_t replay_wal_tail(const std::string& wal_path,
                             std::uint64_t from_record,
                             const std::vector<std::uint32_t>& mns,
                             serve::ShardedDirectory& to) {
  serve::WalReadResult wal;
  try {
    wal = serve::read_wal(wal_path);
  } catch (const std::exception&) {
    return -1;
  }
  const std::unordered_set<std::uint32_t> wanted(mns.begin(), mns.end());
  std::int64_t applied = 0;
  std::uint64_t index = 0;
  for (const serve::wire::Message& record : wal.records) {
    const std::uint64_t record_number = ++index;
    if (record_number <= from_record) continue;
    if (const auto* lu = std::get_if<serve::wire::LuMsg>(&record)) {
      if (wanted.find(lu->mn) == wanted.end()) continue;
      if (to.update(lu->mn, lu->t, {lu->x, lu->y}, {lu->vx, lu->vy})) {
        ++applied;
      }
    } else if (const auto* tick =
                   std::get_if<serve::wire::TickMsg>(&record)) {
      to.advance_estimates(tick->t);
    }
  }
  return applied;
}

}  // namespace mgrid::cluster

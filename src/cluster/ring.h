// Consistent-hash ring: stable MN -> shard-node assignment.
//
// Each node contributes `vnodes` points on a 64-bit hash circle; an MN is
// owned by the node whose point is the first at or after the MN's key hash
// (wrapping past 2^64). The classic properties follow:
//
//   spread    a plain ring at 64 vnodes still has ~1/sqrt(64) = 12.5%
//             arc-length deviation, so lookups are *multi-probe*: the key
//             hashes to `probes` positions and the owner is the point with
//             the smallest forward distance over all of them. Dense regions
//             of the circle win probes that sparse regions would have
//             captured, which concentrates load toward uniform — the ring
//             property test asserts within ±10% at 64 vnodes/node;
//   minimal   adding or removing one node only moves the keys that node
//   movement  gains or loses; assignments between two surviving nodes never
//   movement  change. Multi-probe preserves this exactly: new points can
//             only *shrink* a probe's forward distance (so a changed winner
//             is always the new node), and removing a node only *grows* the
//             probes it was winning. This is what makes shard join/leave a
//             bounded handoff (cluster/handoff.h) instead of a reshuffle.
//
// Hashes are fixed for the protocol's lifetime: vnode points are
// splitmix64(fnv1a64("<name>#<vnode>")) and probe p of key mn is
// splitmix64(splitmix64(mn) + p * 0x9E3779B97F4A7C15) — all frozen,
// platform-stable primitives (util/rng.h). Router and shards may compute
// ownership independently and always agree.
//
// Not synchronized: the ring is a small value type; the router guards its
// instance with its own mutex.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mgrid::cluster {

struct RingOptions {
  /// Virtual nodes per physical node (>= 1). More vnodes = tighter spread,
  /// linearly larger lookup table.
  std::size_t vnodes = 64;
  /// Lookup probes per key (>= 1). More probes = tighter spread, linearly
  /// more binary searches per owner(); 1 degenerates to the classic ring.
  /// 21 is the multi-probe literature's sweet spot (~1.1x peak load even
  /// without vnodes).
  std::size_t probes = 21;
};

class HashRing {
 public:
  explicit HashRing(RingOptions options = {});

  /// Adds a node; false (ring unchanged) when the name is already present.
  /// Bumps version() on success.
  bool add_node(const std::string& name);
  /// Removes a node; false when absent. Bumps version() on success.
  bool remove_node(const std::string& name);

  /// The node owning `mn`. Requires a non-empty ring (throws
  /// std::logic_error otherwise — asking an empty ring is a driver bug).
  [[nodiscard]] const std::string& owner(std::uint32_t mn) const;

  /// Node names, sorted.
  [[nodiscard]] std::vector<std::string> nodes() const;
  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return nodes_.empty(); }

  /// Monotonic membership-change counter (starts at 0, +1 per successful
  /// add/remove). Surfaced in /statusz so operators can confirm every
  /// process converged on the same membership.
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

  /// The frozen key hash (splitmix64 of the MN id). Public so tests and
  /// handoff tooling reason about placement directly.
  [[nodiscard]] static std::uint64_t key_hash(std::uint32_t mn) noexcept;

 private:
  void rebuild_points();

  RingOptions options_;
  std::vector<std::string> nodes_;  ///< Sorted by name.
  /// Hash circle, sorted by point; the second element indexes nodes_ (an
  /// index, not a pointer, so the ring is trivially copyable). Ties
  /// (vanishingly rare) break by name so the table is deterministic
  /// regardless of insertion order.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> points_;
  std::uint64_t version_ = 0;
};

/// The MNs in `mns` whose owner differs between two rings — exactly the
/// tracks a membership change hands off.
[[nodiscard]] std::vector<std::uint32_t> moved_mns(
    const HashRing& before, const HashRing& after,
    const std::vector<std::uint32_t>& mns);

}  // namespace mgrid::cluster

// Client side of the mgrid-lu-v1 TCP transport.
//
// FrameConn wraps one connected socket with a buffered frame reader: recv()
// bytes accumulate until wire::decode_frame() yields a whole frame, hostile
// or truncated bytes surface as a typed error instead of a crash, and
// send() retries EINTR / short writes. It is the building block for both
// sides of the cluster plane — ShardClient here, the LU server's
// per-connection loop, and the follower's replication stream.
//
// ShardClient is the router's handle to one shard node: batched LU
// forwarding (fire-and-forget — per-LU acks would halve throughput for no
// information; rejects are visible in the shard's /statusz), tick barriers
// that await the shard's kAck, point lookups and spatial queries whose
// kNeighbor streams are read to the kQueryDone terminator. Not thread-safe:
// the router serializes access per shard.
//
// All blocking calls are bounded by the connect/io timeouts; a timeout or
// peer reset closes the connection and returns failure — the caller decides
// whether to reconnect (the router's health loop does).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "serve/wire.h"

namespace mgrid::cluster {

/// The serving plane's wire protocol, under the name cluster code uses.
namespace wire = serve::wire;

/// Blocking TCP connect with a wall deadline (non-blocking connect +
/// poll()). Returns the connected fd, or -1 with `error` set.
[[nodiscard]] int connect_tcp(const std::string& host, std::uint16_t port,
                              double timeout_seconds, std::string& error);

/// One connected socket with a buffered mgrid-lu-v1 frame reader. Owns the
/// fd. Move-only; not thread-safe.
class FrameConn {
 public:
  FrameConn() = default;
  /// Takes ownership of a connected fd and applies `io_timeout_seconds` as
  /// its SO_RCVTIMEO/SO_SNDTIMEO (0 = no timeout).
  FrameConn(int fd, double io_timeout_seconds);
  ~FrameConn();

  FrameConn(FrameConn&& other) noexcept;
  FrameConn& operator=(FrameConn&& other) noexcept;
  FrameConn(const FrameConn&) = delete;
  FrameConn& operator=(const FrameConn&) = delete;

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }
  void close();

  /// Relinquishes ownership of the fd without closing it (the LU server
  /// hands a kSubscribe connection to the replication hub this way). Only
  /// valid while the read buffer is empty — handing off buffered bytes
  /// would lose them. Returns -1 (and keeps ownership) otherwise.
  [[nodiscard]] int release();

  /// Sends every byte (EINTR/short-write safe). Closes the connection and
  /// returns false on error.
  bool send(const std::uint8_t* data, std::size_t size);
  bool send(const std::vector<std::uint8_t>& bytes) {
    return send(bytes.data(), bytes.size());
  }

  /// Receives exactly one frame, blocking up to the io timeout. Returns
  /// false on EOF, timeout, reset or a malformed frame (connection closed,
  /// last_error() says why). Timeouts while `idle_ok` is true are reported
  /// without closing — the LU server's poll-for-shutdown loop uses this.
  bool recv_message(wire::Message& out, bool idle_ok = false);

  /// True when the last recv_message(idle_ok=true) failure was only an idle
  /// timeout (connection still open).
  [[nodiscard]] bool timed_out() const noexcept { return timed_out_; }
  [[nodiscard]] const std::string& last_error() const noexcept {
    return error_;
  }

 private:
  int fd_ = -1;
  std::vector<std::uint8_t> buffer_;
  std::size_t buffer_pos_ = 0;  ///< Consumed prefix of buffer_.
  std::string error_;
  bool timed_out_ = false;
};

struct ShardClientOptions {
  std::string name;  ///< Ring node name (diagnostics).
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  double connect_timeout_seconds = 5.0;
  double io_timeout_seconds = 5.0;
};

/// One entry of a router batch: the LU plus its trace context when the
/// router's deterministic sampler selected it (trace_id == 0 = untraced,
/// encoded as a plain v1 kLu so old shards interoperate when tracing is
/// off). `origin_us` is when the router accepted the LU; the batch-flush
/// timestamp is stamped by send_lus() at encode time.
struct BatchLu {
  wire::LuMsg lu;
  std::uint64_t trace_id = 0;
  std::uint64_t origin_us = 0;
};

/// The router's connection to one shard's LU server.
class ShardClient {
 public:
  explicit ShardClient(ShardClientOptions options);

  [[nodiscard]] const ShardClientOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] bool connected() const noexcept { return conn_.connected(); }

  /// (Re)connects. Idempotent when already connected.
  bool connect(std::string* error = nullptr);
  void close() { conn_.close(); }

  /// Forwards a batch of LUs in one send. No reply expected.
  bool send_lus(const std::vector<wire::LuMsg>& batch);

  /// Forwards a mixed traced/untraced batch in one send: traced entries go
  /// out as kTracedLu frames stamped with one shared send_us (the batch
  /// flushes as a unit, so one timestamp is exact for every member).
  bool send_lus(const std::vector<BatchLu>& batch);

  /// Tick barrier: sends kTick and blocks for the shard's kAck ("all LUs
  /// before the tick are applied and estimates advanced to t").
  bool tick(double t, std::uint64_t tick);

  [[nodiscard]] std::optional<wire::LookupReplyMsg> lookup(std::uint32_t mn,
                                                           double t);

  /// Runs one spatial query and appends the shard's kNeighbor stream to
  /// `out` (order as received). Returns false on transport failure.
  bool query_region(const wire::RegionQueryMsg& query,
                    std::vector<wire::NeighborMsg>& out);
  bool k_nearest(const wire::NearestQueryMsg& query,
                 std::vector<wire::NeighborMsg>& out);

 private:
  bool read_neighbor_stream(std::vector<wire::NeighborMsg>& out);

  ShardClientOptions options_;
  FrameConn conn_;
  std::vector<std::uint8_t> scratch_;
};

}  // namespace mgrid::cluster

// Follower replication: primaries stream their per-MN LU substream.
//
// A follower connects to its primary's LU port and sends kSubscribe. At the
// primary's next tick barrier — a quiescent point: the pipeline is flushed
// and the router holds further LUs until the tick is acked — the hub
// encodes an mgrid-snap-v1 snapshot of the directory and queues it to the
// subscriber (kSnapshotChunk* + kSnapshotDone), then streams every
// subsequent accepted LU and tick barrier in order. Attaching at the
// barrier is what makes the bootstrap exact: the snapshot covers precisely
// the LUs before it, the stream carries precisely the LUs after it, and
// nothing is double-applied or lost.
//
// Directory state is a pure function of the per-MN LU substreams plus the
// tick schedule (serve/wal.h), the tap preserves per-MN order (it runs
// under the ingest source-queue lock, right after the WAL append), and the
// follower applies serially — so a follower that has consumed through tick
// T holds the primary's directory state at T to the bit, which the
// replication determinism test asserts at 0 m.
//
// Threading: on_lu() is called under an ingest source-queue lock and only
// buffers under the hub mutex (no I/O — blocking there would stall the
// ingest hot path). A dedicated streamer thread drains per-subscriber byte
// queues to their sockets; a subscriber whose queue exceeds the cap (dead
// or unrecoverably slow peer) is dropped, never allowed to wedge the
// primary.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/client.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "serve/directory.h"
#include "serve/wire.h"

namespace mgrid::cluster {

struct ReplicationOptions {
  /// Per-subscriber outgoing-byte cap; a subscriber whose backlog exceeds
  /// it is disconnected (slow-consumer protection).
  std::size_t max_buffered_bytes = 64u << 20;
  /// Snapshot chunking granularity (<= wire::kMaxChunkBytes).
  std::size_t chunk_bytes = 256u << 10;
};

class ReplicationHub {
 public:
  /// `directory` is the primary's directory (snapshot source); must outlive
  /// the hub. The streamer thread starts immediately.
  ReplicationHub(const serve::ShardedDirectory& directory,
                 ReplicationOptions options = {});
  ~ReplicationHub();  ///< Implies stop().

  ReplicationHub(const ReplicationHub&) = delete;
  ReplicationHub& operator=(const ReplicationHub&) = delete;

  /// The ingest pipeline's lu_tap target: buffers one accepted LU. Called
  /// under a source-queue lock — must stay allocation-light and never
  /// perform I/O.
  void on_lu(const wire::LuMsg& msg);

  /// The traced_lu_tap target: buffers a sampled LU with its trace context,
  /// so the follower end of the stream joins the same cluster trace.
  void on_lu(const wire::TracedLuMsg& msg);

  /// Tick barrier (must be quiescent: pipeline flushed, no concurrent
  /// submits). Broadcasts the buffered LUs + the tick frame to attached
  /// subscribers and bootstraps pending ones with a snapshot taken now.
  /// `wal_records` is the primary's WAL record count at this barrier.
  void on_tick(double t, std::uint64_t tick, std::uint64_t wal_records);

  /// Takes ownership of a subscriber socket (the LU server hands over the
  /// connection on kSubscribe). The subscriber is bootstrapped at the next
  /// tick barrier.
  void adopt(int fd);

  /// Blocks until every live subscriber's outgoing queue has been written
  /// to its socket (or `timeout_seconds` passes). Call before stop() when
  /// the tail of the stream matters — stop() drops undelivered bytes.
  bool drain(double timeout_seconds = 5.0);

  /// Disconnects every subscriber and joins the streamer. Idempotent.
  void stop();

  struct Stats {
    std::uint64_t subscribers = 0;      ///< Currently attached (post-snapshot).
    std::uint64_t pending = 0;          ///< Adopted, awaiting a barrier.
    std::uint64_t attached_total = 0;   ///< Bootstraps completed.
    std::uint64_t detached_total = 0;   ///< Disconnects (any reason).
    std::uint64_t dropped_slow = 0;     ///< Killed by the backlog cap.
    std::uint64_t lus_streamed = 0;     ///< LU frames broadcast (per sub).
    std::uint64_t bytes_streamed = 0;   ///< Bytes written to sockets.
    std::uint64_t snapshot_failures = 0;
    /// Records enqueued to subscribers and not yet fully flushed to their
    /// sockets (summed over subscribers; a paused follower grows it, a
    /// drained one drives it back to 0). Mirrored into the
    /// mgrid_replication_subscriber_lag_records gauge.
    std::uint64_t subscriber_lag_records = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Subscriber {
    int fd = -1;
    std::deque<std::uint8_t> outgoing;  ///< Guarded by the hub mutex.
    bool dead = false;
    /// Frames in `outgoing` (cleared when it fully drains): the per-
    /// subscriber slice of the lag-records gauge.
    std::uint64_t buffered_records = 0;
  };

  void streamer_main();
  /// Appends bytes to one subscriber's queue (hub mutex held). `records`
  /// is the frame count in the blob, for lag accounting.
  void enqueue_locked(Subscriber& sub, const std::uint8_t* data,
                      std::size_t size, std::uint64_t records);
  /// Recomputes the lag total and mirrors it into the gauge (mutex held).
  void refresh_lag_locked();

  const serve::ShardedDirectory& directory_;
  ReplicationOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable drained_cv_;
  bool stopping_ = false;
  /// True while the streamer is writing bytes it already dequeued (drain()
  /// must not report empty queues as delivered until the write lands).
  bool streaming_ = false;
  /// Accepted-LU frames since the last barrier, already wire-encoded.
  std::vector<std::uint8_t> live_;
  std::uint64_t live_lus_ = 0;
  std::vector<int> pending_fds_;
  std::vector<std::unique_ptr<Subscriber>> subscribers_;

  std::uint64_t attached_total_ = 0;
  std::uint64_t detached_total_ = 0;
  std::uint64_t dropped_slow_ = 0;
  std::uint64_t lus_streamed_ = 0;
  std::uint64_t snapshot_failures_ = 0;
  std::uint64_t subscriber_lag_records_ = 0;
  std::atomic<std::uint64_t> bytes_streamed_{0};
  obs::Gauge lag_gauge_;  ///< mgrid_replication_subscriber_lag_records

  std::thread streamer_;
};

struct FollowerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< Primary's LU port.
  double connect_timeout_seconds = 5.0;
  /// Also the granularity at which run() notices stop() while idle.
  double io_timeout_seconds = 0.25;
  /// Latency attribution: kTracedLu frames on the stream record a
  /// follower-apply span under the propagated trace id, SLI
  /// "follower_apply". Must outlive the follower. Optional.
  obs::SpanTracer* spans = nullptr;
};

/// Replays a primary's replication stream into a local directory.
class Follower {
 public:
  /// `directory` should be empty and configured identically to the
  /// primary's (same estimator stack — snapshot restore fails otherwise).
  Follower(serve::ShardedDirectory& directory, FollowerOptions options);

  /// Connects and subscribes. Returns false with `error` set on failure.
  bool connect(std::string* error = nullptr);

  /// Consumes the stream until the primary disconnects or stop() is
  /// called: snapshot chunks assemble and apply first, then each kLu is a
  /// serial directory update and each kTick an advance_estimates — exactly
  /// WAL-replay semantics. Returns true on clean end-of-stream.
  bool run();

  /// Unblocks run() (thread-safe, idempotent).
  void stop();

  struct Stats {
    bool snapshot_loaded = false;
    std::uint64_t snapshot_bytes = 0;
    std::uint64_t snapshot_wal_records = 0;
    std::uint64_t tracks_restored = 0;
    std::uint64_t lus_applied = 0;
    std::uint64_t lus_rejected = 0;
    std::uint64_t ticks_applied = 0;
    double last_tick_t = 0.0;
    std::uint64_t last_tick = 0;
  };
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const std::string& last_error() const noexcept {
    return error_;
  }

 private:
  serve::ShardedDirectory& directory_;
  FollowerOptions options_;
  FrameConn conn_;
  std::atomic<bool> stop_{false};
  mutable std::mutex stats_mutex_;
  Stats stats_;
  std::string error_;
};

}  // namespace mgrid::cluster

#include "cluster/federation.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string_view>
#include <utility>

namespace mgrid::cluster {

namespace {

/// Value of `name` in a query string ("a=1&b=2"), "" when absent.
std::string query_param(std::string_view query, std::string_view name) {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t end = query.find('&', pos);
    if (end == std::string_view::npos) end = query.size();
    const std::string_view pair = query.substr(pos, end - pos);
    const std::size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == name) {
      return std::string(pair.substr(eq + 1));
    }
    pos = end + 1;
  }
  return {};
}

std::string hex_trace_id(std::uint64_t id) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(id));
  return buffer;
}

/// The cluster SLI set: one cluster-wide e2e indicator plus availability /
/// replication-lag (every target) and ingest-share (shards only) indicators
/// named per target, so a burn-rate page names the burning node.
std::vector<obs::SloSliSpec> make_specs(
    const std::vector<FederationTarget>& targets,
    const FederationOptions& options) {
  std::vector<obs::SloSliSpec> specs;
  specs.push_back({"cluster_e2e", options.e2e, 1.0, 100});
  for (const FederationTarget& target : targets) {
    specs.push_back({"availability:" + target.name, options.availability,
                     2.0, 2});
    specs.push_back({"replication_lag:" + target.name,
                     options.replication_lag, 60.0, 120});
    if (target.role == "shard") {
      specs.push_back({"ingest_share:" + target.name, options.ingest_share,
                       2.0, 100});
    }
  }
  return specs;
}

/// Parses one span object of a scraped mgrid-tracez-v1 document. Trace ids
/// travel as 16-digit hex strings (JSON numbers are doubles).
obs::LuSpan parse_span(const util::JsonValue& node) {
  obs::LuSpan span;
  if (const util::JsonValue* id = node.find("trace_id");
      id != nullptr && id->kind() == util::JsonValue::Kind::kString) {
    span.trace_id = std::strtoull(id->as_string().c_str(), nullptr, 16);
  }
  span.mn = static_cast<std::uint32_t>(node.number_or("mn", 0.0));
  span.seq = static_cast<std::uint32_t>(node.number_or("seq", 0.0));
  span.source = static_cast<std::uint32_t>(node.number_or("source", 0.0));
  span.wall_us = static_cast<std::uint64_t>(node.number_or("wall_us", 0.0));
  if (const util::JsonValue* stages = node.find("stages")) {
    for (std::size_t i = 0; i < obs::kLuStageCount; ++i) {
      span.stage_seconds[i] = stages->number_or(
          obs::lu_stage_name(static_cast<obs::LuStage>(i)), 0.0);
    }
  }
  span.total_seconds = 0.0;
  for (const double stage : span.stage_seconds) span.total_seconds += stage;
  return span;
}

/// Collects every span (exemplars and slowest lists, all SLIs) out of a
/// tracez document. Spans without a nonzero trace id are skipped.
void collect_spans(const util::JsonValue& tracez,
                   std::vector<obs::LuSpan>& out) {
  const util::JsonValue* slis = tracez.find("slis");
  if (slis == nullptr || !slis->is_array()) return;
  for (const util::JsonValue& sli : slis->as_array()) {
    if (const util::JsonValue* exemplars = sli.find("exemplars");
        exemplars != nullptr && exemplars->is_array()) {
      for (const util::JsonValue& exemplar : exemplars->as_array()) {
        if (const util::JsonValue* trace = exemplar.find("trace")) {
          const obs::LuSpan span = parse_span(*trace);
          if (span.trace_id != 0) out.push_back(span);
        }
      }
    }
    if (const util::JsonValue* slowest = sli.find("slowest");
        slowest != nullptr && slowest->is_array()) {
      for (const util::JsonValue& node : slowest->as_array()) {
        const obs::LuSpan span = parse_span(node);
        if (span.trace_id != 0) out.push_back(span);
      }
    }
  }
}

/// Injects `shard="<name>",role="<role>"` into one Prometheus exposition
/// sample line (federation relabeling). Comment lines pass through the
/// caller unchanged.
std::string relabel_line(std::string_view line, const std::string& labels) {
  const std::size_t brace = line.find('{');
  const std::size_t space = line.find(' ');
  if (brace != std::string_view::npos &&
      (space == std::string_view::npos || brace < space)) {
    std::string out(line.substr(0, brace + 1));
    out += labels;
    out += ',';
    out += line.substr(brace + 1);
    return out;
  }
  if (space == std::string_view::npos) return std::string(line);
  std::string out(line.substr(0, space));
  out += '{';
  out += labels;
  out += '}';
  out += line.substr(space);
  return out;
}

/// One gauge's value out of a raw Prometheus text body (first series with
/// this name); NaN when absent.
double scrape_value(const std::string& text, std::string_view name) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string_view line(text.data() + pos, end - pos);
    if (line.substr(0, name.size()) == name &&
        (line.size() == name.size() || line[name.size()] == ' ' ||
         line[name.size()] == '{')) {
      const std::size_t space = line.rfind(' ');
      if (space != std::string_view::npos) {
        return std::strtod(std::string(line.substr(space + 1)).c_str(),
                           nullptr);
      }
    }
    pos = end + 1;
  }
  return std::nan("");
}

void write_window_json(util::JsonWriter& json, const char* name,
                       const obs::SloWindowStats& window,
                       const obs::SloObjective& objective) {
  json.key(name).begin_object();
  json.field("count", window.count);
  json.field("bad", window.bad);
  json.field("burn_rate", window.burn_rate(objective));
  json.field("p99", window.p99);
  json.field("max", window.max);
  json.end_object();
}

}  // namespace

FederationCollector::FederationCollector(std::vector<FederationTarget> targets,
                                         FederationOptions options)
    : options_(std::move(options)),
      slo_(make_specs(targets, options_), options_.slo) {
  for (FederationTarget& target : targets) {
    TargetState state;
    state.config = std::move(target);
    targets_.push_back(std::move(state));
  }
  if (options_.spans != nullptr) {
    options_.spans->register_sli("cluster_e2e", 0.0, 1.0, 100);
  }
}

FederationCollector::~FederationCollector() { stop(); }

void FederationCollector::start() {
  const std::lock_guard<std::mutex> lock(thread_mutex_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] { scrape_main(); });
}

void FederationCollector::stop() {
  {
    const std::lock_guard<std::mutex> lock(thread_mutex_);
    if (!running_) return;
    stop_ = true;
  }
  stop_cv_.notify_all();
  thread_.join();
  const std::lock_guard<std::mutex> lock(thread_mutex_);
  running_ = false;
}

void FederationCollector::scrape_main() {
  for (;;) {
    scrape_once();
    std::unique_lock<std::mutex> lock(thread_mutex_);
    if (stop_cv_.wait_for(
            lock,
            std::chrono::duration<double>(options_.scrape_period_seconds),
            [this] { return stop_; })) {
      return;
    }
  }
}

void FederationCollector::scrape_once() {
  // Snapshot the target list, then do all I/O without the mutex: a hung
  // target must never block /clusterz or ready().
  std::vector<FederationTarget> configs;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    configs.reserve(targets_.size());
    for (const TargetState& state : targets_) configs.push_back(state.config);
  }
  const double now =
      options_.cluster_now ? options_.cluster_now() : std::nan("");

  struct ScrapeResult {
    bool up = false;
    std::string metrics;
    double last_tick_t = std::nan("");
    std::uint64_t last_tick = 0;
    double ingest_accepted = std::nan("");
    std::vector<obs::LuSpan> spans;
  };
  std::vector<ScrapeResult> results(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const FederationTarget& target = configs[i];
    ScrapeResult& result = results[i];
    const double timeout = options_.scrape_timeout_seconds;
    const obs::http::ClientResponse status = obs::http::http_get(
        target.host, target.admin_port, "/statusz", timeout);
    if (!status.ok || status.status != 200) continue;
    try {
      const util::JsonValue doc = util::JsonValue::parse(status.body);
      if (const util::JsonValue* cluster = doc.find("cluster")) {
        result.last_tick_t = cluster->number_or("last_tick_t", std::nan(""));
        result.last_tick = static_cast<std::uint64_t>(
            cluster->number_or("last_tick", 0.0));
      }
      if (const util::JsonValue* ingest = doc.find("ingest")) {
        result.ingest_accepted = ingest->number_or("accepted", std::nan(""));
      }
    } catch (const util::JsonParseError&) {
      continue;
    }
    const obs::http::ClientResponse metrics = obs::http::http_get(
        target.host, target.admin_port, "/metrics", timeout);
    if (!metrics.ok || metrics.status != 200) continue;
    result.metrics = metrics.body;
    if (options_.spans != nullptr) {
      const obs::http::ClientResponse tracez = obs::http::http_get(
          target.host, target.admin_port, "/tracez", timeout);
      if (tracez.ok && tracez.status == 200) {
        try {
          collect_spans(util::JsonValue::parse(tracez.body), result.spans);
        } catch (const util::JsonParseError&) {
          // A torn tracez body costs this round's spans, not the scrape.
        }
      }
    }
    result.up = true;
  }

  // Fold the round into collector state and the SLO monitor.
  std::vector<obs::LuSpan> changed;
  double total_accepted = 0.0;
  std::size_t shard_count = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++rounds_;
    for (std::size_t i = 0; i < targets_.size() && i < results.size(); ++i) {
      TargetState& state = targets_[i];
      const ScrapeResult& result = results[i];
      ++state.scrapes;
      ++scrapes_;
      state.up = result.up;
      state.ingest_delta = 0.0;
      if (!result.up) {
        ++state.failures;
        ++scrape_failures_;
      } else {
        state.metrics_text = result.metrics;
        if (!std::isnan(result.last_tick_t)) {
          state.last_tick_t = result.last_tick_t;
          state.last_tick = result.last_tick;
        }
        if (!std::isnan(result.ingest_accepted)) {
          // Share samples come from per-round deltas, not lifetime totals:
          // a counter that went backwards is a restarted process, and its
          // new total is the delta since we last saw it.
          state.ingest_delta =
              std::isnan(state.ingest_prev) ||
                      result.ingest_accepted < state.ingest_prev
                  ? result.ingest_accepted
                  : result.ingest_accepted - state.ingest_prev;
          state.ingest_prev = result.ingest_accepted;
          state.ingest_accepted = result.ingest_accepted;
        }
        const double lag_records = scrape_value(
            state.metrics_text, "mgrid_replication_subscriber_lag_records");
        if (!std::isnan(lag_records)) state.lag_records = lag_records;
      }
      if (!std::isnan(now)) {
        state.replication_lag_seconds =
            std::max(0.0, now - state.last_tick_t);
      }
      if (state.config.role == "shard") {
        ++shard_count;
        total_accepted += state.ingest_delta;
      }
      for (const obs::LuSpan& span : result.spans) {
        if (merge_span_locked(span)) {
          MergedTrace& merged = traces_[span.trace_id];
          // A follower-only span whose apply fit inside the 1 µs clock
          // granularity is all zeros — not worth an exemplar slot yet.
          if (merged.span.total_seconds <= 0.0) continue;
          changed.push_back(merged.span);
          ++spans_recorded_;
          // Feed the e2e SLI once per trace, as soon as the shard-side
          // stages are present (the follower stage is additive detail).
          const auto& stages = merged.span.stage_seconds;
          const bool has_shard_part =
              stages[static_cast<std::size_t>(obs::LuStage::kVisible)] > 0.0 ||
              stages[static_cast<std::size_t>(obs::LuStage::kApply)] > 0.0;
          if (!merged.fed && has_shard_part) {
            merged.fed = true;
            slo_.observe("cluster_e2e", merged.span.total_seconds);
          }
        }
      }
    }
    // Per-target SLI samples for this round.
    for (const TargetState& state : targets_) {
      slo_.observe("availability:" + state.config.name,
                   state.up ? 0.0 : 1.0);
      if (!std::isnan(now)) {
        slo_.observe("replication_lag:" + state.config.name,
                     state.replication_lag_seconds);
      }
    }
    if (shard_count > 0 && total_accepted > 0.0) {
      const double expected = 1.0 / static_cast<double>(shard_count);
      for (TargetState& state : targets_) {
        if (state.config.role != "shard") continue;
        state.ingest_share = state.ingest_delta / total_accepted;
        slo_.observe("ingest_share:" + state.config.name,
                     std::abs(state.ingest_share - expected) / expected);
      }
    }
    // Bound the merge table; cluster sampling is sparse, so this only
    // trips on very long runs.
    if (traces_.size() > 4096) traces_.clear();
  }
  if (options_.spans != nullptr) {
    for (const obs::LuSpan& span : changed) {
      options_.spans->record("cluster_e2e", span);
    }
  }
  slo_.advance(static_cast<double>(obs::span_now_us()) * 1e-6);
}

bool FederationCollector::merge_span_locked(const obs::LuSpan& span) {
  MergedTrace& merged = traces_[span.trace_id];
  bool changed = false;
  if (merged.span.trace_id == 0) {
    merged.span = span;
    return true;
  }
  for (std::size_t i = 0; i < obs::kLuStageCount; ++i) {
    if (span.stage_seconds[i] > merged.span.stage_seconds[i]) {
      merged.span.stage_seconds[i] = span.stage_seconds[i];
      changed = true;
    }
  }
  if (!changed) return false;
  merged.span.wall_us = std::max(merged.span.wall_us, span.wall_us);
  merged.span.total_seconds = 0.0;
  for (const double stage : merged.span.stage_seconds) {
    merged.span.total_seconds += stage;
  }
  return true;
}

bool FederationCollector::ready(std::string* reason) const {
  const obs::SloReport report = slo_.report();
  for (const obs::SloSliReport& sli : report.slis) {
    if (sli.state != obs::SloState::kPage) continue;
    if (reason != nullptr) {
      char burn[64];
      std::snprintf(burn, sizeof(burn), " (burn %.1fx/%.1fx)",
                    sli.short_window.burn_rate(sli.objective),
                    sli.long_window.burn_rate(sli.objective));
      *reason = "slo page: " + sli.name + burn;
    }
    return false;
  }
  return true;
}

std::vector<FederationTargetStatus> FederationCollector::targets() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FederationTargetStatus> out;
  out.reserve(targets_.size());
  for (const TargetState& state : targets_) {
    FederationTargetStatus status;
    status.name = state.config.name;
    status.role = state.config.role;
    status.up = state.up;
    status.scrapes = state.scrapes;
    status.failures = state.failures;
    status.last_tick_t = state.last_tick_t;
    status.last_tick = state.last_tick;
    status.replication_lag_seconds = state.replication_lag_seconds;
    status.lag_records = state.lag_records;
    status.ingest_accepted = state.ingest_accepted;
    status.ingest_share = state.ingest_share;
    out.push_back(std::move(status));
  }
  return out;
}

FederationCollector::Stats FederationCollector::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.rounds = rounds_;
  s.scrapes = scrapes_;
  s.scrape_failures = scrape_failures_;
  s.traces_merged = traces_.size();
  s.spans_recorded = spans_recorded_;
  return s;
}

void FederationCollector::write_slo_json(util::JsonWriter& json) const {
  const obs::SloReport report = slo_.report();
  json.field("overall", obs::slo_state_name(report.overall));
  json.field("epochs_filled",
             static_cast<std::uint64_t>(report.epochs_filled));
  json.key("slis").begin_array();
  for (const obs::SloSliReport& sli : report.slis) {
    json.begin_object();
    json.field("name", sli.name);
    json.field("state", obs::slo_state_name(sli.state));
    json.field("threshold", sli.objective.threshold);
    write_window_json(json, "short_window", sli.short_window, sli.objective);
    write_window_json(json, "long_window", sli.long_window, sli.objective);
    json.end_object();
  }
  json.end_array();
}

obs::http::Response FederationCollector::clusterz(
    const obs::http::Request& request) const {
  if (query_param(request.query, "format") == "prom") {
    std::string body;
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const TargetState& state : targets_) {
      const std::string labels = "shard=\"" + state.config.name +
                                 "\",role=\"" + state.config.role + "\"";
      body += "mgrid_cluster_target_up{" + labels + "} " +
              (state.up ? std::string("1") : std::string("0")) + "\n";
      body += "mgrid_cluster_replication_lag_seconds{" + labels + "} " +
              std::to_string(state.replication_lag_seconds) + "\n";
      body += "mgrid_cluster_lag_records{" + labels + "} " +
              std::to_string(state.lag_records) + "\n";
      std::size_t pos = 0;
      const std::string& text = state.metrics_text;
      while (pos < text.size()) {
        std::size_t end = text.find('\n', pos);
        if (end == std::string::npos) end = text.size();
        const std::string_view line(text.data() + pos, end - pos);
        if (!line.empty()) {
          if (line[0] == '#') {
            body += line;
          } else {
            body += relabel_line(line, labels);
          }
          body += '\n';
        }
        pos = end + 1;
      }
    }
    return obs::http::Response::text(200, body);
  }

  util::JsonWriter json;
  json.begin_object();
  json.field("schema", "mgrid-clusterz-v1");
  if (options_.cluster_now) json.field("cluster_now", options_.cluster_now());
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    json.field("rounds", rounds_);
    json.field("scrapes", scrapes_);
    json.field("scrape_failures", scrape_failures_);
    json.key("targets").begin_array();
    for (const TargetState& state : targets_) {
      json.begin_object();
      json.field("name", state.config.name);
      json.field("role", state.config.role);
      json.field("up", state.up);
      json.field("scrapes", state.scrapes);
      json.field("failures", state.failures);
      json.field("last_tick_t", state.last_tick_t);
      json.field("last_tick", state.last_tick);
      json.field("replication_lag_seconds", state.replication_lag_seconds);
      json.field("lag_records", state.lag_records);
      json.field("ingest_accepted", state.ingest_accepted);
      json.field("ingest_share", state.ingest_share);
      json.end_object();
    }
    json.end_array();
    json.key("traces").begin_object();
    json.field("merged", static_cast<std::uint64_t>(traces_.size()));
    json.field("spans_recorded", spans_recorded_);
    if (!traces_.empty()) {
      // The most recently completed merged span tree, as a worked example
      // of the stage tiling (full trees live on the router's /tracez).
      const MergedTrace* latest = nullptr;
      for (const auto& [id, trace] : traces_) {
        if (latest == nullptr || trace.span.wall_us > latest->span.wall_us) {
          latest = &trace;
        }
      }
      json.key("latest").begin_object();
      json.field("trace_id", hex_trace_id(latest->span.trace_id));
      json.field("mn", static_cast<std::uint64_t>(latest->span.mn));
      json.field("seq", static_cast<std::uint64_t>(latest->span.seq));
      json.field("total_seconds", latest->span.total_seconds);
      json.key("stages").begin_object();
      for (std::size_t i = 0; i < obs::kLuStageCount; ++i) {
        json.field(obs::lu_stage_name(static_cast<obs::LuStage>(i)),
                   latest->span.stage_seconds[i]);
      }
      json.end_object();
      json.end_object();
    }
    json.end_object();
  }
  json.key("slo").begin_object();
  write_slo_json(json);
  json.end_object();
  json.end_object();
  return obs::http::Response::json(200, json.str());
}

}  // namespace mgrid::cluster

#include "cluster/replication.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "serve/snapshot.h"

namespace mgrid::cluster {

namespace {

void set_send_timeout(int fd, double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec =
      static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) *
                               1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

bool send_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

ReplicationHub::ReplicationHub(const serve::ShardedDirectory& directory,
                               ReplicationOptions options)
    : directory_(directory), options_(options) {
  options_.chunk_bytes =
      std::clamp<std::size_t>(options_.chunk_bytes, 1, wire::kMaxChunkBytes);
  lag_gauge_ = obs::current_registry().gauge(
      "mgrid_replication_subscriber_lag_records", {},
      "Records enqueued to replication subscribers and not yet fully "
      "flushed to their sockets");
  streamer_ = std::thread([this] { streamer_main(); });
}

ReplicationHub::~ReplicationHub() { stop(); }

void ReplicationHub::on_lu(const wire::LuMsg& msg) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_ || (subscribers_.empty() && pending_fds_.empty())) return;
  wire::encode(live_, msg);
  ++live_lus_;
}

void ReplicationHub::on_lu(const wire::TracedLuMsg& msg) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_ || (subscribers_.empty() && pending_fds_.empty())) return;
  wire::encode(live_, msg);
  ++live_lus_;
}

void ReplicationHub::on_tick(double t, std::uint64_t tick,
                             std::uint64_t wal_records) {
  std::vector<std::uint8_t> tick_frame;
  wire::encode(tick_frame, wire::TickMsg{t, tick});

  bool notify = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;

    for (auto& sub : subscribers_) {
      if (sub->dead) continue;
      enqueue_locked(*sub, live_.data(), live_.size(), live_lus_);
      enqueue_locked(*sub, tick_frame.data(), tick_frame.size(), 1);
      lus_streamed_ += live_lus_;
      notify = true;
    }
    live_.clear();
    live_lus_ = 0;

    if (!pending_fds_.empty()) {
      // Bootstrap every pending subscriber from one snapshot taken at this
      // (quiescent) barrier. The snapshot already reflects this tick's
      // advance_estimates, so the new subscriber's stream starts with the
      // *next* barrier's traffic.
      std::vector<std::uint8_t> image;
      const bool ok = serve::encode_snapshot(directory_, wal_records, t, image);
      for (const int fd : pending_fds_) {
        if (!ok) {
          ++snapshot_failures_;
          ::close(fd);
          continue;
        }
        auto sub = std::make_unique<Subscriber>();
        sub->fd = fd;
        std::vector<std::uint8_t> frame;
        for (std::size_t pos = 0; pos < image.size();
             pos += options_.chunk_bytes) {
          wire::SnapshotChunkMsg chunk;
          const std::size_t len =
              std::min(options_.chunk_bytes, image.size() - pos);
          chunk.bytes.assign(image.begin() + static_cast<std::ptrdiff_t>(pos),
                             image.begin() +
                                 static_cast<std::ptrdiff_t>(pos + len));
          frame.clear();
          wire::encode(frame, chunk);
          enqueue_locked(*sub, frame.data(), frame.size(), 1);
        }
        frame.clear();
        wire::encode(frame, wire::SnapshotDoneMsg{image.size(), wal_records});
        enqueue_locked(*sub, frame.data(), frame.size(), 1);
        subscribers_.push_back(std::move(sub));
        ++attached_total_;
        notify = true;
      }
      pending_fds_.clear();
    }
    refresh_lag_locked();
  }
  if (notify) work_cv_.notify_all();
}

void ReplicationHub::adopt(int fd) {
  set_send_timeout(fd, 5.0);
  bool accepted = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!stopping_) {
      pending_fds_.push_back(fd);
      accepted = true;
    }
  }
  if (!accepted) ::close(fd);
}

bool ReplicationHub::drain(double timeout_seconds) {
  std::unique_lock<std::mutex> lock(mutex_);
  return drained_cv_.wait_for(
      lock, std::chrono::duration<double>(timeout_seconds), [this] {
        if (stopping_) return true;
        if (streaming_) return false;
        for (const auto& sub : subscribers_) {
          if (!sub->dead && !sub->outgoing.empty()) return false;
        }
        return true;
      });
}

void ReplicationHub::stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    for (auto& sub : subscribers_) {
      if (sub->fd >= 0) ::shutdown(sub->fd, SHUT_RDWR);
    }
    for (const int fd : pending_fds_) ::close(fd);
    pending_fds_.clear();
  }
  work_cv_.notify_all();
  drained_cv_.notify_all();
  if (streamer_.joinable()) streamer_.join();
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& sub : subscribers_) {
    if (sub->fd >= 0) {
      ::close(sub->fd);
      sub->fd = -1;
      ++detached_total_;
    }
  }
  subscribers_.clear();
}

ReplicationHub::Stats ReplicationHub::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  for (const auto& sub : subscribers_) {
    if (sub->dead) continue;
    ++s.subscribers;
    if (!sub->outgoing.empty()) {
      s.subscriber_lag_records += sub->buffered_records;
    }
  }
  s.pending = pending_fds_.size();
  s.attached_total = attached_total_;
  s.detached_total = detached_total_;
  s.dropped_slow = dropped_slow_;
  s.lus_streamed = lus_streamed_;
  s.bytes_streamed = bytes_streamed_.load(std::memory_order_relaxed);
  s.snapshot_failures = snapshot_failures_;
  return s;
}

void ReplicationHub::enqueue_locked(Subscriber& sub, const std::uint8_t* data,
                                    std::size_t size, std::uint64_t records) {
  if (sub.dead || sub.fd < 0) return;
  sub.outgoing.insert(sub.outgoing.end(), data, data + size);
  sub.buffered_records += records;
  if (sub.outgoing.size() > options_.max_buffered_bytes) {
    // A consumer this far behind is dead or wedged; protect the primary's
    // memory instead of the replica's continuity.
    sub.dead = true;
    sub.outgoing.clear();
    sub.buffered_records = 0;
    ::shutdown(sub.fd, SHUT_RDWR);
    ++dropped_slow_;
  }
}

void ReplicationHub::refresh_lag_locked() {
  std::uint64_t lag = 0;
  for (const auto& sub : subscribers_) {
    if (sub->dead) continue;
    // A fully drained queue settles to exactly 0; partial drains keep the
    // enqueued count (the gauge answers "how far behind", not "how many
    // bytes are in flight").
    if (sub->outgoing.empty()) sub->buffered_records = 0;
    lag += sub->buffered_records;
  }
  subscriber_lag_records_ = lag;
  if (obs::enabled()) lag_gauge_.set(static_cast<double>(lag));
}

void ReplicationHub::streamer_main() {
  std::vector<std::uint8_t> out;
  for (;;) {
    int fd = -1;
    Subscriber* target = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] {
        if (stopping_) return true;
        for (const auto& sub : subscribers_) {
          if (sub->dead || !sub->outgoing.empty()) return true;
        }
        return false;
      });
      // Reap dead subscribers first so their fds do not linger.
      for (auto it = subscribers_.begin(); it != subscribers_.end();) {
        if ((*it)->dead) {
          if ((*it)->fd >= 0) ::close((*it)->fd);
          ++detached_total_;
          it = subscribers_.erase(it);
        } else {
          ++it;
        }
      }
      if (stopping_) return;
      for (auto& sub : subscribers_) {
        if (!sub->outgoing.empty()) {
          const std::size_t n = std::min<std::size_t>(
              sub->outgoing.size(), 256u << 10);
          out.assign(sub->outgoing.begin(),
                     sub->outgoing.begin() + static_cast<std::ptrdiff_t>(n));
          sub->outgoing.erase(
              sub->outgoing.begin(),
              sub->outgoing.begin() + static_cast<std::ptrdiff_t>(n));
          fd = sub->fd;
          target = sub.get();
          streaming_ = true;
          break;
        }
      }
    }
    if (target == nullptr) continue;
    // Socket I/O happens outside the hub mutex so on_lu() (which runs under
    // an ingest source-queue lock) never waits on a slow follower.
    const bool ok = send_all(fd, out.data(), out.size());
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      streaming_ = false;
      if (ok) {
        bytes_streamed_.fetch_add(out.size(), std::memory_order_relaxed);
      } else {
        // `target` stays valid: only this thread erases subscribers.
        target->dead = true;
        target->outgoing.clear();
        target->buffered_records = 0;
      }
      refresh_lag_locked();
    }
    drained_cv_.notify_all();
  }
}

Follower::Follower(serve::ShardedDirectory& directory, FollowerOptions options)
    : directory_(directory), options_(options) {
  if (options_.spans != nullptr) {
    options_.spans->register_sli("follower_apply", 0.0, 0.1, 100);
  }
}

bool Follower::connect(std::string* error) {
  std::string local_error;
  const int fd = connect_tcp(options_.host, options_.port,
                             options_.connect_timeout_seconds, local_error);
  if (fd < 0) {
    error_ = local_error;
    if (error != nullptr) *error = local_error;
    return false;
  }
  conn_ = FrameConn(fd, options_.io_timeout_seconds);
  std::vector<std::uint8_t> frame;
  wire::encode(frame, wire::SubscribeMsg{0, 0});
  if (!conn_.send(frame)) {
    error_ = "subscribe send failed: " + conn_.last_error();
    if (error != nullptr) *error = error_;
    return false;
  }
  return true;
}

bool Follower::run() {
  std::vector<std::uint8_t> snapshot_bytes;
  for (;;) {
    if (stop_.load(std::memory_order_acquire)) return true;
    wire::Message msg;
    if (!conn_.recv_message(msg, /*idle_ok=*/true)) {
      if (conn_.timed_out()) continue;  // idle poll; check stop_ and retry
      error_ = conn_.last_error();
      return error_ == "peer closed";
    }
    if (const auto* chunk = std::get_if<wire::SnapshotChunkMsg>(&msg)) {
      snapshot_bytes.insert(snapshot_bytes.end(), chunk->bytes.begin(),
                            chunk->bytes.end());
      continue;
    }
    if (const auto* done = std::get_if<wire::SnapshotDoneMsg>(&msg)) {
      if (done->total_bytes != snapshot_bytes.size()) {
        error_ = "snapshot transfer size mismatch";
        return false;
      }
      serve::SnapshotData snapshot;
      if (!serve::decode_snapshot(snapshot_bytes.data(),
                                  snapshot_bytes.size(), snapshot)) {
        error_ = "snapshot image failed validation";
        return false;
      }
      const std::size_t restored = serve::apply_snapshot(directory_, snapshot);
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      stats_.snapshot_loaded = true;
      stats_.snapshot_bytes = snapshot_bytes.size();
      stats_.snapshot_wal_records = done->wal_records;
      stats_.tracks_restored = restored;
      snapshot_bytes.clear();
      snapshot_bytes.shrink_to_fit();
      continue;
    }
    if (const auto* lu = std::get_if<wire::LuMsg>(&msg)) {
      const bool applied = directory_.update(lu->mn, lu->t, {lu->x, lu->y},
                                             {lu->vx, lu->vy});
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      if (applied) {
        ++stats_.lus_applied;
      } else {
        ++stats_.lus_rejected;
      }
      continue;
    }
    if (const auto* traced = std::get_if<wire::TracedLuMsg>(&msg)) {
      // The final hop of the cluster trace: a one-stage span under the
      // propagated id covering the serial apply on this replica.
      const wire::LuMsg& lu = traced->lu;
      const std::uint64_t apply_start_us =
          options_.spans != nullptr ? obs::span_now_us() : 0;
      const bool applied = directory_.update(lu.mn, lu.t, {lu.x, lu.y},
                                             {lu.vx, lu.vy});
      if (options_.spans != nullptr) {
        obs::LuSpan span;
        span.trace_id = traced->trace.trace_id;
        span.mn = lu.mn;
        span.seq = lu.seq;
        span.wall_us = obs::span_now_us();
        span.stage_seconds[static_cast<std::size_t>(
            obs::LuStage::kFollowerApply)] =
            static_cast<double>(span.wall_us - apply_start_us) * 1e-6;
        span.total_seconds = span.stage_seconds[static_cast<std::size_t>(
            obs::LuStage::kFollowerApply)];
        options_.spans->record("follower_apply", span);
      }
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      if (applied) {
        ++stats_.lus_applied;
      } else {
        ++stats_.lus_rejected;
      }
      continue;
    }
    if (const auto* tick = std::get_if<wire::TickMsg>(&msg)) {
      directory_.advance_estimates(tick->t);
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.ticks_applied;
      stats_.last_tick_t = tick->t;
      stats_.last_tick = tick->tick;
      continue;
    }
    error_ = "unexpected frame on replication stream";
    return false;
  }
}

void Follower::stop() {
  stop_.store(true, std::memory_order_release);
  if (conn_.connected()) ::shutdown(conn_.fd(), SHUT_RDWR);
}

Follower::Stats Follower::stats() const {
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

}  // namespace mgrid::cluster

#include "cluster/router.h"

#include <algorithm>
#include <chrono>

#include "obs/http.h"

namespace mgrid::cluster {

namespace {

/// Merge order of spatial-query results — the (distance, mn) total order
/// ShardedDirectory sorts by, so a clustered merge is indistinguishable
/// from a single directory's output.
bool neighbor_less(const wire::NeighborMsg& a, const wire::NeighborMsg& b) {
  if (a.distance != b.distance) return a.distance < b.distance;
  return a.mn < b.mn;
}

}  // namespace

Router::Shard::Shard(const RouterShardConfig& cfg, const RouterOptions& opts)
    : config(cfg),
      client(ShardClientOptions{cfg.name, cfg.host, cfg.lu_port,
                                opts.connect_timeout_seconds,
                                opts.io_timeout_seconds}),
      forwarded(obs::current_registry().counter(
          "mgrid_router_forwarded_lus_total", {{"shard", cfg.name}},
          "LUs forwarded to this shard by the router")) {
  batch.reserve(opts.batch_size);
}

Router::Router(RouterOptions options, std::vector<RouterShardConfig> shards)
    : options_(options), ring_(RingOptions{options.vnodes, options.probes}) {
  if (options_.batch_size == 0) options_.batch_size = 1;
  for (const RouterShardConfig& config : shards) {
    if (!ring_.add_node(config.name)) continue;  // duplicate name
    shards_.push_back(std::make_unique<Shard>(config, options_));
    health_[config.name].name = config.name;
  }
  ring_version_gauge_ = obs::current_registry().gauge(
      "mgrid_cluster_ring_version", {},
      "Monotonic version of the router's consistent-hash ring");
  ring_version_gauge_.set(static_cast<double>(ring_.version()));
}

Router::~Router() { stop(); }

bool Router::start(std::string* error) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto& shard : shards_) {
      std::string connect_error;
      if (!shard->client.connect(&connect_error)) {
        if (error != nullptr) {
          *error = shard->config.name + ": " + connect_error;
        }
        return false;
      }
    }
  }
  if (options_.health_period_seconds > 0.0) {
    health_thread_ = std::thread([this] { health_main(); });
  }
  started_ = true;
  return true;
}

void Router::stop() {
  {
    const std::lock_guard<std::mutex> lock(health_mutex_);
    health_stop_ = true;
  }
  health_cv_.notify_all();
  if (health_thread_.joinable()) health_thread_.join();
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& shard : shards_) shard->client.close();
}

bool Router::submit(const wire::LuMsg& msg) {
  BatchLu entry;
  entry.lu = msg;
  if (options_.spans != nullptr &&
      options_.spans->sampled(obs::kClusterTraceSource, msg.mn, msg.seq)) {
    entry.trace_id =
        obs::SpanTracer::trace_id(obs::kClusterTraceSource, msg.mn, msg.seq);
    entry.origin_us = obs::span_now_us();
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  if (shards_.empty()) return false;
  Shard* shard = find_locked(ring_.owner(msg.mn));
  if (shard == nullptr) return false;
  shard->batch.push_back(entry);
  if (shard->batch.size() >= options_.batch_size) {
    return send_batch_locked(*shard);
  }
  return true;
}

bool Router::flush() {
  const std::lock_guard<std::mutex> lock(mutex_);
  bool ok = true;
  for (auto& shard : shards_) {
    if (!shard->batch.empty()) ok = send_batch_locked(*shard) && ok;
  }
  return ok;
}

bool Router::tick(double t, std::uint64_t tick) {
  const std::lock_guard<std::mutex> lock(mutex_);
  bool ok = true;
  for (auto& shard : shards_) {
    if (!shard->batch.empty()) ok = send_batch_locked(*shard) && ok;
  }
  for (auto& shard : shards_) {
    if (!shard->client.connected() && !shard->client.connect()) {
      ok = false;
      continue;
    }
    ok = shard->client.tick(t, tick) && ok;
  }
  ticks_.fetch_add(1, std::memory_order_relaxed);
  if (!ok) tick_failures_.fetch_add(1, std::memory_order_relaxed);
  return ok;
}

std::optional<wire::LookupReplyMsg> Router::lookup(std::uint32_t mn,
                                                   double t) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (shards_.empty()) return std::nullopt;
  lookups_.fetch_add(1, std::memory_order_relaxed);
  Shard* shard = find_locked(ring_.owner(mn));
  if (shard == nullptr) return std::nullopt;
  // A lookup must see every LU forwarded before it, so the owner's pending
  // batch goes first.
  if (!shard->batch.empty() && !send_batch_locked(*shard)) {
    return std::nullopt;
  }
  if (!shard->client.connected() && !shard->client.connect()) {
    return std::nullopt;
  }
  return shard->client.lookup(mn, t);
}

std::vector<wire::NeighborMsg> Router::query_region(double x, double y,
                                                    double radius,
                                                    std::uint32_t max_results) {
  const std::lock_guard<std::mutex> lock(mutex_);
  region_queries_.fetch_add(1, std::memory_order_relaxed);
  std::vector<wire::NeighborMsg> merged;
  for (auto& shard : shards_) {
    if (!shard->batch.empty()) send_batch_locked(*shard);
    if (!shard->client.connected() && !shard->client.connect()) {
      query_failures_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    // Every shard may return up to max_results of its own; the merged
    // truncation happens below, across shards.
    if (!shard->client.query_region(
            wire::RegionQueryMsg{x, y, radius, max_results}, merged)) {
      query_failures_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  std::sort(merged.begin(), merged.end(), neighbor_less);
  neighbors_merged_.fetch_add(merged.size(), std::memory_order_relaxed);
  if (max_results > 0 && merged.size() > max_results) {
    merged.resize(max_results);
  }
  return merged;
}

std::vector<wire::NeighborMsg> Router::k_nearest(double x, double y,
                                                 std::uint32_t k) {
  const std::lock_guard<std::mutex> lock(mutex_);
  nearest_queries_.fetch_add(1, std::memory_order_relaxed);
  std::vector<wire::NeighborMsg> merged;
  for (auto& shard : shards_) {
    if (!shard->batch.empty()) send_batch_locked(*shard);
    if (!shard->client.connected() && !shard->client.connect()) {
      query_failures_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (!shard->client.k_nearest(wire::NearestQueryMsg{x, y, k}, merged)) {
      query_failures_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  std::sort(merged.begin(), merged.end(), neighbor_less);
  neighbors_merged_.fetch_add(merged.size(), std::memory_order_relaxed);
  if (merged.size() > k) merged.resize(k);
  return merged;
}

bool Router::add_shard(const RouterShardConfig& config, std::string* error) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!ring_.add_node(config.name)) {
    if (error != nullptr) *error = "duplicate shard " + config.name;
    return false;
  }
  auto shard = std::make_unique<Shard>(config, options_);
  std::string connect_error;
  if (!shard->client.connect(&connect_error)) {
    ring_.remove_node(config.name);
    if (error != nullptr) *error = config.name + ": " + connect_error;
    return false;
  }
  shards_.push_back(std::move(shard));
  ring_version_gauge_.set(static_cast<double>(ring_.version()));
  const std::lock_guard<std::mutex> health_lock(health_mutex_);
  health_[config.name].name = config.name;
  return true;
}

bool Router::remove_shard(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!ring_.remove_node(name)) return false;
  ring_version_gauge_.set(static_cast<double>(ring_.version()));
  for (auto it = shards_.begin(); it != shards_.end(); ++it) {
    if ((*it)->config.name == name) {
      (*it)->client.close();
      shards_.erase(it);
      break;
    }
  }
  const std::lock_guard<std::mutex> health_lock(health_mutex_);
  health_.erase(name);
  return true;
}

bool Router::all_ready() const {
  std::vector<RouterShardConfig> configs;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (shards_.empty()) return false;
    for (const auto& shard : shards_) {
      configs.push_back(shard->config);
      if (options_.health_period_seconds <= 0.0 &&
          !shard->client.connected()) {
        return false;
      }
    }
  }
  if (options_.health_period_seconds <= 0.0) return true;
  const std::lock_guard<std::mutex> lock(health_mutex_);
  for (const RouterShardConfig& config : configs) {
    if (config.admin_port == 0) continue;  // no probe surface; trust the fd
    const auto it = health_.find(config.name);
    if (it == health_.end() || !it->second.up) return false;
  }
  return true;
}

std::vector<ShardHealth> Router::health() const {
  const std::lock_guard<std::mutex> lock(health_mutex_);
  std::vector<ShardHealth> out;
  out.reserve(health_.size());
  for (const auto& [name, state] : health_) out.push_back(state);
  std::sort(out.begin(), out.end(),
            [](const ShardHealth& a, const ShardHealth& b) {
              return a.name < b.name;
            });
  return out;
}

RouterStats Router::stats() const {
  RouterStats s;
  s.lus_forwarded = lus_forwarded_.load(std::memory_order_relaxed);
  s.lus_dropped = lus_dropped_.load(std::memory_order_relaxed);
  s.batches_sent = batches_sent_.load(std::memory_order_relaxed);
  s.ticks = ticks_.load(std::memory_order_relaxed);
  s.tick_failures = tick_failures_.load(std::memory_order_relaxed);
  s.lookups = lookups_.load(std::memory_order_relaxed);
  s.region_queries = region_queries_.load(std::memory_order_relaxed);
  s.nearest_queries = nearest_queries_.load(std::memory_order_relaxed);
  s.neighbors_merged = neighbors_merged_.load(std::memory_order_relaxed);
  s.query_failures = query_failures_.load(std::memory_order_relaxed);
  s.reconnects = reconnects_.load(std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    s.ring_version = ring_.version();
  }
  return s;
}

std::string Router::owner(std::uint32_t mn) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return ring_.owner(mn);
}

std::vector<std::string> Router::shard_names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return ring_.nodes();
}

void Router::write_cluster_status(util::JsonWriter& json) const {
  const RouterStats s = stats();
  json.field("ring_version", s.ring_version);
  json.key("shards").begin_array();
  for (const ShardHealth& shard : health()) {
    json.begin_object();
    json.field("name", shard.name);
    json.field("up", shard.up);
    json.field("epoch", shard.epoch);
    json.field("probes", shard.probes);
    json.field("probe_failures", shard.probe_failures);
    json.end_object();
  }
  json.end_array();
  json.key("forward").begin_object();
  json.field("lus", s.lus_forwarded);
  json.field("lus_dropped", s.lus_dropped);
  json.field("batches", s.batches_sent);
  json.field("ticks", s.ticks);
  json.field("tick_failures", s.tick_failures);
  json.field("reconnects", s.reconnects);
  json.end_object();
  json.key("merge").begin_object();
  json.field("lookups", s.lookups);
  json.field("region_queries", s.region_queries);
  json.field("nearest_queries", s.nearest_queries);
  json.field("neighbors_merged", s.neighbors_merged);
  json.field("query_failures", s.query_failures);
  json.end_object();
}

Router::Shard* Router::find_locked(const std::string& name) {
  for (auto& shard : shards_) {
    if (shard->config.name == name) return shard.get();
  }
  return nullptr;
}

bool Router::send_batch_locked(Shard& shard) {
  const std::size_t count = shard.batch.size();
  if (count == 0) return true;
  if (!shard.client.connected()) {
    // Reconnect eagerly only when the shard looks alive (health view, or
    // no probing configured) — a dead shard must not stall the data path
    // for a connect timeout on every batch.
    bool try_connect = options_.health_period_seconds <= 0.0 ||
                       shard.config.admin_port == 0;
    if (!try_connect) {
      const std::lock_guard<std::mutex> lock(health_mutex_);
      const auto it = health_.find(shard.config.name);
      try_connect = it != health_.end() && it->second.up;
    }
    if (!try_connect || !shard.client.connect()) {
      shard.batch.clear();
      lus_dropped_.fetch_add(count, std::memory_order_relaxed);
      return false;
    }
    reconnects_.fetch_add(1, std::memory_order_relaxed);
  }
  const bool ok = shard.client.send_lus(shard.batch);
  shard.batch.clear();
  if (ok) {
    lus_forwarded_.fetch_add(count, std::memory_order_relaxed);
    batches_sent_.fetch_add(1, std::memory_order_relaxed);
    shard.forwarded.inc(count);
  } else {
    lus_dropped_.fetch_add(count, std::memory_order_relaxed);
  }
  return ok;
}

void Router::health_main() {
  for (;;) {
    std::vector<RouterShardConfig> configs;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      for (const auto& shard : shards_) configs.push_back(shard->config);
    }
    for (const RouterShardConfig& config : configs) {
      if (config.admin_port == 0) continue;
      const obs::http::ClientResponse response =
          obs::http::http_get(config.host, config.admin_port, "/readyz",
                              options_.health_timeout_seconds);
      const bool up = response.ok && response.status == 200;
      const std::lock_guard<std::mutex> lock(health_mutex_);
      ShardHealth& state = health_[config.name];
      state.name = config.name;
      ++state.probes;
      if (!up) ++state.probe_failures;
      if (up && !state.up) ++state.epoch;
      state.up = up;
    }
    std::unique_lock<std::mutex> lock(health_mutex_);
    if (health_cv_.wait_for(
            lock,
            std::chrono::duration<double>(options_.health_period_seconds),
            [this] { return health_stop_; })) {
      return;
    }
  }
}

}  // namespace mgrid::cluster

#include "cluster/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "obs/span.h"

namespace mgrid::cluster {

namespace {

void set_io_timeout(int fd, double seconds) {
  if (seconds <= 0.0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec =
      static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) *
                               1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

int connect_tcp(const std::string& host, std::uint16_t port,
                double timeout_seconds, std::string& error) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    error = "bad host address " + host;
    return -1;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);

  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0 && errno != EINPROGRESS) {
    error = std::string("connect: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  if (rc != 0) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration<double>(timeout_seconds > 0.0 ? timeout_seconds
                                                            : 5.0);
    for (;;) {
      const auto remaining = deadline - std::chrono::steady_clock::now();
      const auto remaining_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(remaining)
              .count();
      if (remaining_ms <= 0) {
        error = "connect: timed out";
        ::close(fd);
        return -1;
      }
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLOUT;
      const int n = ::poll(&pfd, 1, static_cast<int>(remaining_ms));
      if (n < 0 && errno == EINTR) continue;
      if (n < 0) {
        error = std::string("poll: ") + std::strerror(errno);
        ::close(fd);
        return -1;
      }
      if (n > 0) break;
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
        so_error != 0) {
      error = std::string("connect: ") +
              std::strerror(so_error != 0 ? so_error : errno);
      ::close(fd);
      return -1;
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  // LU batches are latency-sensitive and already coalesced by the caller.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

FrameConn::FrameConn(int fd, double io_timeout_seconds) : fd_(fd) {
  if (fd_ >= 0) set_io_timeout(fd_, io_timeout_seconds);
}

FrameConn::~FrameConn() { close(); }

FrameConn::FrameConn(FrameConn&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      buffer_(std::move(other.buffer_)),
      buffer_pos_(std::exchange(other.buffer_pos_, 0)),
      error_(std::move(other.error_)),
      timed_out_(other.timed_out_) {}

FrameConn& FrameConn::operator=(FrameConn&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
    buffer_pos_ = std::exchange(other.buffer_pos_, 0);
    error_ = std::move(other.error_);
    timed_out_ = other.timed_out_;
  }
  return *this;
}

int FrameConn::release() {
  if (buffer_pos_ != buffer_.size()) return -1;
  buffer_.clear();
  buffer_pos_ = 0;
  return std::exchange(fd_, -1);
}

void FrameConn::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
  buffer_pos_ = 0;
}

bool FrameConn::send(const std::uint8_t* data, std::size_t size) {
  if (fd_ < 0) {
    error_ = "not connected";
    return false;
  }
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n =
        ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      error_ = std::string("send: ") + std::strerror(errno);
      close();
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool FrameConn::recv_message(wire::Message& out, bool idle_ok) {
  timed_out_ = false;
  if (fd_ < 0) {
    error_ = "not connected";
    return false;
  }
  for (;;) {
    const std::span<const std::uint8_t> pending{
        buffer_.data() + buffer_pos_, buffer_.size() - buffer_pos_};
    wire::Decoded decoded = wire::decode_frame(pending);
    if (decoded.ok()) {
      out = std::move(decoded.msg);
      buffer_pos_ += decoded.consumed;
      if (buffer_pos_ == buffer_.size()) {
        buffer_.clear();
        buffer_pos_ = 0;
      } else if (buffer_pos_ > (64 << 10)) {
        // Compact occasionally so a long-lived stream does not grow the
        // buffer by its consumed prefix forever.
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() +
                          static_cast<std::ptrdiff_t>(buffer_pos_));
        buffer_pos_ = 0;
      }
      return true;
    }
    if (decoded.status != wire::DecodeStatus::kNeedMoreData) {
      error_ = std::string("bad frame: ") +
               std::string(wire::to_string(decoded.status));
      close();
      return false;
    }
    std::uint8_t chunk[16 * 1024];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      error_ = "recv: timed out";
      if (idle_ok) {
        timed_out_ = true;  // connection stays open; caller may retry
      } else {
        close();
      }
      return false;
    }
    if (n < 0) {
      error_ = std::string("recv: ") + std::strerror(errno);
      close();
      return false;
    }
    if (n == 0) {
      error_ = "peer closed";
      close();
      return false;
    }
    buffer_.insert(buffer_.end(), chunk, chunk + n);
  }
}

ShardClient::ShardClient(ShardClientOptions options)
    : options_(std::move(options)) {}

bool ShardClient::connect(std::string* error) {
  if (conn_.connected()) return true;
  std::string local_error;
  const int fd = connect_tcp(options_.host, options_.port,
                             options_.connect_timeout_seconds, local_error);
  if (fd < 0) {
    if (error != nullptr) *error = local_error;
    return false;
  }
  conn_ = FrameConn(fd, options_.io_timeout_seconds);
  return true;
}

bool ShardClient::send_lus(const std::vector<wire::LuMsg>& batch) {
  if (batch.empty()) return true;
  scratch_.clear();
  for (const wire::LuMsg& msg : batch) wire::encode(scratch_, msg);
  return conn_.send(scratch_);
}

bool ShardClient::send_lus(const std::vector<BatchLu>& batch) {
  if (batch.empty()) return true;
  scratch_.clear();
  std::uint64_t send_us = 0;  // stamped lazily: untraced batches skip the clock
  for (const BatchLu& entry : batch) {
    if (entry.trace_id == 0) {
      wire::encode(scratch_, entry.lu);
      continue;
    }
    if (send_us == 0) send_us = obs::span_now_us();
    wire::TracedLuMsg traced;
    traced.lu = entry.lu;
    traced.trace.trace_id = entry.trace_id;
    traced.trace.origin_us = entry.origin_us;
    traced.trace.send_us = send_us;
    traced.trace.parent_stage =
        static_cast<std::uint32_t>(obs::LuStage::kNet);
    wire::encode(scratch_, traced);
  }
  return conn_.send(scratch_);
}

bool ShardClient::tick(double t, std::uint64_t tick) {
  scratch_.clear();
  wire::encode(scratch_, wire::TickMsg{t, tick});
  if (!conn_.send(scratch_)) return false;
  wire::Message reply;
  if (!conn_.recv_message(reply)) return false;
  return std::holds_alternative<wire::AckMsg>(reply) &&
         std::get<wire::AckMsg>(reply).status == wire::AckStatus::kOk;
}

std::optional<wire::LookupReplyMsg> ShardClient::lookup(std::uint32_t mn,
                                                        double t) {
  scratch_.clear();
  wire::encode(scratch_, wire::LookupMsg{mn, t});
  if (!conn_.send(scratch_)) return std::nullopt;
  wire::Message reply;
  if (!conn_.recv_message(reply)) return std::nullopt;
  if (!std::holds_alternative<wire::LookupReplyMsg>(reply)) {
    conn_.close();
    return std::nullopt;
  }
  return std::get<wire::LookupReplyMsg>(reply);
}

bool ShardClient::query_region(const wire::RegionQueryMsg& query,
                               std::vector<wire::NeighborMsg>& out) {
  scratch_.clear();
  wire::encode(scratch_, query);
  if (!conn_.send(scratch_)) return false;
  return read_neighbor_stream(out);
}

bool ShardClient::k_nearest(const wire::NearestQueryMsg& query,
                            std::vector<wire::NeighborMsg>& out) {
  scratch_.clear();
  wire::encode(scratch_, query);
  if (!conn_.send(scratch_)) return false;
  return read_neighbor_stream(out);
}

bool ShardClient::read_neighbor_stream(std::vector<wire::NeighborMsg>& out) {
  for (;;) {
    wire::Message msg;
    if (!conn_.recv_message(msg)) return false;
    if (std::holds_alternative<wire::NeighborMsg>(msg)) {
      out.push_back(std::get<wire::NeighborMsg>(msg));
      continue;
    }
    if (std::holds_alternative<wire::QueryDoneMsg>(msg)) return true;
    conn_.close();  // protocol violation mid-stream
    return false;
  }
}

}  // namespace mgrid::cluster

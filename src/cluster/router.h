// Front-end router: one process that makes N shard nodes look like one
// directory.
//
// Writes: each LU hashes onto the ring (cluster/ring.h) and is buffered in
// its owner shard's batch; a batch is forwarded in one TCP send when it
// reaches batch_size or at flush(). tick() is the cluster-wide barrier —
// flush everything, send kTick to every shard, await every kAck — after
// which all state up to the tick is applied and estimates are advanced
// everywhere. Because the router preserves per-MN submission order (one MN
// always maps to one shard batch, appended in arrival order) the union of
// the shards' directories after tick T equals the single-process directory
// after tick T, bit-identically — the cluster determinism test's claim.
//
// Reads: lookups route to the owner shard; spatial queries fan out to every
// shard and the kNeighbor streams merge by (distance, mn) — the same total
// order ShardedDirectory uses — truncated to the caller's limit, so a
// clustered query returns byte-identical results to a single directory.
//
// Health: an optional background thread probes each shard's admin /readyz
// (using the hardened obs::http_get with its connect/read deadlines). A
// shard is `up` after consecutive successes, `down` after a failure; each
// down->up transition bumps the shard's epoch, and the router's own
// readiness (all_ready()) is the AND over shards — surfaced through the
// router's /readyz so the chaos test can watch a SIGKILL'd shard degrade
// the router and a restart recover it.
//
// Thread-safety: submit/flush/tick/queries serialize on one mutex (the
// router is a single logical stream toward the shards); health state has
// its own lock so probes never stall the data path.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/client.h"
#include "cluster/ring.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "serve/wire.h"
#include "util/json.h"

namespace mgrid::cluster {

struct RouterShardConfig {
  std::string name;  ///< Ring node name; must be unique.
  std::string host = "127.0.0.1";
  std::uint16_t lu_port = 0;     ///< The shard's LuServer port.
  std::uint16_t admin_port = 0;  ///< The shard's admin port (0 = no probe).
};

struct RouterOptions {
  std::size_t vnodes = 64;
  std::size_t probes = 21;  ///< Multi-probe lookups per key (cluster/ring.h).
  /// LUs buffered per shard before an automatic flush.
  std::size_t batch_size = 64;
  double connect_timeout_seconds = 5.0;
  double io_timeout_seconds = 5.0;
  /// Health probe period; 0 disables the health thread (shards then count
  /// as up while their connection is open).
  double health_period_seconds = 0.5;
  double health_timeout_seconds = 1.0;
  /// Cluster trace sampling: when set, each submitted LU whose
  /// deterministic trace id (SpanTracer::trace_id(kClusterTraceSource, mn,
  /// seq)) samples is forwarded as a kTracedLu frame carrying that id and
  /// the router's accept/send timestamps — the root of the cross-process
  /// span tree. Must outlive the router.
  obs::SpanTracer* spans = nullptr;
};

/// Health view of one shard (snapshot copy).
struct ShardHealth {
  std::string name;
  bool up = false;
  /// Down->up transitions observed (0 until the first successful probe).
  std::uint64_t epoch = 0;
  std::uint64_t probes = 0;
  std::uint64_t probe_failures = 0;
};

struct RouterStats {
  std::uint64_t lus_forwarded = 0;
  std::uint64_t lus_dropped = 0;  ///< Batches lost to a dead shard.
  std::uint64_t batches_sent = 0;
  std::uint64_t ticks = 0;
  std::uint64_t tick_failures = 0;  ///< Ticks some shard failed to ack.
  std::uint64_t lookups = 0;
  std::uint64_t region_queries = 0;
  std::uint64_t nearest_queries = 0;
  std::uint64_t neighbors_merged = 0;  ///< Pre-truncation merged hits.
  std::uint64_t query_failures = 0;    ///< Shard legs lost mid-query.
  std::uint64_t reconnects = 0;
  std::uint64_t ring_version = 0;
};

class Router {
 public:
  Router(RouterOptions options, std::vector<RouterShardConfig> shards);
  ~Router();  ///< Implies stop().

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Connects every shard's LU socket and starts the health thread.
  /// Returns false with `error` naming the first shard that refused.
  bool start(std::string* error = nullptr);
  void stop();

  /// Routes one LU to its owner shard's batch; forwards the batch when it
  /// reaches batch_size. Returns false when the send to a shard failed
  /// (the batch is dropped and counted; the health thread will flag the
  /// shard and reconnect on recovery).
  bool submit(const wire::LuMsg& msg);
  /// Forwards every non-empty batch now.
  bool flush();
  /// Cluster barrier: flush, kTick to every shard, await every ack.
  bool tick(double t, std::uint64_t tick);

  [[nodiscard]] std::optional<wire::LookupReplyMsg> lookup(std::uint32_t mn,
                                                           double t);
  /// Fan-out spatial queries; results merged by (distance, mn) across
  /// shards — identical ordering to a single ShardedDirectory.
  [[nodiscard]] std::vector<wire::NeighborMsg> query_region(
      double x, double y, double radius, std::uint32_t max_results = 0);
  [[nodiscard]] std::vector<wire::NeighborMsg> k_nearest(double x, double y,
                                                         std::uint32_t k);

  /// Membership change (handoff drivers). The caller is responsible for
  /// moving the affected tracks (cluster/handoff.h) before resuming
  /// traffic; moved_mns() on the rings before/after says which.
  bool add_shard(const RouterShardConfig& config, std::string* error = nullptr);
  bool remove_shard(const std::string& name);

  /// All shards up (health thread view); with health probing disabled,
  /// all LU connections open.
  [[nodiscard]] bool all_ready() const;
  [[nodiscard]] std::vector<ShardHealth> health() const;
  [[nodiscard]] RouterStats stats() const;
  /// Owner shard name for an MN (current ring).
  [[nodiscard]] std::string owner(std::uint32_t mn) const;
  [[nodiscard]] std::vector<std::string> shard_names() const;

  /// Writes the /statusz "cluster" block: role, ring version, per-shard
  /// health/epochs, forward/merge counters (serve::AdminHooks::cluster_status).
  void write_cluster_status(util::JsonWriter& json) const;

 private:
  struct Shard {
    RouterShardConfig config;
    ShardClient client;
    std::vector<BatchLu> batch;
    /// mgrid_router_forwarded_lus_total{shard=<name>}
    obs::Counter forwarded;
    explicit Shard(const RouterShardConfig& cfg, const RouterOptions& opts);
  };

  void health_main();
  /// Sends one shard's batch (data mutex held). Clears the batch either
  /// way; failures count lus_dropped.
  bool send_batch_locked(Shard& shard);
  [[nodiscard]] Shard* find_locked(const std::string& name);

  RouterOptions options_;

  /// Data path: ring, shard table, batches, client connections.
  mutable std::mutex mutex_;
  HashRing ring_;
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Health state (separate lock: probes must not stall submits).
  mutable std::mutex health_mutex_;
  std::unordered_map<std::string, ShardHealth> health_;
  std::condition_variable health_cv_;
  bool health_stop_ = false;
  std::thread health_thread_;
  bool started_ = false;

  std::atomic<std::uint64_t> lus_forwarded_{0};
  std::atomic<std::uint64_t> lus_dropped_{0};
  std::atomic<std::uint64_t> batches_sent_{0};
  std::atomic<std::uint64_t> ticks_{0};
  std::atomic<std::uint64_t> tick_failures_{0};
  std::atomic<std::uint64_t> lookups_{0};
  std::atomic<std::uint64_t> region_queries_{0};
  std::atomic<std::uint64_t> nearest_queries_{0};
  std::atomic<std::uint64_t> neighbors_merged_{0};
  std::atomic<std::uint64_t> query_failures_{0};
  std::atomic<std::uint64_t> reconnects_{0};

  obs::Gauge ring_version_gauge_;  ///< mgrid_cluster_ring_version
};

}  // namespace mgrid::cluster

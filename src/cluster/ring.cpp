#include "cluster/ring.h"

#include <algorithm>
#include <stdexcept>

#include "util/rng.h"

namespace mgrid::cluster {

HashRing::HashRing(RingOptions options) : options_(options) {
  if (options_.vnodes == 0) options_.vnodes = 1;
  if (options_.probes == 0) options_.probes = 1;
}

bool HashRing::add_node(const std::string& name) {
  const auto it = std::lower_bound(nodes_.begin(), nodes_.end(), name);
  if (it != nodes_.end() && *it == name) return false;
  nodes_.insert(it, name);
  rebuild_points();
  ++version_;
  return true;
}

bool HashRing::remove_node(const std::string& name) {
  const auto it = std::lower_bound(nodes_.begin(), nodes_.end(), name);
  if (it == nodes_.end() || *it != name) return false;
  nodes_.erase(it);
  rebuild_points();
  ++version_;
  return true;
}

const std::string& HashRing::owner(std::uint32_t mn) const {
  if (points_.empty()) {
    throw std::logic_error("HashRing::owner on an empty ring");
  }
  // Multi-probe lookup: the key hashes to `probes` positions; the winner is
  // the point with the smallest forward (clockwise) distance over all of
  // them. Ties break by (point, node index) so every process agrees.
  const std::uint64_t key = key_hash(mn);
  std::uint64_t best_distance = 0;
  const std::pair<std::uint64_t, std::uint32_t>* best = nullptr;
  for (std::size_t p = 0; p < options_.probes; ++p) {
    const std::uint64_t probe =
        util::splitmix64(key + p * 0x9E3779B97F4A7C15ull);
    auto it = std::upper_bound(
        points_.begin(), points_.end(), probe,
        [](std::uint64_t k, const auto& point) { return k < point.first; });
    if (it == points_.end()) it = points_.begin();  // wrap past 2^64
    const std::uint64_t distance = it->first - probe;  // mod-2^64 wraps
    if (best == nullptr || distance < best_distance ||
        (distance == best_distance && *it < *best)) {
      best_distance = distance;
      best = &*it;
    }
  }
  return nodes_[best->second];
}

std::vector<std::string> HashRing::nodes() const { return nodes_; }

bool HashRing::contains(const std::string& name) const {
  return std::binary_search(nodes_.begin(), nodes_.end(), name);
}

std::uint64_t HashRing::key_hash(std::uint32_t mn) noexcept {
  return util::splitmix64(mn);
}

void HashRing::rebuild_points() {
  points_.clear();
  points_.reserve(nodes_.size() * options_.vnodes);
  for (std::uint32_t n = 0; n < nodes_.size(); ++n) {
    for (std::size_t v = 0; v < options_.vnodes; ++v) {
      const std::uint64_t point = util::splitmix64(
          util::fnv1a64(nodes_[n] + "#" + std::to_string(v)));
      points_.emplace_back(point, n);
    }
  }
  // nodes_ is sorted by name, so the index order is the name order and ties
  // break deterministically regardless of insertion order.
  std::sort(points_.begin(), points_.end());
}

std::vector<std::uint32_t> moved_mns(const HashRing& before,
                                     const HashRing& after,
                                     const std::vector<std::uint32_t>& mns) {
  std::vector<std::uint32_t> moved;
  for (const std::uint32_t mn : mns) {
    if (before.owner(mn) != after.owner(mn)) moved.push_back(mn);
  }
  return moved;
}

}  // namespace mgrid::cluster

// HLA-lite federation: topic-based publish/subscribe with conservative,
// deterministic time management.
//
// Replaces the DMSO RTI 1.3 the paper used. The execution is time-stepped:
// the federation grants every federate the same sequence of times
// t0 + k*step; before each grant it delivers all interactions with
// timestamp <= grant to every subscriber, in (timestamp, sender, sequence)
// order. Interactions sent during a cycle are staged and only become
// deliverable at the next cycle — combined with the per-federate lookahead
// check this implements a conservative LBTS: no federate ever observes a
// message "from the past".
//
// Two executors produce bit-identical results:
//   kSequential — single thread, federates ticked in join order.
//   kThreaded   — one worker per federate, barrier-synchronised per cycle;
//                 outgoing interactions are staged through a mutex and
//                 re-sorted into total order before the next delivery.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "sim/federate.h"
#include "sim/interaction.h"
#include "util/types.h"

namespace mgrid::sim {

enum class ExecutionMode { kSequential, kThreaded };

/// Aggregate statistics for a completed run.
struct FederationStats {
  std::uint64_t interactions_sent = 0;
  std::uint64_t interactions_delivered = 0;
  std::uint64_t cycles = 0;
  std::size_t max_pending = 0;
};

class Federation {
 public:
  Federation() = default;
  Federation(const Federation&) = delete;
  Federation& operator=(const Federation&) = delete;

  /// Joins a federate; calls its on_join(). The federation keeps the
  /// federate alive for its own lifetime.
  FederateId join(std::shared_ptr<Federate> federate);

  [[nodiscard]] std::size_t federate_count() const noexcept {
    return federates_.size();
  }
  [[nodiscard]] const Federate& federate(FederateId id) const;

  /// Lower Bound Time Stamp: smallest timestamp any federate could still
  /// send, i.e. current grant + min lookahead. Before the run starts this is
  /// t0 + min lookahead.
  [[nodiscard]] SimTime lbts() const noexcept;

  /// Runs the federation from t0 to end with fixed time step `step` (> 0).
  /// Grant times are t0 + k*step for k = 1..N where N = round((end-t0)/step);
  /// end must be (approximately) t0 + N*step.
  void run(SimTime t0, SimTime end, Duration step,
           ExecutionMode mode = ExecutionMode::kSequential);

  [[nodiscard]] const FederationStats& stats() const noexcept {
    return stats_;
  }

 private:
  friend class Federate;

  struct FederateSlot {
    std::shared_ptr<Federate> federate;
    std::vector<std::string> topics;
    std::uint64_t send_sequence = 0;
    std::vector<Interaction> inbox;  // due interactions for this cycle
    /// Wall-clock seconds per cycle (deliver + tick), labelled by federate.
    obs::HistogramMetric step_seconds;
  };

  /// Called by Federate::send(); thread-safe.
  void submit(Federate& sender, std::string topic, SimTime timestamp,
              std::shared_ptr<const InteractionPayload> payload);
  /// Called by Federate::subscribe().
  void subscribe(Federate& subscriber, std::string topic);

  /// Moves staged interactions into the pending queue (keeps total order).
  void merge_staged();
  /// Fills every subscriber's inbox with interactions due at `grant`.
  void prepare_inboxes(SimTime grant);
  /// Delivers one federate's inbox and ticks it, accumulating the delivered
  /// count into *delivered_out (callers own their counter so the threaded
  /// executor's workers never contend on stats_).
  void run_cycle_for(FederateSlot& slot, SimTime grant,
                     std::uint64_t* delivered_out);

  void run_sequential(SimTime t0, std::uint64_t cycles, Duration step);
  void run_threaded(SimTime t0, std::uint64_t cycles, Duration step);

  std::vector<FederateSlot> federates_;
  std::unordered_map<std::string, std::vector<FederateId>> subscriptions_;

  // Interactions ordered for delivery (sorted by InteractionOrder).
  std::vector<Interaction> pending_;
  // Interactions sent during the current cycle (unsorted; mutex-guarded for
  // the threaded executor).
  std::vector<Interaction> staged_;
  std::mutex staged_mutex_;

  SimTime current_grant_ = 0.0;
  bool running_ = false;
  FederationStats stats_;
};

}  // namespace mgrid::sim

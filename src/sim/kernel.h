// Discrete-event simulation kernel.
//
// Drives an EventQueue with a simulation clock: actions scheduled at absolute
// or relative times, periodic tasks, run-until semantics. Used directly by
// the network layer (delayed message delivery) and examples; the federation
// layer builds its time-stepped protocol on the same clock discipline.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "sim/event_queue.h"
#include "util/types.h"

namespace mgrid::sim {

class SimulationKernel {
 public:
  explicit SimulationKernel(SimTime start_time = 0.0) noexcept
      : now_(start_time) {}

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return executed_;
  }
  [[nodiscard]] std::size_t pending_events() const noexcept {
    return queue_.size();
  }

  /// Schedules at an absolute time; throws std::invalid_argument for times
  /// in the past (scheduling exactly `now` is allowed and runs this step).
  EventId schedule_at(SimTime time, EventQueue::Action action,
                      int priority = 0);
  /// Schedules `delay` seconds from now; delay must be >= 0.
  EventId schedule_in(Duration delay, EventQueue::Action action,
                      int priority = 0);

  /// Schedules `action(t)` every `period` starting at `first_time`;
  /// reschedules itself until cancelled. Returns a handle usable with
  /// cancel_periodic(). period must be > 0.
  using PeriodicAction = std::function<void(SimTime)>;
  std::uint64_t schedule_periodic(SimTime first_time, Duration period,
                                  PeriodicAction action, int priority = 0);
  /// Stops a periodic task; returns false if it was not running.
  bool cancel_periodic(std::uint64_t handle);

  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs events until the queue is empty or the clock would pass `end`.
  /// Leaves the clock at min(end, last-event time) — precisely: at `end`.
  void run_until(SimTime end);
  /// Runs to queue exhaustion.
  void run();
  /// Executes the single earliest event; returns false if none pending.
  bool step();
  /// Stops an in-progress run after the current event returns.
  void request_stop() noexcept { stop_requested_ = true; }

 private:
  struct PeriodicTask {
    Duration period;
    PeriodicAction action;
    int priority;
    EventId pending_event;
  };

  void fire_periodic(std::uint64_t handle, SimTime t);

  EventQueue queue_;
  SimTime now_;
  std::uint64_t executed_ = 0;
  bool stop_requested_ = false;
  std::uint64_t next_periodic_ = 1;
  std::unordered_map<std::uint64_t, PeriodicTask> periodic_;
};

}  // namespace mgrid::sim

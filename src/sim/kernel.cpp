#include "sim/kernel.h"

#include <chrono>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mgrid::sim {

namespace {

/// Kernel dispatch telemetry (shared by every kernel instance; handles are
/// acquired once, recording is the wait-free fast path).
struct KernelMetrics {
  obs::Counter events;
  obs::Gauge queue_depth;
  obs::HistogramMetric handler_seconds;

  explicit KernelMetrics(obs::MetricsRegistry& registry) {
    events = registry.counter("mgrid_kernel_events_total", {},
                              "Events executed by the simulation kernel");
    queue_depth = registry.gauge("mgrid_kernel_queue_depth", {},
                                 "Pending events after the last dispatch");
    handler_seconds = registry.histogram(
        "mgrid_kernel_handler_seconds", 0.0, 1e-3, 50, {},
        "Wall-clock seconds spent inside one event handler");
  }
};

KernelMetrics& kernel_metrics() { return obs::instruments<KernelMetrics>(); }

}  // namespace

EventId SimulationKernel::schedule_at(SimTime time, EventQueue::Action action,
                                      int priority) {
  if (time < now_) {
    throw std::invalid_argument(
        "SimulationKernel::schedule_at: time is in the past");
  }
  return queue_.schedule(time, std::move(action), priority);
}

EventId SimulationKernel::schedule_in(Duration delay,
                                      EventQueue::Action action,
                                      int priority) {
  if (delay < 0.0) {
    throw std::invalid_argument(
        "SimulationKernel::schedule_in: negative delay");
  }
  return queue_.schedule(now_ + delay, std::move(action), priority);
}

std::uint64_t SimulationKernel::schedule_periodic(SimTime first_time,
                                                  Duration period,
                                                  PeriodicAction action,
                                                  int priority) {
  if (!(period > 0.0)) {
    throw std::invalid_argument(
        "SimulationKernel::schedule_periodic: period must be > 0");
  }
  if (!action) {
    throw std::invalid_argument(
        "SimulationKernel::schedule_periodic: null action");
  }
  const std::uint64_t handle = next_periodic_++;
  PeriodicTask task{period, std::move(action), priority, 0};
  task.pending_event = schedule_at(
      first_time, [this, handle, first_time] { fire_periodic(handle, first_time); },
      priority);
  periodic_.emplace(handle, std::move(task));
  return handle;
}

void SimulationKernel::fire_periodic(std::uint64_t handle, SimTime t) {
  auto it = periodic_.find(handle);
  if (it == periodic_.end()) return;  // cancelled between pop and fire
  // Reschedule before invoking so the action can cancel its own task.
  const SimTime next = t + it->second.period;
  it->second.pending_event = queue_.schedule(
      next, [this, handle, next] { fire_periodic(handle, next); },
      it->second.priority);
  // Copy the callable handle out: the action may cancel (erase) the task.
  PeriodicAction action = it->second.action;
  action(t);
}

bool SimulationKernel::cancel_periodic(std::uint64_t handle) {
  auto it = periodic_.find(handle);
  if (it == periodic_.end()) return false;
  queue_.cancel(it->second.pending_event);
  periodic_.erase(it);
  return true;
}

void SimulationKernel::run_until(SimTime end) {
  if (end < now_) {
    throw std::invalid_argument("SimulationKernel::run_until: end < now");
  }
  stop_requested_ = false;
  while (!stop_requested_ && !queue_.empty() && queue_.next_time() <= end) {
    step();
  }
  if (!stop_requested_ && now_ < end) now_ = end;
}

void SimulationKernel::run() {
  stop_requested_ = false;
  while (!stop_requested_ && !queue_.empty()) step();
}

bool SimulationKernel::step() {
  if (queue_.empty()) return false;
  EventQueue::PoppedEvent event = queue_.pop();
  now_ = event.time;
  ++executed_;
  if (!obs::enabled()) {  // disabled telemetry: one relaxed atomic load
    event.action();
    return true;
  }
  KernelMetrics& metrics = kernel_metrics();
  obs::TraceRecorder& tracer = obs::current_trace_recorder();
  const bool tracing = tracer.enabled();
  const std::uint64_t trace_start = tracing ? tracer.now_us() : 0;
  const auto start = std::chrono::steady_clock::now();
  event.action();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  metrics.events.inc();
  metrics.handler_seconds.observe(seconds);
  metrics.queue_depth.set(static_cast<double>(queue_.size()));
  if (tracing) {
    tracer.complete("event", "kernel", trace_start,
                    tracer.now_us() - trace_start);
  }
  return true;
}

}  // namespace mgrid::sim

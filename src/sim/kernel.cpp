#include "sim/kernel.h"

#include <stdexcept>

namespace mgrid::sim {

EventId SimulationKernel::schedule_at(SimTime time, EventQueue::Action action,
                                      int priority) {
  if (time < now_) {
    throw std::invalid_argument(
        "SimulationKernel::schedule_at: time is in the past");
  }
  return queue_.schedule(time, std::move(action), priority);
}

EventId SimulationKernel::schedule_in(Duration delay,
                                      EventQueue::Action action,
                                      int priority) {
  if (delay < 0.0) {
    throw std::invalid_argument(
        "SimulationKernel::schedule_in: negative delay");
  }
  return queue_.schedule(now_ + delay, std::move(action), priority);
}

std::uint64_t SimulationKernel::schedule_periodic(SimTime first_time,
                                                  Duration period,
                                                  PeriodicAction action,
                                                  int priority) {
  if (!(period > 0.0)) {
    throw std::invalid_argument(
        "SimulationKernel::schedule_periodic: period must be > 0");
  }
  if (!action) {
    throw std::invalid_argument(
        "SimulationKernel::schedule_periodic: null action");
  }
  const std::uint64_t handle = next_periodic_++;
  PeriodicTask task{period, std::move(action), priority, 0};
  task.pending_event = schedule_at(
      first_time, [this, handle, first_time] { fire_periodic(handle, first_time); },
      priority);
  periodic_.emplace(handle, std::move(task));
  return handle;
}

void SimulationKernel::fire_periodic(std::uint64_t handle, SimTime t) {
  auto it = periodic_.find(handle);
  if (it == periodic_.end()) return;  // cancelled between pop and fire
  // Reschedule before invoking so the action can cancel its own task.
  const SimTime next = t + it->second.period;
  it->second.pending_event = queue_.schedule(
      next, [this, handle, next] { fire_periodic(handle, next); },
      it->second.priority);
  // Copy the callable handle out: the action may cancel (erase) the task.
  PeriodicAction action = it->second.action;
  action(t);
}

bool SimulationKernel::cancel_periodic(std::uint64_t handle) {
  auto it = periodic_.find(handle);
  if (it == periodic_.end()) return false;
  queue_.cancel(it->second.pending_event);
  periodic_.erase(it);
  return true;
}

void SimulationKernel::run_until(SimTime end) {
  if (end < now_) {
    throw std::invalid_argument("SimulationKernel::run_until: end < now");
  }
  stop_requested_ = false;
  while (!stop_requested_ && !queue_.empty() && queue_.next_time() <= end) {
    step();
  }
  if (!stop_requested_ && now_ < end) now_ = end;
}

void SimulationKernel::run() {
  stop_requested_ = false;
  while (!stop_requested_ && !queue_.empty()) step();
}

bool SimulationKernel::step() {
  if (queue_.empty()) return false;
  EventQueue::PoppedEvent event = queue_.pop();
  now_ = event.time;
  ++executed_;
  event.action();
  return true;
}

}  // namespace mgrid::sim

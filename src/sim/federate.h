// Federate: a time-regulating, time-constrained participant in the
// federation (HLA-lite).
//
// Lifecycle per run:
//   on_join      — subscribe to interaction topics
//   on_start(t0) — initialise state at simulation start
//   [per grant cycle]
//     receive(i)        — all due interactions, in total delivery order
//     on_time_grant(t)  — local work; may send() future interactions
//   on_stop(t_end)
//
// Time regulation: an interaction sent while the federate is at grant time t
// must carry a timestamp >= t + lookahead(). The federation enforces this —
// it is what makes conservative synchronisation sound (no federate can
// retroactively inject a message below the LBTS).
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "sim/interaction.h"
#include "util/types.h"

namespace mgrid::sim {

class Federation;

class Federate {
 public:
  /// `lookahead` must be >= 0.
  explicit Federate(std::string name, Duration lookahead = 0.0);
  virtual ~Federate() = default;

  Federate(const Federate&) = delete;
  Federate& operator=(const Federate&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] Duration lookahead() const noexcept { return lookahead_; }
  /// Valid after the federate joined a federation.
  [[nodiscard]] FederateId id() const noexcept { return id_; }
  [[nodiscard]] bool joined() const noexcept { return federation_ != nullptr; }

  // --- callbacks (override in concrete federates) -------------------------
  virtual void on_join() {}
  virtual void on_start(SimTime /*t0*/) {}
  virtual void receive(const Interaction& /*interaction*/) {}
  virtual void on_time_grant(SimTime /*t*/) {}
  virtual void on_stop(SimTime /*t_end*/) {}

 protected:
  /// Publishes an interaction. Only valid inside federation callbacks.
  /// Throws std::logic_error when not joined or when `timestamp` violates
  /// the lookahead constraint.
  void send(std::string topic, SimTime timestamp,
            std::shared_ptr<const InteractionPayload> payload);

  /// Subscribes this federate to a topic (call from on_join()).
  void subscribe(std::string topic);

  /// The federation's current grant time (t0 before the first grant).
  /// Valid inside receive()/on_time_grant() callbacks.
  [[nodiscard]] SimTime granted_time() const;

  /// The federation this federate joined; throws std::logic_error if none.
  [[nodiscard]] Federation& federation() const;

 private:
  friend class Federation;

  std::string name_;
  Duration lookahead_;
  FederateId id_;
  Federation* federation_ = nullptr;
};

}  // namespace mgrid::sim

#include "sim/event_queue.h"

#include <stdexcept>

namespace mgrid::sim {

EventId EventQueue::schedule(SimTime time, Action action, int priority) {
  if (!action) {
    throw std::invalid_argument("EventQueue::schedule: null action");
  }
  const EventId id = next_id_++;
  heap_.push(Entry{time, priority, next_sequence_++, id});
  actions_.emplace(id, std::move(action));
  return id;
}

bool EventQueue::cancel(EventId id) { return actions_.erase(id) != 0; }

void EventQueue::skim() const {
  while (!heap_.empty() &&
         actions_.find(heap_.top().id) == actions_.end()) {
    heap_.pop();
  }
}

SimTime EventQueue::next_time() const {
  skim();
  if (heap_.empty()) throw std::logic_error("EventQueue::next_time: empty");
  return heap_.top().time;
}

EventQueue::PoppedEvent EventQueue::pop() {
  skim();
  if (heap_.empty()) throw std::logic_error("EventQueue::pop: empty");
  const Entry top = heap_.top();
  heap_.pop();
  auto it = actions_.find(top.id);
  PoppedEvent out{top.time, top.id, std::move(it->second)};
  actions_.erase(it);
  return out;
}

void EventQueue::clear() {
  actions_.clear();
  while (!heap_.empty()) heap_.pop();
}

}  // namespace mgrid::sim

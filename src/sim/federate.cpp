#include "sim/federate.h"

#include <stdexcept>

#include "sim/federation.h"

namespace mgrid::sim {

Federate::Federate(std::string name, Duration lookahead)
    : name_(std::move(name)), lookahead_(lookahead) {
  if (lookahead < 0.0) {
    throw std::invalid_argument("Federate: lookahead must be >= 0");
  }
}

Federation& Federate::federation() const {
  if (federation_ == nullptr) {
    throw std::logic_error("Federate '" + name_ + "' has not joined");
  }
  return *federation_;
}

void Federate::send(std::string topic, SimTime timestamp,
                    std::shared_ptr<const InteractionPayload> payload) {
  federation().submit(*this, std::move(topic), timestamp, std::move(payload));
}

void Federate::subscribe(std::string topic) {
  federation().subscribe(*this, std::move(topic));
}

SimTime Federate::granted_time() const { return federation().current_grant_; }

}  // namespace mgrid::sim

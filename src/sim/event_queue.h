// Discrete-event priority queue with stable ordering and cancellation.
//
// Events fire in (time, priority, insertion sequence) order, so two events at
// the same time are always processed in the order they were scheduled —
// determinism the reproduction experiments depend on. Cancellation is lazy
// (O(1) cancel, skipped at pop).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/types.h"

namespace mgrid::sim {

/// Handle to a scheduled event (usable to cancel it).
using EventId = std::uint64_t;

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` at `time` with a tie-breaking `priority` (lower runs
  /// first among equal times). Returns a cancellation handle.
  EventId schedule(SimTime time, Action action, int priority = 0);

  /// Cancels a pending event. Returns false if the event already ran, was
  /// already cancelled, or never existed.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const noexcept { return actions_.empty(); }
  /// Number of live (non-cancelled) pending events.
  [[nodiscard]] std::size_t size() const noexcept { return actions_.size(); }
  /// Time of the earliest live event. Throws std::logic_error when empty.
  [[nodiscard]] SimTime next_time() const;

  struct PoppedEvent {
    SimTime time;
    EventId id;
    Action action;
  };
  /// Pops the earliest live event. Throws std::logic_error when empty.
  PoppedEvent pop();

  /// Drops all pending events.
  void clear();

 private:
  struct Entry {
    SimTime time;
    int priority;
    std::uint64_t sequence;
    EventId id;
  };
  struct EntryGreater {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.sequence > b.sequence;
    }
  };

  /// Removes cancelled entries from the heap top.
  void skim() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, EntryGreater> heap_;
  std::unordered_map<EventId, Action> actions_;
  std::uint64_t next_sequence_ = 0;
  EventId next_id_ = 1;
};

}  // namespace mgrid::sim

#include "sim/object_registry.h"

#include <stdexcept>

namespace mgrid::sim {

std::string object_topic(std::string_view object_class) {
  return std::string(kObjectTopicPrefix) + std::string(object_class);
}

// ---------------------------------------------------------------------------
// ObjectView
// ---------------------------------------------------------------------------

void ObjectView::apply(const Interaction& interaction) {
  const auto* event = interaction.payload_as<ObjectEvent>();
  if (event == nullptr) return;
  switch (event->kind) {
    case ObjectEvent::Kind::kDiscover: {
      Instance& instance = instances_[event->instance];
      instance.id = event->instance;
      instance.object_class = event->object_class;
      instance.name = event->instance_name;
      instance.owner = interaction.sender;
      instance.last_update = interaction.timestamp;
      instance.removed = false;
      for (const auto& [name, value] : event->attributes) {
        instance.attributes[name] = value;
      }
      break;
    }
    case ObjectEvent::Kind::kReflect: {
      auto it = instances_.find(event->instance);
      if (it == instances_.end() || it->second.removed) return;  // unknown
      for (const auto& [name, value] : event->attributes) {
        it->second.attributes[name] = value;
      }
      it->second.last_update = interaction.timestamp;
      break;
    }
    case ObjectEvent::Kind::kRemove: {
      auto it = instances_.find(event->instance);
      if (it != instances_.end()) it->second.removed = true;
      break;
    }
  }
}

std::size_t ObjectView::live_count() const noexcept {
  std::size_t count = 0;
  for (const auto& [id, instance] : instances_) {
    if (!instance.removed) ++count;
  }
  return count;
}

const ObjectView::Instance* ObjectView::find(
    ObjectInstanceId id) const noexcept {
  auto it = instances_.find(id);
  return it == instances_.end() ? nullptr : &it->second;
}

const ObjectView::Instance* ObjectView::find_by_name(
    std::string_view name) const noexcept {
  for (const auto& [id, instance] : instances_) {
    if (!instance.removed && instance.name == name) return &instance;
  }
  return nullptr;
}

std::vector<const ObjectView::Instance*> ObjectView::instances_of(
    std::string_view object_class) const {
  std::vector<const Instance*> out;
  for (const auto& [id, instance] : instances_) {
    if (!instance.removed && instance.object_class == object_class) {
      out.push_back(&instance);
    }
  }
  return out;
}

std::optional<double> ObjectView::attribute_double(
    ObjectInstanceId id, std::string_view name) const {
  const Instance* instance = find(id);
  if (instance == nullptr) return std::nullopt;
  auto it = instance->attributes.find(name);
  if (it == instance->attributes.end()) return std::nullopt;
  if (const double* value = std::get_if<double>(&it->second)) return *value;
  return std::nullopt;
}

std::optional<geo::Vec2> ObjectView::attribute_vec2(
    ObjectInstanceId id, std::string_view name) const {
  const Instance* instance = find(id);
  if (instance == nullptr) return std::nullopt;
  auto it = instance->attributes.find(name);
  if (it == instance->attributes.end()) return std::nullopt;
  if (const geo::Vec2* value = std::get_if<geo::Vec2>(&it->second)) {
    return *value;
  }
  return std::nullopt;
}

std::optional<std::string> ObjectView::attribute_string(
    ObjectInstanceId id, std::string_view name) const {
  const Instance* instance = find(id);
  if (instance == nullptr) return std::nullopt;
  auto it = instance->attributes.find(name);
  if (it == instance->attributes.end()) return std::nullopt;
  if (const std::string* value = std::get_if<std::string>(&it->second)) {
    return *value;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// ObjectPublisher
// ---------------------------------------------------------------------------

ObjectPublisher::ObjectPublisher(FederateId self, SendFn send)
    : self_(self), send_(std::move(send)) {
  if (!self.valid()) {
    throw std::invalid_argument("ObjectPublisher: invalid federate id");
  }
  if (!send_) throw std::invalid_argument("ObjectPublisher: null send");
}

ObjectInstanceId ObjectPublisher::register_object(std::string object_class,
                                                  std::string instance_name,
                                                  SimTime timestamp) {
  if (object_class.empty()) {
    throw std::invalid_argument("ObjectPublisher: empty object class");
  }
  // Federation-unique id: high bits = owning federate, low bits = counter.
  const ObjectInstanceId id =
      (static_cast<ObjectInstanceId>(self_.value()) << 20) | next_local_++;
  auto event = std::make_shared<ObjectEvent>();
  event->kind = ObjectEvent::Kind::kDiscover;
  event->instance = id;
  event->object_class = object_class;
  event->instance_name = std::move(instance_name);
  classes_.emplace(id, object_class);
  send_(object_topic(object_class), timestamp, std::move(event));
  return id;
}

void ObjectPublisher::update_attributes(
    ObjectInstanceId instance,
    std::vector<std::pair<std::string, AttributeValue>> attributes,
    SimTime timestamp) {
  auto it = classes_.find(instance);
  if (it == classes_.end()) {
    throw std::out_of_range("ObjectPublisher: unknown instance");
  }
  auto event = std::make_shared<ObjectEvent>();
  event->kind = ObjectEvent::Kind::kReflect;
  event->instance = instance;
  event->object_class = it->second;
  event->attributes = std::move(attributes);
  send_(object_topic(it->second), timestamp, std::move(event));
}

void ObjectPublisher::remove_object(ObjectInstanceId instance,
                                    SimTime timestamp) {
  auto it = classes_.find(instance);
  if (it == classes_.end()) {
    throw std::out_of_range("ObjectPublisher: unknown instance");
  }
  auto event = std::make_shared<ObjectEvent>();
  event->kind = ObjectEvent::Kind::kRemove;
  event->instance = instance;
  event->object_class = it->second;
  send_(object_topic(it->second), timestamp, std::move(event));
  classes_.erase(it);
}

}  // namespace mgrid::sim

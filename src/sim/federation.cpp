#include "sim/federation.h"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <thread>

#include "obs/eventlog.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace mgrid::sim {

namespace {

struct FederationMetrics {
  obs::Counter sent;
  obs::Counter delivered;
  obs::Counter cycles;

  explicit FederationMetrics(obs::MetricsRegistry& registry) {
    sent = registry.counter("mgrid_federation_interactions_sent_total", {},
                            "Interactions submitted by federates");
    delivered =
        registry.counter("mgrid_federation_interactions_delivered_total", {},
                         "Interactions delivered to subscriber inboxes");
    cycles = registry.counter("mgrid_federation_cycles_total", {},
                              "Completed federation time-grant cycles");
  }
};

FederationMetrics& federation_metrics() {
  return obs::instruments<FederationMetrics>();
}

/// Installs the federation grant time as the sim clock for the logger and
/// this thread's trace recorder for the duration of a run (restored on
/// scope exit, exception-safe). The clock is cleared on the same recorder
/// it was installed on even if the thread's override changes underneath.
class ScopedSimClock {
 public:
  explicit ScopedSimClock(const SimTime* grant)
      : tracer_(&obs::current_trace_recorder()) {
    util::Logger::instance().set_clock([grant] { return *grant; });
    tracer_->set_clock([grant] { return *grant; });
  }
  ~ScopedSimClock() {
    util::Logger::instance().set_clock(nullptr);
    tracer_->set_clock(nullptr);
  }
  ScopedSimClock(const ScopedSimClock&) = delete;
  ScopedSimClock& operator=(const ScopedSimClock&) = delete;

 private:
  obs::TraceRecorder* tracer_;
};

}  // namespace

FederateId Federation::join(std::shared_ptr<Federate> federate) {
  if (!federate) throw std::invalid_argument("Federation::join: null");
  if (federate->joined()) {
    throw std::logic_error("Federation::join: federate '" + federate->name() +
                           "' already joined a federation");
  }
  if (running_) {
    throw std::logic_error("Federation::join: federation is running");
  }
  const FederateId id{static_cast<FederateId::value_type>(federates_.size())};
  federate->id_ = id;
  federate->federation_ = this;
  FederateSlot slot{federate, {}, 0, {}, {}};
  slot.step_seconds = obs::current_registry().histogram(
      "mgrid_federation_step_seconds", 0.0, 0.1, 50,
      {{"federate", federate->name()}},
      "Wall-clock seconds per federate cycle (deliver + tick)");
  federates_.push_back(std::move(slot));
  federate->on_join();
  return id;
}

const Federate& Federation::federate(FederateId id) const {
  if (!id.valid() || id.value() >= federates_.size()) {
    throw std::out_of_range("Federation::federate: bad id");
  }
  return *federates_[id.value()].federate;
}

SimTime Federation::lbts() const noexcept {
  Duration min_lookahead = 0.0;
  bool first = true;
  for (const FederateSlot& slot : federates_) {
    const Duration la = slot.federate->lookahead();
    if (first || la < min_lookahead) {
      min_lookahead = la;
      first = false;
    }
  }
  return current_grant_ + min_lookahead;
}

void Federation::submit(Federate& sender, std::string topic, SimTime timestamp,
                        std::shared_ptr<const InteractionPayload> payload) {
  // Time regulation: a federate at grant t may not send below t + lookahead.
  const SimTime floor = current_grant_ + sender.lookahead();
  if (timestamp < floor) {
    throw std::logic_error(
        "Federate '" + sender.name() + "' violated lookahead: timestamp " +
        std::to_string(timestamp) + " < " + std::to_string(floor));
  }
  Interaction interaction;
  interaction.topic = std::move(topic);
  interaction.timestamp = timestamp;
  interaction.sender = sender.id();
  interaction.payload = std::move(payload);
  {
    std::lock_guard lock(staged_mutex_);
    interaction.sequence = federates_[sender.id().value()].send_sequence++;
    staged_.push_back(std::move(interaction));
    ++stats_.interactions_sent;
  }
  if (obs::enabled()) federation_metrics().sent.inc();
}

void Federation::subscribe(Federate& subscriber, std::string topic) {
  if (running_) {
    throw std::logic_error("Federation::subscribe: federation is running");
  }
  auto& subs = subscriptions_[topic];
  const FederateId id = subscriber.id();
  if (std::find(subs.begin(), subs.end(), id) == subs.end()) {
    subs.push_back(id);
    federates_[id.value()].topics.push_back(std::move(topic));
  }
}

void Federation::merge_staged() {
  std::lock_guard lock(staged_mutex_);
  if (staged_.empty()) return;
  pending_.insert(pending_.end(), std::make_move_iterator(staged_.begin()),
                  std::make_move_iterator(staged_.end()));
  staged_.clear();
  std::sort(pending_.begin(), pending_.end(), InteractionOrder{});
  stats_.max_pending = std::max(stats_.max_pending, pending_.size());
}

void Federation::prepare_inboxes(SimTime grant) {
  // pending_ is sorted; find the prefix due at this grant.
  auto due_end = std::find_if(
      pending_.begin(), pending_.end(),
      [grant](const Interaction& i) { return i.timestamp > grant; });
  for (auto it = pending_.begin(); it != due_end; ++it) {
    auto subs = subscriptions_.find(it->topic);
    if (subs == subscriptions_.end()) continue;
    for (FederateId id : subs->second) {
      federates_[id.value()].inbox.push_back(*it);
    }
  }
  pending_.erase(pending_.begin(), due_end);
}

void Federation::run_cycle_for(FederateSlot& slot, SimTime grant,
                               std::uint64_t* delivered_out) {
  // Thread-safe: called concurrently by the threaded executor's workers
  // (histogram shards + tracer handle their own synchronisation).
  const bool instrumented = obs::enabled();
  obs::TraceRecorder& tracer = obs::current_trace_recorder();
  const bool tracing = tracer.enabled();
  const std::uint64_t trace_start = tracing ? tracer.now_us() : 0;
  const auto start = instrumented ? std::chrono::steady_clock::now()
                                  : std::chrono::steady_clock::time_point{};
  for (const Interaction& interaction : slot.inbox) {
    slot.federate->receive(interaction);
  }
  *delivered_out += slot.inbox.size();
  if (instrumented) {
    federation_metrics().delivered.inc(slot.inbox.size());
  }
  slot.inbox.clear();
  slot.federate->on_time_grant(grant);
  if (instrumented) {
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    slot.step_seconds.observe(seconds);
  }
  if (tracing) {
    tracer.complete(slot.federate->name(), "federation", trace_start,
                    tracer.now_us() - trace_start);
  }
}

void Federation::run(SimTime t0, SimTime end, Duration step,
                     ExecutionMode mode) {
  if (!(step > 0.0)) {
    throw std::invalid_argument("Federation::run: step must be > 0");
  }
  if (end < t0) throw std::invalid_argument("Federation::run: end < t0");
  const double cycles_exact = (end - t0) / step;
  const auto cycles = static_cast<std::uint64_t>(std::llround(cycles_exact));
  if (std::abs(cycles_exact - static_cast<double>(cycles)) > 1e-6) {
    throw std::invalid_argument(
        "Federation::run: (end - t0) must be an integer multiple of step");
  }
  running_ = true;
  current_grant_ = t0;
  // While the run is in flight, log lines and trace events carry the
  // federation grant time as their sim timestamp.
  ScopedSimClock sim_clock(&current_grant_);
  util::log_debug("federation: run start, ", federates_.size(),
                  " federates, ", cycles, " cycles of ", step, " s");
  for (FederateSlot& slot : federates_) slot.federate->on_start(t0);
  merge_staged();

  if (mode == ExecutionMode::kSequential) {
    run_sequential(t0, cycles, step);
  } else {
    run_threaded(t0, cycles, step);
  }

  for (FederateSlot& slot : federates_) slot.federate->on_stop(current_grant_);
  util::log_debug("federation: run complete, ",
                  stats_.interactions_delivered, " interactions delivered");
  running_ = false;
  stats_.cycles += cycles;
  if (obs::enabled()) federation_metrics().cycles.inc(cycles);
}

void Federation::run_sequential(SimTime t0, std::uint64_t cycles,
                                Duration step) {
  for (std::uint64_t k = 1; k <= cycles; ++k) {
    const SimTime grant = t0 + static_cast<double>(k) * step;
    prepare_inboxes(grant);
    current_grant_ = grant;
    for (FederateSlot& slot : federates_) {
      run_cycle_for(slot, grant, &stats_.interactions_delivered);
    }
    merge_staged();
  }
}

void Federation::run_threaded(SimTime t0, std::uint64_t cycles,
                              Duration step) {
  if (federates_.empty()) return;
  const std::size_t n = federates_.size();
  // Two barrier phases per cycle: (a) after the coordinator prepared
  // inboxes, workers deliver+tick; (b) after all workers finished, the
  // coordinator merges staged sends and advances the clock.
  std::barrier sync(static_cast<std::ptrdiff_t>(n) + 1);
  std::atomic<SimTime> grant_time{t0};
  std::atomic<bool> done{false};
  // A federate callback throwing in a worker thread must reach the caller,
  // not std::terminate: the first exception is captured, the run winds
  // down cooperatively, and the coordinator rethrows after joining.
  std::atomic<bool> failed{false};
  std::exception_ptr first_exception;
  std::mutex exception_mutex;
  // stats_.interactions_delivered is coordinator-only in this mode; workers
  // accumulate their own counts and the coordinator folds them in at the end.
  std::vector<std::uint64_t> delivered(n, 0);

  // Telemetry destinations and log sim-clock are thread-scoped; workers
  // inherit the coordinator's registry, trace recorder and event log (all
  // per-experiment when the sweep engine injected them) and stamp their log
  // lines with this federation's grant.
  obs::MetricsRegistry& parent_registry = obs::current_registry();
  obs::TraceRecorder& parent_tracer = obs::current_trace_recorder();
  obs::EventLog* parent_event_log = obs::current_event_log();
  std::vector<std::thread> workers;
  workers.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers.emplace_back([this, i, &sync, &grant_time, &done, &delivered,
                          &failed, &first_exception, &exception_mutex,
                          &parent_registry, &parent_tracer, parent_event_log] {
      obs::ScopedRegistry scoped_registry(parent_registry);
      obs::ScopedTraceRecorder scoped_tracer(parent_tracer);
      std::optional<obs::ScopedEventLog> scoped_event_log;
      if (parent_event_log != nullptr) {
        scoped_event_log.emplace(*parent_event_log);
      }
      util::Logger::instance().set_clock(
          [&grant_time] { return grant_time.load(std::memory_order_acquire); });
      while (true) {
        sync.arrive_and_wait();  // wait for inboxes
        if (done.load(std::memory_order_acquire)) return;
        if (!failed.load(std::memory_order_acquire)) {
          try {
            run_cycle_for(federates_[i],
                          grant_time.load(std::memory_order_acquire),
                          &delivered[i]);
          } catch (...) {
            std::lock_guard lock(exception_mutex);
            if (!first_exception) first_exception = std::current_exception();
            failed.store(true, std::memory_order_release);
          }
        }
        sync.arrive_and_wait();  // cycle complete
      }
    });
  }

  for (std::uint64_t k = 1; k <= cycles; ++k) {
    const SimTime grant = t0 + static_cast<double>(k) * step;
    prepare_inboxes(grant);
    current_grant_ = grant;
    grant_time.store(grant, std::memory_order_release);
    sync.arrive_and_wait();  // release workers
    sync.arrive_and_wait();  // wait for workers
    merge_staged();
    if (failed.load(std::memory_order_acquire)) break;
  }
  done.store(true, std::memory_order_release);
  sync.arrive_and_wait();  // let workers observe `done` and exit
  for (std::thread& t : workers) t.join();
  for (std::uint64_t d : delivered) stats_.interactions_delivered += d;
  if (first_exception) std::rethrow_exception(first_exception);
}

}  // namespace mgrid::sim

// HLA-lite object management: registered object instances with reflected
// attributes.
//
// HLA federations carry two kinds of data: transient *interactions*
// (sim/interaction.h) and persistent *objects* whose attribute updates are
// reflected to subscribers. This registry implements the object half:
// a federate registers an instance of an object class, updates named
// attributes, and every federate subscribed to that class observes the
// updates (delivered with the same conservative timestamp order as
// interactions — reflection rides ON the interaction bus, so both
// executors stay deterministic).
//
// Attribute values are double/Vec2/string variants — enough for the mobile
// grid's object state (positions, speeds, names) without a serialisation
// layer.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "geo/vec2.h"
#include "sim/interaction.h"
#include "util/types.h"

namespace mgrid::sim {

/// Attribute value types supported by the reflection layer.
using AttributeValue = std::variant<double, geo::Vec2, std::string>;

/// Handle of a registered object instance (unique per federation).
using ObjectInstanceId = std::uint32_t;
inline constexpr ObjectInstanceId kInvalidObject =
    std::numeric_limits<ObjectInstanceId>::max();

/// Topic prefix used by the reflection layer on the interaction bus.
inline constexpr std::string_view kObjectTopicPrefix = "hla.object.";

/// Interaction payload carrying one object event.
struct ObjectEvent final : InteractionPayload {
  enum class Kind { kDiscover, kReflect, kRemove };

  Kind kind = Kind::kReflect;
  ObjectInstanceId instance = kInvalidObject;
  std::string object_class;
  std::string instance_name;  // set on discover
  /// Updated attributes (reflect) — name -> value.
  std::vector<std::pair<std::string, AttributeValue>> attributes;
};

/// A federate-local view of all discovered instances of the classes the
/// federate subscribed to. Feed every received ObjectEvent through
/// apply(); query current attribute state at any time.
class ObjectView {
 public:
  struct Instance {
    ObjectInstanceId id = kInvalidObject;
    std::string object_class;
    std::string name;
    FederateId owner;
    std::map<std::string, AttributeValue, std::less<>> attributes;
    SimTime last_update = 0.0;
    bool removed = false;
  };

  /// Applies a received event (call from Federate::receive()).
  void apply(const Interaction& interaction);

  [[nodiscard]] std::size_t live_count() const noexcept;
  /// Instance by id; nullptr when never discovered.
  [[nodiscard]] const Instance* find(ObjectInstanceId id) const noexcept;
  /// First live instance with this name; nullptr when absent.
  [[nodiscard]] const Instance* find_by_name(
      std::string_view name) const noexcept;
  /// All live instances of a class, ordered by id.
  [[nodiscard]] std::vector<const Instance*> instances_of(
      std::string_view object_class) const;

  /// Typed attribute accessors (nullopt when absent or of another type).
  [[nodiscard]] std::optional<double> attribute_double(
      ObjectInstanceId id, std::string_view name) const;
  [[nodiscard]] std::optional<geo::Vec2> attribute_vec2(
      ObjectInstanceId id, std::string_view name) const;
  [[nodiscard]] std::optional<std::string> attribute_string(
      ObjectInstanceId id, std::string_view name) const;

 private:
  std::map<ObjectInstanceId, Instance> instances_;
};

/// Builds the interaction topic for an object class.
[[nodiscard]] std::string object_topic(std::string_view object_class);

/// Publisher side: owned by the federate that registers objects. Emits
/// discover/reflect/remove events through the owning federate's send()
/// (passed in as a callback so this helper stays decoupled from Federate).
class ObjectPublisher {
 public:
  using SendFn = std::function<void(std::string topic, SimTime timestamp,
                                    std::shared_ptr<const InteractionPayload>)>;

  /// `self` is the owning federate's id (used to mint federation-unique
  /// instance ids); `send` must forward to Federate::send.
  ObjectPublisher(FederateId self, SendFn send);

  /// Registers an instance; emits a kDiscover event at `timestamp`.
  ObjectInstanceId register_object(std::string object_class,
                                   std::string instance_name,
                                   SimTime timestamp);
  /// Emits a kReflect event with the given attribute updates. Throws
  /// std::out_of_range for an unknown/removed instance.
  void update_attributes(
      ObjectInstanceId instance,
      std::vector<std::pair<std::string, AttributeValue>> attributes,
      SimTime timestamp);
  /// Emits a kRemove event and forgets the instance locally.
  void remove_object(ObjectInstanceId instance, SimTime timestamp);

  [[nodiscard]] std::size_t owned_count() const noexcept {
    return classes_.size();
  }

 private:
  FederateId self_;
  SendFn send_;
  std::uint32_t next_local_ = 0;
  std::map<ObjectInstanceId, std::string> classes_;  // owned instances
};

}  // namespace mgrid::sim

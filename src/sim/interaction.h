// HLA-lite interactions.
//
// The paper runs its mobile grid on an HLA 1.3 federation; interactions are
// HLA's timestamped publish/subscribe messages. Ours carry a topic string, a
// timestamp, the sending federate and a polymorphic payload. Delivery order
// is total and deterministic: (timestamp, sender, per-sender sequence).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "util/types.h"

namespace mgrid::sim {

/// Base class for interaction payloads. Concrete payloads are plain structs
/// deriving from this; receivers recover them with Interaction::payload_as.
struct InteractionPayload {
  virtual ~InteractionPayload() = default;
};

struct Interaction {
  std::string topic;
  SimTime timestamp = 0.0;
  FederateId sender;
  /// Per-sender sequence number (assigned by the federation at send time).
  std::uint64_t sequence = 0;
  std::shared_ptr<const InteractionPayload> payload;

  /// Typed payload access; nullptr when the payload is of another type.
  template <typename T>
  [[nodiscard]] const T* payload_as() const noexcept {
    return dynamic_cast<const T*>(payload.get());
  }
};

/// Total delivery order: (timestamp, sender, sequence). Strict weak order.
struct InteractionOrder {
  bool operator()(const Interaction& a, const Interaction& b) const noexcept {
    if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
    if (a.sender != b.sender) return a.sender < b.sender;
    return a.sequence < b.sequence;
  }
};

/// Convenience for building payloads.
template <typename T, typename... Args>
std::shared_ptr<const InteractionPayload> make_payload(Args&&... args) {
  return std::make_shared<const T>(std::forward<Args>(args)...);
}

}  // namespace mgrid::sim

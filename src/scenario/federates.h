// The three federates of the mobile-grid federation (paper Fig. 3 + §3.4).
//
//   MobilityFederate — the mobile computing infrastructure: integrates all
//     MN motion at sub-tick resolution, associates nodes with wireless
//     gateways, tracks per-device radio energy, and publishes every sampled
//     position as an LU (plus a ground-truth interaction used only for
//     scoring). In device-side mode the node itself suppresses LUs using
//     the DTH the ADF pushed down to it.
//   FilterFederate — the ADF box: runs a LocationUpdateFilter over incoming
//     LUs and forwards only the surviving ones to the broker; accounts
//     traffic per region kind. In device-side mode it computes and pushes
//     DTHs instead of filtering.
//   BrokerFederate — the grid infrastructure: LocationDb + optional
//     Location Estimator; scores its view against the ground-truth stream
//     under either accounting mode (see ScoringMode).
#pragma once

#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "broker/grid_broker.h"
#include "broker/scheduler.h"
#include "core/adf.h"
#include "core/device_filter.h"
#include "core/update_filter.h"
#include "geo/campus.h"
#include "net/bursty_channel.h"
#include "net/channel.h"
#include "net/energy.h"
#include "net/gateway.h"
#include "net/message.h"
#include "net/traffic.h"
#include "scenario/metrics.h"
#include "scenario/workload.h"
#include "sim/federate.h"

namespace mgrid::scenario {

/// Ground-truth interaction (not a network message — scoring only).
inline constexpr std::string_view kTopicTruth = "mn.truth";

struct TruthSample final : sim::InteractionPayload {
  MnId mn;
  geo::Vec2 position;
  geo::Vec2 velocity;
  SimTime sampled_at = 0.0;
  geo::RegionKind region_kind = geo::RegionKind::kRoad;
};

/// How the broker's location error is scored against ground truth.
///
///  * kRealTime — error between the truth at time t and the view the broker
///    actually held at t; the 2-cycle MN->ADF->broker delivery latency is
///    charged to the broker (what a live job scheduler experiences).
///  * kLogical — the paper's accounting: truth(t) is compared against the
///    broker's belief about time t once the (unfiltered) LU for t has had
///    time to arrive; the ideal reporter scores ~0 and all remaining error
///    is attributable to filtering (and estimation quality).
enum class ScoringMode { kRealTime, kLogical };

/// Grid job workload: the broker recruits MNs for compute jobs through the
/// federation (JobAssign down, JobResult up). rate == 0 disables jobs.
struct JobWorkloadConfig {
  /// Mean job arrivals per second (Poisson).
  double rate = 0.0;
  /// Work units per job (uniform range).
  mobility::SpeedRange work{5.0, 20.0};
  /// Seconds before an unanswered job is declared failed.
  Duration timeout = 60.0;
  /// MNs recruited per job.
  std::size_t replicas = 1;
  broker::SchedulerParams scheduler;
};

/// Outcome of the job workload.
struct JobReport {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t timed_out = 0;
  /// Jobs that never found enough candidates.
  std::uint64_t still_pending = 0;
  /// Jobs in flight when the run ended.
  std::uint64_t still_running = 0;
  /// Mean seconds from submission to the last replica's result.
  double mean_completion_time = 0.0;
  /// Mean TRUE distance between an assignee and the job site at assignment
  /// (locality of the broker's picks — measured on the device).
  double mean_dispatch_distance = 0.0;
};

/// Per-device energy outcome of a run.
struct DeviceEnergyReport {
  std::uint64_t lus_transmitted = 0;
  std::uint64_t lus_suppressed_on_device = 0;
  std::uint64_t dth_updates_received = 0;
  std::uint64_t lus_dropped_battery = 0;
  /// Mean joules spent on the radio per node, by device class and overall.
  double mean_energy_j = 0.0;
  double mean_energy_cellphone_j = 0.0;
  double mean_energy_pda_j = 0.0;
  double mean_energy_laptop_j = 0.0;
  /// Projected mean cell-phone lifetime at this run's drain rate, hours
  /// (capacity / (consumed/duration) / 3600; 0 when nothing was consumed).
  double projected_cellphone_lifetime_h = 0.0;
};

struct MobilityConfig {
  Duration sample_period = 1.0;
  /// Sub-tick motion integration step; must divide sample_period.
  Duration motion_dt = 0.1;
  /// Ground-truth timestamp delay for kLogical scoring (see ScoringMode).
  Duration truth_delay = 0.0;
  /// Uniform loss/latency channel.
  net::ChannelParams channel;
  /// Bursty (Gilbert-Elliott) channel; p_enter_bad == 0 disables it and the
  /// uniform channel above applies instead.
  net::GilbertElliottChannel::Params burst;
  /// Device-side filtering: nodes suppress LUs locally using ADF-pushed
  /// DTHs (subscribes to the DTH downlink).
  bool device_side = false;
  /// Radio energy model (always accounted, whatever the filtering mode).
  net::EnergyParams energy;
  /// Liveness beacons: when a node has not transmitted anything for this
  /// long (its LUs were all suppressed), it sends a small KeepAlive so the
  /// broker can tell "parked" from "dead". 0 disables keepalives.
  Duration keepalive_interval = 0.0;
};

class MobilityFederate final : public sim::Federate {
 public:
  /// `workload` and `gateways` must outlive the federate.
  MobilityFederate(Workload& workload, net::GatewayNetwork& gateways,
                   MobilityConfig config, util::RngStream channel_rng);

  void on_join() override;
  void on_start(SimTime t0) override;
  void receive(const sim::Interaction& interaction) override;
  void on_time_grant(SimTime t) override;

  [[nodiscard]] std::uint64_t lus_published() const noexcept {
    return lus_published_;
  }
  [[nodiscard]] std::uint64_t lus_lost() const noexcept { return lus_lost_; }
  [[nodiscard]] std::uint64_t keepalives_sent() const noexcept {
    return keepalives_sent_;
  }

  /// Energy/suppression outcome; `duration` is the run length used for the
  /// lifetime projection.
  [[nodiscard]] DeviceEnergyReport energy_report(Duration duration) const;

  /// Mean TRUE assignee-to-site distance at assignment and jobs finished on
  /// devices (the device half of the JobReport).
  [[nodiscard]] double mean_dispatch_distance() const noexcept {
    return dispatch_distance_.mean();
  }
  [[nodiscard]] std::uint64_t jobs_computed() const noexcept {
    return jobs_computed_;
  }

  /// Device-side suppression accounting (mirrors into the metrics registry;
  /// only record_suppressed is ever hit from this federate).
  [[nodiscard]] const net::TrafficAccountant& accountant() const noexcept {
    return accountant_;
  }

 private:
  struct ActiveJob {
    JobId job;
    double remaining_units;
  };

  void publish_samples(SimTime t);
  void run_compute(SimTime t);
  [[nodiscard]] geo::RegionKind kind_at(geo::Vec2 p) const;
  [[nodiscard]] bool channel_delivers(MnId mn);

  Workload& workload_;
  net::GatewayNetwork& gateways_;
  MobilityConfig config_;
  std::size_t substeps_;
  net::ChannelModel channel_;
  std::unique_ptr<net::GilbertElliottChannel> bursty_;
  util::RngStream channel_rng_;
  net::EnergyModel energy_;
  net::TrafficAccountant accountant_;
  std::vector<net::Battery> batteries_;           // by MnId
  std::vector<core::DeviceSideFilter> device_filters_;  // by MnId
  std::vector<SimTime> last_transmission_;        // by MnId
  std::vector<std::vector<ActiveJob>> job_queues_;  // by MnId, FIFO
  stats::RunningStats dispatch_distance_;
  std::uint64_t jobs_computed_ = 0;
  std::uint64_t lus_published_ = 0;
  std::uint64_t lus_lost_ = 0;
  std::uint64_t lus_dropped_battery_ = 0;
  std::uint64_t keepalives_sent_ = 0;
};

class FilterFederate final : public sim::Federate {
 public:
  /// Takes ownership of the filtering policy. `campus` must outlive the
  /// federate; `bucket_width` sizes the Fig. 4 series buckets.
  ///
  /// `device_side` true switches the ADF box from filtering to DTH
  /// publication: every received LU is forwarded (the device already
  /// filtered), and the node's DTH is pushed on the downlink whenever it
  /// drifts by more than `dth_hysteresis` (relative). Requires the filter
  /// to be an AdaptiveDistanceFilter.
  ///
  /// Sharded deployment: with `shard_count > 1`, this instance only
  /// processes LUs whose relaying gateway hashes to `shard_index`
  /// (edge-of-network ADFs, one per gateway group). Each shard runs its
  /// own classifier/clusterer — a node crossing shards is re-learned by
  /// the new shard, which is the realistic handover cost.
  FilterFederate(std::unique_ptr<core::LocationUpdateFilter> filter,
                 const geo::CampusMap& campus, Duration bucket_width = 1.0,
                 bool device_side = false, double dth_hysteresis = 0.1,
                 std::size_t shard_index = 0, std::size_t shard_count = 1);

  void on_join() override;
  void receive(const sim::Interaction& interaction) override;

  [[nodiscard]] const TrafficMetrics& traffic() const noexcept {
    return traffic_;
  }
  /// Gateway-crossing traffic seen by this shard: every LU/beacon that
  /// survived the air is recorded uplink here (post shard-dedup, so shards
  /// never double-count), DTH pushes downlink, and server-side filter
  /// decisions feed the suppressed count. All totals mirror into the
  /// process-global metrics registry.
  [[nodiscard]] const net::TrafficAccountant& accountant() const noexcept {
    return accountant_;
  }
  [[nodiscard]] const core::LocationUpdateFilter& filter() const noexcept {
    return *filter_;
  }
  [[nodiscard]] std::uint64_t dth_updates_published() const noexcept {
    return dth_updates_published_;
  }

 private:
  std::unique_ptr<core::LocationUpdateFilter> filter_;
  core::AdaptiveDistanceFilter* adf_ = nullptr;  // set in device-side mode
  const geo::CampusMap& campus_;
  TrafficMetrics traffic_;
  net::TrafficAccountant accountant_;
  bool device_side_;
  double dth_hysteresis_;
  std::size_t shard_index_;
  std::size_t shard_count_;
  std::unordered_map<MnId, double> pushed_dth_;
  std::uint64_t dth_updates_published_ = 0;
};

class BrokerFederate final : public sim::Federate {
 public:
  /// `estimator_prototype` nullptr disables location estimation (the
  /// "without LE" configurations). When `jobs.rate > 0`, the federate also
  /// runs the grid-job workload: Poisson arrivals at random building
  /// sites, dispatched through the location-aware JobScheduler, with a
  /// per-job timeout. `campus` may be nullptr when jobs are disabled.
  BrokerFederate(
      std::unique_ptr<estimation::LocationEstimator> estimator_prototype,
      Duration bucket_width = 1.0,
      ScoringMode scoring = ScoringMode::kRealTime,
      JobWorkloadConfig jobs = {}, const geo::CampusMap* campus = nullptr,
      util::RngStream job_rng = util::RngStream(0));

  void on_join() override;
  void receive(const sim::Interaction& interaction) override;
  void on_time_grant(SimTime t) override;

  [[nodiscard]] const broker::GridBroker& broker() const noexcept {
    return broker_;
  }
  [[nodiscard]] const ErrorMetrics& errors() const noexcept { return errors_; }

  /// Broker-side half of the job outcome (dispatch distance is filled in
  /// by the experiment runner from the mobility federate).
  [[nodiscard]] JobReport job_report() const;

 private:
  struct BufferedTruth {
    MnId mn;
    geo::Vec2 position;
    SimTime sampled_at;
    geo::RegionKind kind;
  };
  struct TrackedJob {
    SimTime deadline;
    bool dispatched = false;
    double work_units = 0.0;
    geo::Vec2 site;
  };

  void run_job_workload(SimTime t);
  void dispatch(JobId job, SimTime t);

  broker::GridBroker broker_;
  ErrorMetrics errors_;
  ScoringMode scoring_;
  std::vector<BufferedTruth> truths_;
  std::unordered_map<MnId, geo::Vec2> view_snapshot_;

  JobWorkloadConfig jobs_;
  const geo::CampusMap* campus_;
  util::RngStream job_rng_;
  broker::JobScheduler scheduler_;
  std::map<JobId, TrackedJob> tracked_jobs_;
  SimTime next_arrival_ = -1.0;
  std::uint32_t next_job_id_ = 0;
  std::uint64_t jobs_completed_ = 0;
  std::uint64_t jobs_timed_out_ = 0;
  stats::RunningStats completion_time_;
};

}  // namespace mgrid::scenario

// Single-call experiment runner.
//
// Builds campus + Table-1 workload + gateways, wires the three federates
// into a federation, runs it for the configured duration and extracts every
// series and summary the paper's figures need. All benches and several
// integration tests drive experiments exclusively through this API.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "broker/grid_broker.h"
#include "core/adf.h"
#include "core/baselines.h"
#include "net/channel.h"
#include "obs/eventlog.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "scenario/federates.h"
#include "scenario/workload.h"
#include "sim/federation.h"
#include "util/types.h"

namespace mgrid::scenario {

enum class FilterKind {
  kIdeal,
  kAdf,
  kGeneralDf,
  /// Temporal reporting: one LU per `time_filter_interval` seconds.
  kTimeFilter,
  /// DIS-style prediction-based reporting (see core::PredictionFilter).
  kPrediction,
};

[[nodiscard]] std::string_view to_string(FilterKind kind) noexcept;

struct ExperimentOptions {
  /// Simulated duration, seconds (paper: 1800).
  Duration duration = 1800.0;
  /// LU sampling period == federation step (paper: 1 s).
  Duration sample_period = 1.0;
  /// Motion integration sub-step (must divide sample_period).
  Duration motion_dt = 0.1;
  /// Root seed for all RNG streams.
  std::uint64_t seed = 42;

  FilterKind filter = FilterKind::kAdf;
  /// DTH factor ("0.75 av" etc.) applied to the chosen filter.
  double dth_factor = 1.0;
  /// Full ADF parameter block (dth_factor/sample_period are overridden by
  /// the fields above).
  core::AdfParams adf;
  core::GeneralDfParams general_df;
  /// kTimeFilter: reporting interval, seconds.
  Duration time_filter_interval = 5.0;
  /// kPrediction: deviation threshold (metres) and shared predictor name.
  double prediction_threshold = 2.0;
  std::string prediction_estimator = "dead_reckoning";
  /// > 0 wraps the chosen filter in BoundedSilenceFilter: a node silent
  /// this long has its next LU forced through (staleness guarantee).
  Duration max_silence = 0.0;

  /// Location estimator at the broker: "" disables LE; otherwise any name
  /// estimation::make_estimator() accepts ("brown_polar", "ar", ...).
  std::string estimator;
  /// Smoothing coefficient override for the brown_* / ses estimators
  /// (0 keeps each estimator's default).
  double estimator_alpha = 0.0;
  /// Wrap the estimator in MapMatchedEstimator (snaps road-bound forecasts
  /// onto the road network) — the repository's extension beyond the paper.
  bool map_match = false;
  /// Clamp the forecast horizon to this many seconds (0 = unlimited).
  /// Prevents long-outage extrapolation blowups; see
  /// HorizonClampedEstimator.
  Duration forecast_horizon = 0.0;

  WorkloadParams workload;
  /// 0 = the paper's campus (5 roads, 6 buildings). N > 0 = a generated
  /// NxN-block Manhattan campus (scalability experiments; the workload
  /// recipe scales with the region count).
  std::size_t campus_blocks = 0;
  net::ChannelParams channel;
  /// Bursty-outage channel (Gilbert-Elliott); p_enter_bad == 0 disables.
  net::GilbertElliottChannel::Params burst;
  /// Device-side filtering extension: the ADF pushes DTHs to the nodes and
  /// suppression happens on the device, saving uplink energy. Requires
  /// filter == kAdf.
  bool device_side_filtering = false;
  /// Radio energy model (always accounted).
  net::EnergyParams energy;
  /// Liveness beacon interval for device-side-silent nodes (0 = off).
  Duration keepalive_interval = 0.0;
  /// Grid job workload dispatched through the federation (rate 0 = off).
  JobWorkloadConfig jobs;
  /// Number of ADF instances, sharded by relaying gateway (edge
  /// deployment). Each shard has its own classifier/clusterer; a node
  /// crossing shards is re-learned by the new shard. Must be >= 1.
  std::size_t adf_shards = 1;
  sim::ExecutionMode mode = sim::ExecutionMode::kSequential;
  /// Telemetry registry this experiment records into. nullptr keeps the
  /// calling thread's current registry (MetricsRegistry::global() unless a
  /// ScopedRegistry is already installed). Inject a per-experiment registry
  /// to run experiments concurrently without corrupting each other's
  /// counters — the sweep engine does exactly that. The registry must
  /// outlive the run_experiment() call.
  obs::MetricsRegistry* registry = nullptr;
  /// Per-LU decision event log (flight recorder). nullptr disables capture
  /// entirely (the instrumentation costs one relaxed atomic load); non-null
  /// installs it for this run via obs::ScopedEventLog — threaded federation
  /// workers inherit it — and stamps the run info header. Must outlive the
  /// run_experiment() call.
  obs::EventLog* event_log = nullptr;
  /// Trace recorder for this run's spans. nullptr keeps the calling
  /// thread's current recorder (TraceRecorder::global() unless a
  /// ScopedTraceRecorder is already installed). The sweep engine injects a
  /// per-job recorder so concurrent jobs never interleave spans into the
  /// global ring. Must outlive the run_experiment() call.
  obs::TraceRecorder* tracer = nullptr;
  /// Metric bucket width, seconds.
  Duration bucket_width = 1.0;
  /// Error accounting (see ScoringMode). kRealTime (default) scores the
  /// view the broker actually held — filtering AND delivery latency — which
  /// is what a live scheduler experiences and where the paper's "LE halves
  /// the error" claim reproduces. kLogical isolates pure filtering error
  /// (ideal scores ~0; errors are bounded by the DTH).
  ScoringMode scoring = ScoringMode::kRealTime;
};

/// Broker's final view of one MN when the federation stopped. The serving
/// layer's eventlog replay reproduces these to verify it drives the shared
/// estimation core exactly as the federation broker did.
struct FinalPosition {
  std::uint32_t mn = 0;
  /// Time of the view (sample time when reported, tick time when estimated).
  double t = 0.0;
  double x = 0.0;
  double y = 0.0;
  bool estimated = false;
};

struct ExperimentResult {
  // --- traffic (Figs. 4-6) -------------------------------------------------
  /// Transmitted LUs per metric bucket.
  std::vector<double> lu_per_bucket;
  /// Running total of transmitted LUs per bucket (Fig. 5).
  std::vector<double> lu_cumulative;
  double mean_lu_per_bucket = 0.0;
  std::uint64_t total_transmitted = 0;
  std::uint64_t total_attempted = 0;
  /// Overall fraction of LUs that reached the broker.
  double transmission_rate = 1.0;
  double road_transmission_rate = 1.0;
  double building_transmission_rate = 1.0;

  // --- location error (Figs. 7-9) -------------------------------------------
  std::vector<double> rmse_per_bucket;
  std::vector<double> rmse_per_bucket_road;
  std::vector<double> rmse_per_bucket_building;
  double rmse_overall = 0.0;
  double rmse_road = 0.0;
  double rmse_building = 0.0;
  double mae_overall = 0.0;

  // --- bookkeeping ----------------------------------------------------------
  std::size_t node_count = 0;
  broker::BrokerStats broker_stats;
  sim::FederationStats federation_stats;
  std::uint64_t handovers = 0;
  std::uint64_t lus_lost_on_air = 0;
  /// Gateway-crossing traffic from the TrafficAccountant (the same totals
  /// the metrics registry exports as mgrid_net_messages_total /
  /// mgrid_net_bytes_total / mgrid_lu_suppressed_total).
  std::uint64_t uplink_messages = 0;
  std::uint64_t uplink_bytes = 0;
  std::uint64_t downlink_messages = 0;
  std::uint64_t downlink_bytes = 0;
  /// LUs suppressed before reaching the broker — server-side filter
  /// decisions plus device-side suppression, never both for one LU.
  std::uint64_t lus_suppressed = 0;
  /// ADF internals (0 for baselines).
  std::size_t final_cluster_count = 0;
  std::uint64_t cluster_rebuilds = 0;
  /// Radio energy outcome (see DeviceEnergyReport).
  DeviceEnergyReport energy;
  /// DTH downlink control messages (device-side mode only).
  std::uint64_t dth_downlink_messages = 0;
  /// Liveness beacons sent by long-silent nodes.
  std::uint64_t keepalives_sent = 0;
  std::uint64_t keepalives_received = 0;
  /// Grid job workload outcome (all zero when disabled).
  JobReport jobs;
  /// Broker's final per-MN views, sorted by MN id.
  std::vector<FinalPosition> final_positions;
};

/// Runs one experiment. Throws on invalid options.
[[nodiscard]] ExperimentResult run_experiment(const ExperimentOptions& options);

}  // namespace mgrid::scenario

// Experiment result serialisation.
//
// Exports an ExperimentResult (optionally with the options that produced
// it) as a single JSON document — the hand-off format for external
// plotting/analysis pipelines.
#pragma once

#include <string>

#include "scenario/experiment.h"
#include "util/json.h"

namespace mgrid::scenario {

/// Serialises options + result to JSON. `include_series` controls whether
/// the per-bucket series (potentially thousands of numbers) are embedded.
[[nodiscard]] std::string to_json(const ExperimentOptions& options,
                                  const ExperimentResult& result,
                                  bool include_series = true);

/// Writes to_json() to a file; throws std::runtime_error when unwritable.
void save_json(const std::string& path, const ExperimentOptions& options,
               const ExperimentResult& result, bool include_series = true);

/// Inverse of to_json for the *result* portion: rebuilds an
/// ExperimentResult from a parsed document produced by to_json. Every
/// result field the writer emits is read back (the round-trip test in
/// tests/scenario fails when the two drift apart); the options block is
/// ignored. Throws util::JsonParseError on missing fields.
[[nodiscard]] ExperimentResult result_from_json(const util::JsonValue& doc);

/// Parses the file at `path` (as written by save_json) into a result.
/// Throws std::runtime_error when unreadable.
[[nodiscard]] ExperimentResult load_result_json(const std::string& path);

}  // namespace mgrid::scenario

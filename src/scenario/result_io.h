// Experiment result serialisation.
//
// Exports an ExperimentResult (optionally with the options that produced
// it) as a single JSON document — the hand-off format for external
// plotting/analysis pipelines.
#pragma once

#include <string>

#include "scenario/experiment.h"

namespace mgrid::scenario {

/// Serialises options + result to JSON. `include_series` controls whether
/// the per-bucket series (potentially thousands of numbers) are embedded.
[[nodiscard]] std::string to_json(const ExperimentOptions& options,
                                  const ExperimentResult& result,
                                  bool include_series = true);

/// Writes to_json() to a file; throws std::runtime_error when unwritable.
void save_json(const std::string& path, const ExperimentOptions& options,
               const ExperimentResult& result, bool include_series = true);

}  // namespace mgrid::scenario

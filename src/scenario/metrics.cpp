#include "scenario/metrics.h"

#include <cmath>

#include "obs/metrics.h"

namespace mgrid::scenario {

namespace {

constexpr std::size_t kKindCount = 3;  // road, building, gate

/// Scenario collectors mirror into the shared registry so run_experiment's
/// figures and the exporters read the same totals (single source of truth).
struct ScenarioMetrics {
  obs::Counter attempted[kKindCount];
  obs::Counter transmitted[kKindCount];
  obs::HistogramMetric error_meters;
  obs::Gauge rmse_meters;

  explicit ScenarioMetrics(obs::MetricsRegistry& registry) {
    for (std::size_t k = 0; k < kKindCount; ++k) {
      const std::string region(
          geo::to_string(static_cast<geo::RegionKind>(k)));
      attempted[k] =
          registry.counter("mgrid_lu_attempted_total", {{"region", region}},
                           "Location updates sampled before filtering");
      transmitted[k] =
          registry.counter("mgrid_lu_transmitted_total", {{"region", region}},
                           "Location updates that passed the filter");
    }
    error_meters = registry.histogram(
        "mgrid_broker_error_meters", 0.0, 50.0, 50, {},
        "Distance between true position and broker view, meters");
    rmse_meters = registry.gauge(
        "mgrid_broker_rmse_meters", {},
        "Running RMSE of the broker's view against ground truth, meters");
  }
};

ScenarioMetrics& scenario_metrics() {
  return obs::instruments<ScenarioMetrics>();
}

}  // namespace

TrafficMetrics::TrafficMetrics(Duration bucket_width)
    : transmitted_series_(bucket_width) {}

void TrafficMetrics::record(SimTime t, bool transmitted,
                            geo::RegionKind kind) {
  ++attempted_;
  KindCounters& counters = by_kind_[kind];
  ++counters.attempted;
  if (transmitted) {
    ++transmitted_;
    ++counters.transmitted;
    transmitted_series_.add_count(t);
  }
  if (obs::enabled()) {
    const auto k = static_cast<std::size_t>(kind);
    scenario_metrics().attempted[k].inc();
    if (transmitted) scenario_metrics().transmitted[k].inc();
  }
}

void TrafficMetrics::merge(const TrafficMetrics& other) {
  transmitted_series_.merge(other.transmitted_series_);
  transmitted_ += other.transmitted_;
  attempted_ += other.attempted_;
  for (const auto& [kind, counters] : other.by_kind_) {
    KindCounters& mine = by_kind_[kind];
    mine.attempted += counters.attempted;
    mine.transmitted += counters.transmitted;
  }
}

double TrafficMetrics::transmission_rate() const noexcept {
  if (attempted_ == 0) return 1.0;
  return static_cast<double>(transmitted_) / static_cast<double>(attempted_);
}

double TrafficMetrics::transmission_rate(geo::RegionKind kind) const noexcept {
  auto it = by_kind_.find(kind);
  if (it == by_kind_.end() || it->second.attempted == 0) return 1.0;
  return static_cast<double>(it->second.transmitted) /
         static_cast<double>(it->second.attempted);
}

std::uint64_t TrafficMetrics::transmitted_in(
    geo::RegionKind kind) const noexcept {
  auto it = by_kind_.find(kind);
  return it == by_kind_.end() ? 0 : it->second.transmitted;
}

std::uint64_t TrafficMetrics::attempted_in(
    geo::RegionKind kind) const noexcept {
  auto it = by_kind_.find(kind);
  return it == by_kind_.end() ? 0 : it->second.attempted;
}

ErrorMetrics::ErrorMetrics(Duration bucket_width)
    : bucket_width_(bucket_width), squared_series_(bucket_width) {}

void ErrorMetrics::record(SimTime t, geo::Vec2 real, geo::Vec2 view,
                          geo::RegionKind kind) {
  const double error = geo::distance(real, view);
  overall_.add_error(error);
  squared_series_.add(t, error * error);
  if (obs::enabled()) {
    ScenarioMetrics& metrics = scenario_metrics();
    metrics.error_meters.observe(error);
    // The running RMSE moves slowly; refreshing the gauge every 64th sample
    // keeps the sqrt off the per-sample path.
    if ((overall_.count() & 0x3F) == 0) {
      metrics.rmse_meters.set(overall_.rmse());
    }
  }
  by_kind_[kind].add_error(error);
  auto it = kind_series_.find(kind);
  if (it == kind_series_.end()) {
    it = kind_series_.emplace(kind, stats::TimeSeries(bucket_width_)).first;
  }
  it->second.add(t, error * error);
}

double ErrorMetrics::rmse(geo::RegionKind kind) const noexcept {
  auto it = by_kind_.find(kind);
  return it == by_kind_.end() ? 0.0 : it->second.rmse();
}

std::vector<double> ErrorMetrics::to_rmse(const stats::TimeSeries& squared) {
  std::vector<double> out = squared.means();
  for (double& v : out) v = std::sqrt(v);
  return out;
}

std::vector<double> ErrorMetrics::rmse_series() const {
  return to_rmse(squared_series_);
}

std::vector<double> ErrorMetrics::rmse_series(geo::RegionKind kind) const {
  auto it = kind_series_.find(kind);
  if (it == kind_series_.end()) return {};
  return to_rmse(it->second);
}

}  // namespace mgrid::scenario

#include "scenario/metrics.h"

#include <cmath>

namespace mgrid::scenario {

TrafficMetrics::TrafficMetrics(Duration bucket_width)
    : transmitted_series_(bucket_width) {}

void TrafficMetrics::record(SimTime t, bool transmitted,
                            geo::RegionKind kind) {
  ++attempted_;
  KindCounters& counters = by_kind_[kind];
  ++counters.attempted;
  if (transmitted) {
    ++transmitted_;
    ++counters.transmitted;
    transmitted_series_.add_count(t);
  }
}

void TrafficMetrics::merge(const TrafficMetrics& other) {
  transmitted_series_.merge(other.transmitted_series_);
  transmitted_ += other.transmitted_;
  attempted_ += other.attempted_;
  for (const auto& [kind, counters] : other.by_kind_) {
    KindCounters& mine = by_kind_[kind];
    mine.attempted += counters.attempted;
    mine.transmitted += counters.transmitted;
  }
}

double TrafficMetrics::transmission_rate() const noexcept {
  if (attempted_ == 0) return 1.0;
  return static_cast<double>(transmitted_) / static_cast<double>(attempted_);
}

double TrafficMetrics::transmission_rate(geo::RegionKind kind) const noexcept {
  auto it = by_kind_.find(kind);
  if (it == by_kind_.end() || it->second.attempted == 0) return 1.0;
  return static_cast<double>(it->second.transmitted) /
         static_cast<double>(it->second.attempted);
}

std::uint64_t TrafficMetrics::transmitted_in(
    geo::RegionKind kind) const noexcept {
  auto it = by_kind_.find(kind);
  return it == by_kind_.end() ? 0 : it->second.transmitted;
}

std::uint64_t TrafficMetrics::attempted_in(
    geo::RegionKind kind) const noexcept {
  auto it = by_kind_.find(kind);
  return it == by_kind_.end() ? 0 : it->second.attempted;
}

ErrorMetrics::ErrorMetrics(Duration bucket_width)
    : bucket_width_(bucket_width), squared_series_(bucket_width) {}

void ErrorMetrics::record(SimTime t, geo::Vec2 real, geo::Vec2 view,
                          geo::RegionKind kind) {
  const double error = geo::distance(real, view);
  overall_.add_error(error);
  squared_series_.add(t, error * error);
  by_kind_[kind].add_error(error);
  auto it = kind_series_.find(kind);
  if (it == kind_series_.end()) {
    it = kind_series_.emplace(kind, stats::TimeSeries(bucket_width_)).first;
  }
  it->second.add(t, error * error);
}

double ErrorMetrics::rmse(geo::RegionKind kind) const noexcept {
  auto it = by_kind_.find(kind);
  return it == by_kind_.end() ? 0.0 : it->second.rmse();
}

std::vector<double> ErrorMetrics::to_rmse(const stats::TimeSeries& squared) {
  std::vector<double> out = squared.means();
  for (double& v : out) v = std::sqrt(v);
  return out;
}

std::vector<double> ErrorMetrics::rmse_series() const {
  return to_rmse(squared_series_);
}

std::vector<double> ErrorMetrics::rmse_series(geo::RegionKind kind) const {
  auto it = kind_series_.find(kind);
  if (it == kind_series_.end()) return {};
  return to_rmse(it->second);
}

}  // namespace mgrid::scenario

#include "scenario/workload.h"

#include <stdexcept>
#include <string>

#include "mobility/linear_model.h"
#include "mobility/random_model.h"
#include "mobility/stop_model.h"

namespace mgrid::scenario {

namespace {

std::string node_name(const geo::Region& region, std::string_view role,
                      std::size_t index) {
  return region.name() + "." + std::string(role) + std::to_string(index);
}

}  // namespace

Workload::Workload(const geo::CampusMap& campus, const WorkloadParams& params,
                   const util::RngRegistry& rng)
    : campus_(campus), params_(params) {
  if (!params.road_human_speed.valid() || !params.road_vehicle_speed.valid() ||
      !params.building_rms_speed.valid() ||
      !params.building_lms_speed.valid() || !params.lms_dwell.valid()) {
    throw std::invalid_argument("WorkloadParams: invalid range");
  }

  util::RngStream placement = rng.stream("workload.placement");
  auto next_id = [this] {
    return MnId{static_cast<MnId::value_type>(nodes_.size())};
  };

  auto add_node = [&](mobility::MnSpec spec,
                      std::unique_ptr<mobility::MobilityModel> model) {
    nodes_.emplace_back(std::move(spec), std::move(model),
                        rng.stream("workload.node", nodes_.size()));
  };

  // --- Roads: human + vehicle LMS traffic ---------------------------------
  for (RegionId road_id : campus.roads()) {
    const geo::Region& road = campus.region(road_id);
    for (std::size_t i = 0; i < params.road_humans_per_road; ++i) {
      mobility::MnSpec spec;
      spec.id = next_id();
      spec.name = node_name(road, "h", i);
      spec.type = mobility::MnType::kHuman;
      spec.device = (i % 2 == 0) ? mobility::DeviceType::kCellPhone
                                 : mobility::DeviceType::kPda;
      spec.home_region = road_id;
      spec.assigned_pattern = mobility::MobilityPattern::kLinear;
      spec.assigned_speed = params.road_human_speed;
      const geo::Vec2 start = road.sample(placement);
      mobility::LinearMovementModel::Params lm;
      lm.speed = params.road_human_speed;
      lm.dwell = params.lms_dwell;
      lm.speed_resample_interval = params.lms_speed_resample;
      util::RngStream init = rng.stream("workload.init", nodes_.size());
      add_node(std::move(spec),
               std::make_unique<mobility::LinearMovementModel>(
                   start, lm,
                   std::make_unique<mobility::GraphPathProvider>(
                       campus.graph(), /*allow_entrances=*/true),
                   init));
    }
    for (std::size_t i = 0; i < params.road_vehicles_per_road; ++i) {
      mobility::MnSpec spec;
      spec.id = next_id();
      spec.name = node_name(road, "v", i);
      spec.type = mobility::MnType::kVehicle;
      spec.device = mobility::DeviceType::kLaptop;
      spec.home_region = road_id;
      spec.assigned_pattern = mobility::MobilityPattern::kLinear;
      spec.assigned_speed = params.road_vehicle_speed;
      const geo::Vec2 start = road.sample(placement);
      mobility::LinearMovementModel::Params lm;
      lm.speed = params.road_vehicle_speed;
      lm.dwell = params.lms_dwell;
      lm.speed_resample_interval = params.lms_speed_resample;
      util::RngStream init = rng.stream("workload.init", nodes_.size());
      add_node(std::move(spec),
               std::make_unique<mobility::LinearMovementModel>(
                   start, lm,
                   std::make_unique<mobility::GraphPathProvider>(
                       campus.graph(), /*allow_entrances=*/false),
                   init));
    }
  }

  // --- Buildings: SS + RMS + LMS humans -----------------------------------
  for (RegionId building_id : campus.buildings()) {
    const geo::Region& building = campus.region(building_id);
    const geo::Rect* rect = building.rect();
    if (rect == nullptr) {
      throw std::logic_error("Workload: building without a rectangle");
    }
    // Keep indoor movers a little off the walls.
    const geo::Rect interior = rect->inflated(-2.0);

    for (std::size_t i = 0; i < params.building_ss_per_building; ++i) {
      mobility::MnSpec spec;
      spec.id = next_id();
      spec.name = node_name(building, "ss", i);
      spec.type = mobility::MnType::kHuman;
      spec.device = mobility::DeviceType::kLaptop;
      spec.home_region = building_id;
      spec.assigned_pattern = mobility::MobilityPattern::kStop;
      spec.assigned_speed = {0.0, 0.0};
      add_node(std::move(spec), std::make_unique<mobility::StopModel>(
                                    interior.sample(placement)));
    }
    for (std::size_t i = 0; i < params.building_rms_per_building; ++i) {
      mobility::MnSpec spec;
      spec.id = next_id();
      spec.name = node_name(building, "rms", i);
      spec.type = mobility::MnType::kHuman;
      spec.device = mobility::DeviceType::kPda;
      spec.home_region = building_id;
      spec.assigned_pattern = mobility::MobilityPattern::kRandom;
      spec.assigned_speed = params.building_rms_speed;
      mobility::RandomMovementModel::Params rm;
      rm.speed = params.building_rms_speed;
      util::RngStream init = rng.stream("workload.init", nodes_.size());
      add_node(std::move(spec),
               std::make_unique<mobility::RandomMovementModel>(
                   interior.sample(placement), interior, rm, init));
    }
    for (std::size_t i = 0; i < params.building_lms_per_building; ++i) {
      mobility::MnSpec spec;
      spec.id = next_id();
      spec.name = node_name(building, "lms", i);
      spec.type = mobility::MnType::kHuman;
      spec.device = mobility::DeviceType::kCellPhone;
      spec.home_region = building_id;
      spec.assigned_pattern = mobility::MobilityPattern::kLinear;
      spec.assigned_speed = params.building_lms_speed;
      mobility::LinearMovementModel::Params lm;
      lm.speed = params.building_lms_speed;
      lm.dwell = params.lms_dwell;
      lm.speed_resample_interval = params.lms_speed_resample;
      util::RngStream init = rng.stream("workload.init", nodes_.size());
      add_node(std::move(spec),
               std::make_unique<mobility::LinearMovementModel>(
                   interior.sample(placement), lm,
                   std::make_unique<mobility::RectPathProvider>(interior),
                   init));
    }
  }
}

const mobility::MobileNode& Workload::node(MnId id) const {
  if (!id.valid() || id.value() >= nodes_.size()) {
    throw std::out_of_range("Workload::node: bad id");
  }
  return nodes_[id.value()];
}

mobility::MobileNode& Workload::node(MnId id) {
  if (!id.valid() || id.value() >= nodes_.size()) {
    throw std::out_of_range("Workload::node: bad id");
  }
  return nodes_[id.value()];
}

void Workload::step_all(Duration dt) {
  for (mobility::MobileNode& node : nodes_) node.step(dt);
}

stats::Table Workload::specification_table() const {
  stats::Table table({"Region", "#Regions", "MP", "MN type", "#MN",
                      "Velocity range (m/s)"});
  auto range_str = [](const mobility::SpeedRange& r) {
    return stats::format_double(r.lo, 1) + " ~ " +
           stats::format_double(r.hi, 1);
  };
  const std::size_t roads = campus_.roads().size();
  const std::size_t buildings = campus_.buildings().size();
  table.add_row({"Road", std::to_string(roads), "LMS", "Human",
                 std::to_string(roads * params_.road_humans_per_road),
                 range_str(params_.road_human_speed)});
  table.add_row({"Road", std::to_string(roads), "LMS", "Vehicle",
                 std::to_string(roads * params_.road_vehicles_per_road),
                 range_str(params_.road_vehicle_speed)});
  table.add_row({"Building", std::to_string(buildings), "SS", "Human",
                 std::to_string(buildings * params_.building_ss_per_building),
                 "0.0 ~ 0.0"});
  table.add_row({"Building", std::to_string(buildings), "RMS", "Human",
                 std::to_string(buildings * params_.building_rms_per_building),
                 range_str(params_.building_rms_speed)});
  table.add_row({"Building", std::to_string(buildings), "LMS", "Human",
                 std::to_string(buildings * params_.building_lms_per_building),
                 range_str(params_.building_lms_speed)});
  return table;
}

}  // namespace mgrid::scenario

// Metric collectors for the paper's figures.
//
//  * TrafficMetrics — per-second LU counts (Fig. 4), cumulative totals
//    (Fig. 5) and per-region-kind transmission rates (Fig. 6).
//  * ErrorMetrics — per-second location RMSE (Fig. 7) and per-region-kind
//    RMSE (Figs. 8/9).
#pragma once

#include <map>
#include <unordered_map>

#include "geo/region.h"
#include "stats/rmse.h"
#include "stats/time_series.h"
#include "util/types.h"

namespace mgrid::scenario {

class TrafficMetrics {
 public:
  explicit TrafficMetrics(Duration bucket_width = 1.0);

  /// Records one sampled LU: whether it was transmitted, and the region
  /// kind the MN was in.
  void record(SimTime t, bool transmitted, geo::RegionKind kind);

  /// Merges another collector (sharded-ADF aggregation). Bucket widths
  /// must match.
  void merge(const TrafficMetrics& other);

  [[nodiscard]] const stats::TimeSeries& transmitted_series() const noexcept {
    return transmitted_series_;
  }
  [[nodiscard]] std::uint64_t total_transmitted() const noexcept {
    return transmitted_;
  }
  [[nodiscard]] std::uint64_t total_attempted() const noexcept {
    return attempted_;
  }
  [[nodiscard]] double mean_per_bucket() const noexcept {
    return transmitted_series_.mean_bucket_sum();
  }
  /// Fraction transmitted overall (1.0 when nothing recorded).
  [[nodiscard]] double transmission_rate() const noexcept;
  /// Fraction transmitted for one region kind (1.0 when none recorded).
  [[nodiscard]] double transmission_rate(geo::RegionKind kind) const noexcept;
  [[nodiscard]] std::uint64_t transmitted_in(geo::RegionKind kind)
      const noexcept;
  [[nodiscard]] std::uint64_t attempted_in(geo::RegionKind kind)
      const noexcept;

 private:
  struct KindCounters {
    std::uint64_t attempted = 0;
    std::uint64_t transmitted = 0;
  };

  stats::TimeSeries transmitted_series_;
  std::uint64_t transmitted_ = 0;
  std::uint64_t attempted_ = 0;
  std::map<geo::RegionKind, KindCounters> by_kind_;
};

class ErrorMetrics {
 public:
  explicit ErrorMetrics(Duration bucket_width = 1.0);

  /// Records one (true position, broker view) pair at time t, attributed to
  /// the region kind of the true position.
  void record(SimTime t, geo::Vec2 real, geo::Vec2 view, geo::RegionKind kind);

  /// Overall RMSE across the whole run.
  [[nodiscard]] double overall_rmse() const noexcept {
    return overall_.rmse();
  }
  [[nodiscard]] double overall_mae() const noexcept { return overall_.mae(); }
  [[nodiscard]] std::size_t sample_count() const noexcept {
    return overall_.count();
  }
  /// RMSE restricted to one region kind.
  [[nodiscard]] double rmse(geo::RegionKind kind) const noexcept;

  /// Per-bucket RMSE series (Fig. 7's y-axis): sqrt(mean squared error of
  /// the bucket).
  [[nodiscard]] std::vector<double> rmse_series() const;
  /// Per-bucket RMSE restricted to a region kind (Figs. 8/9).
  [[nodiscard]] std::vector<double> rmse_series(geo::RegionKind kind) const;

 private:
  static std::vector<double> to_rmse(const stats::TimeSeries& squared);

  Duration bucket_width_;
  stats::RmseAccumulator overall_;
  stats::TimeSeries squared_series_;
  std::map<geo::RegionKind, stats::RmseAccumulator> by_kind_;
  std::map<geo::RegionKind, stats::TimeSeries> kind_series_;
};

}  // namespace mgrid::scenario

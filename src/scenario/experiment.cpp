#include "scenario/experiment.h"

#include <memory>
#include <optional>
#include <stdexcept>

#include "core/protocols.h"
#include "estimation/brown_estimator.h"
#include "estimation/estimator.h"
#include "estimation/horizon_clamped.h"
#include "estimation/map_matched.h"
#include "net/gateway.h"
#include "scenario/federates.h"

namespace mgrid::scenario {

std::string_view to_string(FilterKind kind) noexcept {
  switch (kind) {
    case FilterKind::kIdeal:
      return "ideal";
    case FilterKind::kAdf:
      return "adf";
    case FilterKind::kGeneralDf:
      return "general_df";
    case FilterKind::kTimeFilter:
      return "time_filter";
    case FilterKind::kPrediction:
      return "prediction";
  }
  return "unknown";
}

namespace {

std::unique_ptr<core::LocationUpdateFilter> make_filter(
    const ExperimentOptions& options) {
  std::unique_ptr<core::LocationUpdateFilter> filter;
  switch (options.filter) {
    case FilterKind::kIdeal:
      filter = std::make_unique<core::IdealReporter>();
      break;
    case FilterKind::kAdf: {
      core::AdfParams params = options.adf;
      params.dth_factor = options.dth_factor;
      params.sample_period = options.sample_period;
      filter = std::make_unique<core::AdaptiveDistanceFilter>(params);
      break;
    }
    case FilterKind::kGeneralDf: {
      core::GeneralDfParams params = options.general_df;
      params.dth_factor = options.dth_factor;
      params.sample_period = options.sample_period;
      filter = std::make_unique<core::GeneralDistanceFilter>(params);
      break;
    }
    case FilterKind::kTimeFilter:
      filter = std::make_unique<core::TimeFilter>(options.time_filter_interval);
      break;
    case FilterKind::kPrediction: {
      const std::string estimator = options.prediction_estimator;
      filter = std::make_unique<core::PredictionFilter>(
          [estimator] { return estimation::make_estimator(estimator); },
          options.prediction_threshold);
      break;
    }
  }
  if (!filter) throw std::invalid_argument("make_filter: unknown filter kind");
  if (options.max_silence > 0.0) {
    filter = std::make_unique<core::BoundedSilenceFilter>(std::move(filter),
                                                          options.max_silence);
  }
  return filter;
}

std::unique_ptr<estimation::LocationEstimator> make_broker_estimator(
    const ExperimentOptions& options, const geo::CampusMap& campus) {
  if (options.estimator.empty()) return nullptr;
  std::unique_ptr<estimation::LocationEstimator> estimator =
      estimation::make_estimator(options.estimator, options.estimator_alpha,
                                 options.sample_period);
  if (options.map_match) {
    estimator = std::make_unique<estimation::MapMatchedEstimator>(
        std::move(estimator), campus);
  }
  if (options.forecast_horizon > 0.0) {
    estimator = std::make_unique<estimation::HorizonClampedEstimator>(
        std::move(estimator), options.forecast_horizon);
  }
  return estimator;
}

}  // namespace

ExperimentResult run_experiment(const ExperimentOptions& options) {
  if (!(options.duration > 0.0)) {
    throw std::invalid_argument("ExperimentOptions: duration must be > 0");
  }
  // Route every instrumented subsystem at the injected registry for the
  // duration of this experiment (restored on exit, exception-safe).
  std::optional<obs::ScopedRegistry> scoped_registry;
  if (options.registry != nullptr) scoped_registry.emplace(*options.registry);
  // Same injection discipline for spans and the per-LU flight recorder:
  // install for this run, restore on exit. Threaded federation workers
  // re-install the current thread's recorder/log inside each worker.
  std::optional<obs::ScopedTraceRecorder> scoped_tracer;
  if (options.tracer != nullptr) scoped_tracer.emplace(*options.tracer);
  std::optional<obs::ScopedEventLog> scoped_event_log;
  if (options.event_log != nullptr) {
    obs::EventLogRunInfo info;
    info.duration = options.duration;
    info.sample_period = options.sample_period;
    info.bucket_width = options.bucket_width;
    info.seed = options.seed;
    info.filter = std::string(to_string(options.filter));
    info.estimator = options.estimator;
    info.scoring =
        options.scoring == ScoringMode::kLogical ? "logical" : "realtime";
    info.estimator_alpha = options.estimator_alpha;
    info.forecast_horizon = options.forecast_horizon;
    info.map_match = options.map_match;
    // MN sample -> ADF -> broker: two federation cycles (see
    // scenario/federates.cpp) — replay drivers rebuild broker arrival
    // ticks from this.
    info.pipeline_depth = 2;
    options.event_log->set_run_info(info);
    scoped_event_log.emplace(*options.event_log);
  }

  const geo::CampusMap campus =
      options.campus_blocks > 0
          ? geo::CampusMap::grid_campus(options.campus_blocks,
                                        options.campus_blocks)
          : geo::CampusMap::default_campus();
  const util::RngRegistry rng(options.seed);
  Workload workload(campus, options.workload, rng);
  net::GatewayNetwork gateways(campus);

  if (options.device_side_filtering &&
      (options.filter != FilterKind::kAdf || options.max_silence > 0.0)) {
    throw std::invalid_argument(
        "ExperimentOptions: device-side filtering requires the plain ADF");
  }
  MobilityConfig mobility_config;
  mobility_config.sample_period = options.sample_period;
  mobility_config.motion_dt = options.motion_dt;
  // In logical scoring mode the ground-truth interaction is delayed by the
  // pipeline depth (MN -> ADF -> broker = 2 cycles) so it reaches the
  // scorer together with its LU.
  mobility_config.truth_delay = options.scoring == ScoringMode::kLogical
                                    ? 2.0 * options.sample_period
                                    : 0.0;
  mobility_config.channel = options.channel;
  mobility_config.burst = options.burst;
  mobility_config.device_side = options.device_side_filtering;
  mobility_config.energy = options.energy;
  mobility_config.keepalive_interval = options.keepalive_interval;
  if (options.adf_shards == 0) {
    throw std::invalid_argument("ExperimentOptions: adf_shards must be >= 1");
  }
  auto mobility = std::make_shared<MobilityFederate>(
      workload, gateways, mobility_config, rng.stream("channel"));
  std::vector<std::shared_ptr<FilterFederate>> filters;
  for (std::size_t shard = 0; shard < options.adf_shards; ++shard) {
    filters.push_back(std::make_shared<FilterFederate>(
        make_filter(options), campus, options.bucket_width,
        options.device_side_filtering, /*dth_hysteresis=*/0.1, shard,
        options.adf_shards));
  }
  auto broker = std::make_shared<BrokerFederate>(
      make_broker_estimator(options, campus), options.bucket_width,
      options.scoring, options.jobs, &campus, rng.stream("jobs"));

  sim::Federation federation;
  federation.join(mobility);
  for (const auto& filter : filters) federation.join(filter);
  federation.join(broker);
  federation.run(0.0, options.duration, options.sample_period, options.mode);

  ExperimentResult result;
  result.node_count = workload.size();

  // Aggregate traffic across ADF shards (a single shard is the common case).
  TrafficMetrics traffic(options.bucket_width);
  for (const auto& filter : filters) traffic.merge(filter->traffic());
  result.lu_per_bucket = traffic.transmitted_series().sums();
  result.lu_cumulative = traffic.transmitted_series().cumulative_sums();
  result.mean_lu_per_bucket = traffic.mean_per_bucket();
  result.total_transmitted = traffic.total_transmitted();
  result.total_attempted = traffic.total_attempted();
  result.transmission_rate = traffic.transmission_rate();
  result.road_transmission_rate =
      traffic.transmission_rate(geo::RegionKind::kRoad);
  result.building_transmission_rate =
      traffic.transmission_rate(geo::RegionKind::kBuilding);

  const ErrorMetrics& errors = broker->errors();
  result.rmse_per_bucket = errors.rmse_series();
  result.rmse_per_bucket_road = errors.rmse_series(geo::RegionKind::kRoad);
  result.rmse_per_bucket_building =
      errors.rmse_series(geo::RegionKind::kBuilding);
  result.rmse_overall = errors.overall_rmse();
  result.rmse_road = errors.rmse(geo::RegionKind::kRoad);
  result.rmse_building = errors.rmse(geo::RegionKind::kBuilding);
  result.mae_overall = errors.overall_mae();

  result.broker_stats = broker->broker().stats();
  result.federation_stats = federation.stats();
  result.handovers = gateways.handover_count();
  result.lus_lost_on_air = mobility->lus_lost();
  for (const auto& filter : filters) {
    const net::TrafficAccountant& accountant = filter->accountant();
    result.uplink_messages += accountant.total(net::Direction::kUplink).messages;
    result.uplink_bytes += accountant.total(net::Direction::kUplink).bytes;
    result.downlink_messages +=
        accountant.total(net::Direction::kDownlink).messages;
    result.downlink_bytes += accountant.total(net::Direction::kDownlink).bytes;
    result.lus_suppressed += accountant.suppressed();
  }
  result.lus_suppressed += mobility->accountant().suppressed();
  result.energy = mobility->energy_report(options.duration);
  for (const auto& filter : filters) {
    result.dth_downlink_messages += filter->dth_updates_published();
  }
  result.keepalives_sent = mobility->keepalives_sent();
  result.keepalives_received = broker->broker().stats().keepalives_received;
  result.jobs = broker->job_report();
  result.jobs.mean_dispatch_distance = mobility->mean_dispatch_distance();

  for (const auto& filter : filters) {
    if (const auto* adf = dynamic_cast<const core::AdaptiveDistanceFilter*>(
            &filter->filter())) {
      result.final_cluster_count += adf->clusterer().cluster_count();
      result.cluster_rebuilds += adf->rebuilds();
    }
  }

  const broker::LocationDb& db = broker->broker().db();
  for (MnId mn : db.known_nodes()) {  // sorted -> deterministic order
    const std::optional<broker::LocationRecord> record = db.lookup(mn);
    const broker::LocationFix& view = record->current_view;
    result.final_positions.push_back({static_cast<std::uint32_t>(mn.value()),
                                      view.t, view.position.x,
                                      view.position.y, view.estimated});
  }
  return result;
}

}  // namespace mgrid::scenario

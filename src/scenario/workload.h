// Table-1 workload construction.
//
// The paper's experiment population: on each of the 5 roads, 5 human LMS
// nodes (1-4 m/s) and 5 vehicle LMS nodes (4-10 m/s); in each of the 6
// buildings, 5 SS (0 m/s), 5 RMS (0-1 m/s) and 5 LMS (up to 1.5 m/s) human
// nodes — 140 MNs total. Counts and speed ranges are parameters so the
// ablation benches can scale the population.
#pragma once

#include <memory>
#include <vector>

#include "geo/campus.h"
#include "mobility/mobile_node.h"
#include "stats/csv.h"
#include "util/rng.h"

namespace mgrid::scenario {

struct WorkloadParams {
  // Per-road counts (Table 1, region "Road").
  std::size_t road_humans_per_road = 5;
  std::size_t road_vehicles_per_road = 5;
  // Per-building counts (Table 1, region "Building").
  std::size_t building_ss_per_building = 5;
  std::size_t building_rms_per_building = 5;
  std::size_t building_lms_per_building = 5;

  // Velocity ranges (Table 1, column VR).
  mobility::SpeedRange road_human_speed{1.0, 4.0};
  mobility::SpeedRange road_vehicle_speed{4.0, 10.0};
  mobility::SpeedRange building_rms_speed{0.0, 1.0};
  mobility::SpeedRange building_lms_speed{0.5, 1.5};

  /// Dwell range at LMS destinations, seconds (adds natural SS episodes).
  mobility::SpeedRange lms_dwell{0.0, 0.0};
  /// LMS nodes redraw their speed from their Table-1 range every this many
  /// seconds (0 = one speed per journey leg). The paper assigns velocity
  /// *ranges* per class, implying continuous variation within the band.
  Duration lms_speed_resample = 0.0;
};

class Workload {
 public:
  /// Builds the population on `campus` using streams from `rng`. The campus
  /// must outlive the workload.
  Workload(const geo::CampusMap& campus, const WorkloadParams& params,
           const util::RngRegistry& rng);

  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::vector<mobility::MobileNode>& nodes() noexcept {
    return nodes_;
  }
  [[nodiscard]] const std::vector<mobility::MobileNode>& nodes()
      const noexcept {
    return nodes_;
  }
  [[nodiscard]] const mobility::MobileNode& node(MnId id) const;
  [[nodiscard]] mobility::MobileNode& node(MnId id);

  /// Advances every node by dt.
  void step_all(Duration dt);

  [[nodiscard]] const geo::CampusMap& campus() const noexcept {
    return campus_;
  }
  [[nodiscard]] const WorkloadParams& params() const noexcept {
    return params_;
  }

  /// The realised Table 1 (region kind, mobility pattern, node type, count,
  /// configured velocity range) as a printable table.
  [[nodiscard]] stats::Table specification_table() const;

 private:
  const geo::CampusMap& campus_;
  WorkloadParams params_;
  std::vector<mobility::MobileNode> nodes_;
};

}  // namespace mgrid::scenario

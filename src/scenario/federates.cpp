#include "scenario/federates.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/eventlog.h"

namespace mgrid::scenario {

namespace {

/// Region kind as the eventlog's single-char code.
char region_code(geo::RegionKind kind) noexcept {
  switch (kind) {
    case geo::RegionKind::kRoad:
      return 'R';
    case geo::RegionKind::kBuilding:
      return 'B';
    case geo::RegionKind::kGate:
      return 'G';
  }
  return '?';
}

}  // namespace

// ---------------------------------------------------------------------------
// MobilityFederate
// ---------------------------------------------------------------------------

MobilityFederate::MobilityFederate(Workload& workload,
                                   net::GatewayNetwork& gateways,
                                   MobilityConfig config,
                                   util::RngStream channel_rng)
    : Federate("mobility", /*lookahead=*/0.0),
      workload_(workload),
      gateways_(gateways),
      config_(config),
      substeps_(0),
      channel_(net::ChannelModel(config.channel)),
      channel_rng_(channel_rng),
      energy_(config.energy) {
  if (!(config.sample_period > 0.0) || !(config.motion_dt > 0.0)) {
    throw std::invalid_argument("MobilityFederate: periods must be > 0");
  }
  if (config.truth_delay < 0.0) {
    throw std::invalid_argument("MobilityFederate: truth_delay must be >= 0");
  }
  const double ratio = config.sample_period / config.motion_dt;
  substeps_ = static_cast<std::size_t>(std::llround(ratio));
  if (substeps_ == 0 || std::abs(ratio - static_cast<double>(substeps_)) >
                            1e-6 * static_cast<double>(substeps_)) {
    throw std::invalid_argument(
        "MobilityFederate: sample_period must be a multiple of motion_dt");
  }
  if (config.burst.p_enter_bad > 0.0) {
    bursty_ = std::make_unique<net::GilbertElliottChannel>(config.burst);
  }
  batteries_.reserve(workload.size());
  device_filters_.resize(workload.size());
  job_queues_.resize(workload.size());
  last_transmission_.assign(workload.size(),
                            -std::numeric_limits<double>::infinity());
  for (const mobility::MobileNode& node : workload.nodes()) {
    batteries_.emplace_back(
        net::default_battery_capacity_j(node.spec().device));
  }
}

void MobilityFederate::on_join() {
  if (config_.device_side) {
    subscribe(std::string(net::kTopicDthUpdate));
  }
  subscribe(std::string(net::kTopicJobAssign));
}

/// Compute throughput by device class, work units per second.
static double device_compute_rate(mobility::DeviceType device) noexcept {
  switch (device) {
    case mobility::DeviceType::kLaptop:
      return 2.0;
    case mobility::DeviceType::kPda:
      return 1.0;
    case mobility::DeviceType::kCellPhone:
      return 0.5;
  }
  return 0.5;
}

void MobilityFederate::receive(const sim::Interaction& interaction) {
  if (const auto* update = interaction.payload_as<net::DthUpdate>()) {
    if (!update->mn.valid() || update->mn.value() >= device_filters_.size()) {
      return;  // unknown node (e.g. scaled-down rerun); ignore
    }
    device_filters_[update->mn.value()].set_dth(update->dth);
    batteries_[update->mn.value()].drain(
        energy_.rx_cost_j(update->wire_bytes()));
    return;
  }
  if (const auto* assign = interaction.payload_as<net::JobAssign>()) {
    if (!assign->assignee.valid() ||
        assign->assignee.value() >= job_queues_.size()) {
      return;
    }
    const MnId mn = assign->assignee;
    batteries_[mn.value()].drain(energy_.rx_cost_j(assign->wire_bytes()));
    // Locality of the broker's pick: TRUE distance to the job's data site.
    dispatch_distance_.add(
        geo::distance(workload_.node(mn).position(), assign->site));
    job_queues_[mn.value()].push_back(
        ActiveJob{assign->job, assign->work_units});
    return;
  }
}

void MobilityFederate::run_compute(SimTime t) {
  for (const mobility::MobileNode& node : workload_.nodes()) {
    std::vector<ActiveJob>& queue = job_queues_[node.id().value()];
    if (queue.empty()) continue;
    double budget =
        device_compute_rate(node.spec().device) * config_.sample_period;
    while (!queue.empty() && budget > 0.0) {
      ActiveJob& job = queue.front();
      const double spent = std::min(budget, job.remaining_units);
      job.remaining_units -= spent;
      budget -= spent;
      if (job.remaining_units > 0.0) break;
      // Job finished: report back (the result message can be lost or the
      // battery may be dead — the broker's timeout handles both).
      ++jobs_computed_;
      net::Battery& battery = batteries_[node.id().value()];
      auto result = std::make_shared<net::JobResult>();
      result->job = job.job;
      result->worker = node.id();
      result->success = true;
      result->completed_at = t;
      queue.erase(queue.begin());
      if (battery.empty()) continue;
      battery.drain(energy_.tx_cost_j(result->wire_bytes()));
      if (!channel_delivers(node.id())) continue;
      send(std::string(net::kTopicJobResult), t, std::move(result));
    }
  }
}

geo::RegionKind MobilityFederate::kind_at(geo::Vec2 p) const {
  const geo::CampusMap& campus = workload_.campus();
  const std::optional<RegionId> region = campus.locate(p);
  return campus.region(region ? *region : campus.nearest_region(p)).kind();
}

bool MobilityFederate::channel_delivers(MnId mn) {
  if (bursty_ != nullptr) return bursty_->deliver(mn, channel_rng_);
  return channel_.deliver(channel_rng_);
}

void MobilityFederate::publish_samples(SimTime t) {
  const bool eventlog = obs::eventlog_enabled();
  for (const mobility::MobileNode& node : workload_.nodes()) {
    const geo::Vec2 position = node.position();
    const geo::Vec2 velocity = node.velocity();
    const geo::RegionKind kind = kind_at(position);
    // Open this sample's eventlog record (and point the thread cursor at
    // it) before the pipeline stages below annotate their outcomes.
    if (eventlog) {
      obs::evt::sample(static_cast<std::uint32_t>(node.id().value()), t,
                       position.x, position.y, region_code(kind));
    }
    const auto association =
        gateways_.update_association(node.id(), position);

    // Ground truth for scoring (not a network message, never lost).
    {
      auto truth = std::make_shared<TruthSample>();
      truth->mn = node.id();
      truth->position = position;
      truth->velocity = velocity;
      truth->sampled_at = t;
      truth->region_kind = kind;
      send(std::string(kTopicTruth), t + config_.truth_delay,
           std::move(truth));
    }

    // Device-side suppression: the node consults its pushed DTH before
    // keying the radio at all.
    net::Battery& battery = batteries_[node.id().value()];
    if (config_.device_side &&
        !device_filters_[node.id().value()].should_transmit(position)) {
      // Device-side suppression is still a suppressed LU in the global
      // accounting (the beacon below is control traffic, not the LU).
      accountant_.record_suppressed(t);
      if (eventlog) {
        obs::evt::device_suppressed(
            static_cast<std::uint32_t>(node.id().value()), t,
            device_filters_[node.id().value()].dth());
        // The keepalive beacon below is control traffic — detach the
        // cursor so its channel draw does not annotate the LU record.
        obs::evt::clear_cursor();
      }
      // Liveness beacon: a long-silent (but alive) node announces itself.
      if (config_.keepalive_interval > 0.0 && !battery.empty() &&
          t - last_transmission_[node.id().value()] >=
              config_.keepalive_interval) {
        auto beacon = std::make_shared<net::KeepAlive>();
        beacon->mn = node.id();
        beacon->sent_at = t;
        battery.drain(energy_.tx_cost_j(beacon->wire_bytes()));
        last_transmission_[node.id().value()] = t;
        ++keepalives_sent_;
        if (channel_delivers(node.id())) {
          send(std::string(net::kTopicLocationUpdate), t, std::move(beacon));
        } else {
          ++lus_lost_;
        }
      }
      continue;
    }

    // Transmitting costs battery; an exhausted device goes dark.
    if (battery.empty()) {
      ++lus_dropped_battery_;
      if (eventlog) {
        obs::evt::battery_dead(static_cast<std::uint32_t>(node.id().value()),
                               t);
      }
      continue;
    }
    auto lu = std::make_shared<net::LocationUpdate>(node.id(), position,
                                                    velocity, t);
    lu->via_gateway = association.gateway;
    battery.drain(energy_.tx_cost_j(lu->wire_bytes()));
    lu->battery_fraction = battery.remaining_fraction();
    last_transmission_[node.id().value()] = t;

    // The LU crosses the wireless uplink and may be lost in the air (the
    // energy is spent regardless).
    if (!channel_delivers(node.id())) {
      ++lus_lost_;
      continue;
    }
    send(std::string(net::kTopicLocationUpdate), t, std::move(lu));
    ++lus_published_;
  }
  // Detach the cursor so later channel draws (job results in run_compute)
  // cannot annotate the last node's record.
  if (eventlog) obs::evt::clear_cursor();
}

void MobilityFederate::on_start(SimTime t0) { publish_samples(t0); }

void MobilityFederate::on_time_grant(SimTime t) {
  for (std::size_t i = 0; i < substeps_; ++i) {
    workload_.step_all(config_.motion_dt);
  }
  publish_samples(t);
  run_compute(t);
}

DeviceEnergyReport MobilityFederate::energy_report(Duration duration) const {
  DeviceEnergyReport report;
  report.lus_dropped_battery = lus_dropped_battery_;
  stats::RunningStats all;
  stats::RunningStats phones;
  stats::RunningStats pdas;
  stats::RunningStats laptops;
  double phone_capacity = 0.0;
  for (const mobility::MobileNode& node : workload_.nodes()) {
    const net::Battery& battery = batteries_[node.id().value()];
    const core::DeviceSideFilter& filter =
        device_filters_[node.id().value()];
    report.lus_transmitted += filter.transmitted();
    report.lus_suppressed_on_device += filter.suppressed();
    report.dth_updates_received += filter.dth_updates_received();
    all.add(battery.consumed_j());
    switch (node.spec().device) {
      case mobility::DeviceType::kCellPhone:
        phones.add(battery.consumed_j());
        phone_capacity = battery.capacity_j();
        break;
      case mobility::DeviceType::kPda:
        pdas.add(battery.consumed_j());
        break;
      case mobility::DeviceType::kLaptop:
        laptops.add(battery.consumed_j());
        break;
    }
  }
  if (!config_.device_side) {
    // Without device-side filtering, every sample that spent energy was a
    // real transmission (suppression happens downstream at the ADF).
    report.lus_transmitted = lus_published_ + lus_lost_;
    report.lus_suppressed_on_device = 0;
  }
  report.mean_energy_j = all.mean();
  report.mean_energy_cellphone_j = phones.mean();
  report.mean_energy_pda_j = pdas.mean();
  report.mean_energy_laptop_j = laptops.mean();
  if (phones.mean() > 0.0 && duration > 0.0 && phone_capacity > 0.0) {
    const double watts = phones.mean() / duration;
    report.projected_cellphone_lifetime_h = phone_capacity / watts / 3600.0;
  }
  return report;
}

// ---------------------------------------------------------------------------
// FilterFederate
// ---------------------------------------------------------------------------

FilterFederate::FilterFederate(
    std::unique_ptr<core::LocationUpdateFilter> filter,
    const geo::CampusMap& campus, Duration bucket_width, bool device_side,
    double dth_hysteresis, std::size_t shard_index, std::size_t shard_count)
    : Federate(shard_count > 1 ? "adf." + std::to_string(shard_index) : "adf",
               /*lookahead=*/0.0),
      filter_(std::move(filter)),
      campus_(campus),
      traffic_(bucket_width),
      accountant_(bucket_width),
      device_side_(device_side),
      dth_hysteresis_(dth_hysteresis),
      shard_index_(shard_index),
      shard_count_(shard_count) {
  if (!filter_) throw std::invalid_argument("FilterFederate: null filter");
  if (dth_hysteresis < 0.0) {
    throw std::invalid_argument(
        "FilterFederate: dth_hysteresis must be >= 0");
  }
  if (shard_count == 0 || shard_index >= shard_count) {
    throw std::invalid_argument("FilterFederate: bad shard spec");
  }
  if (device_side_) {
    adf_ = dynamic_cast<core::AdaptiveDistanceFilter*>(filter_.get());
    if (adf_ == nullptr) {
      throw std::invalid_argument(
          "FilterFederate: device-side mode requires the ADF policy");
    }
  }
}

void FilterFederate::on_join() {
  subscribe(std::string(net::kTopicLocationUpdate));
}

void FilterFederate::receive(const sim::Interaction& interaction) {
  // Keepalive beacons are liveness control traffic: relayed to the broker
  // untouched, never filtered, and invisible to the ADF's motion state.
  // In a sharded deployment exactly one shard relays each beacon.
  if (const auto* beacon = interaction.payload_as<net::KeepAlive>()) {
    if (shard_count_ > 1 &&
        beacon->mn.value() % shard_count_ != shard_index_) {
      return;
    }
    accountant_.record(beacon->sent_at, GatewayId{}, net::Direction::kUplink,
                       *beacon);
    send(std::string(net::kTopicFilteredUpdate), granted_time(),
         interaction.payload);
    return;
  }
  const auto* lu = interaction.payload_as<net::LocationUpdate>();
  if (lu == nullptr) return;  // not ours
  // Sharded deployment: only the ADF responsible for the relaying gateway
  // handles this LU.
  if (shard_count_ > 1 && lu->via_gateway.valid() &&
      lu->via_gateway.value() % shard_count_ != shard_index_) {
    return;
  }
  // The LU survived the air and crossed its gateway into the ADF tier.
  accountant_.record(lu->sampled_at, lu->via_gateway, net::Direction::kUplink,
                     *lu);

  // Point the eventlog cursor at this LU's record so the classifier /
  // clusterer / DTH / distance-test stages annotate the right (mn, t).
  const bool eventlog = obs::eventlog_enabled();
  if (eventlog) {
    obs::evt::set_cursor(static_cast<std::uint32_t>(lu->mn.value()),
                         lu->sampled_at);
  }
  core::FilterDecision decision;
  if (device_side_) {
    // Pre-filtered on the device: keep classification/clustering alive on
    // the (sparser) received stream, never suppress here.
    decision = adf_->update_dth(lu->mn, lu->sampled_at, lu->position);
    // Push the node's DTH on the downlink when it drifted noticeably.
    auto [it, inserted] = pushed_dth_.try_emplace(lu->mn, -1.0);
    const double last = it->second;
    const double tolerance =
        dth_hysteresis_ * std::max(last, 1e-9);
    if (last < 0.0 || std::abs(decision.dth - last) > tolerance) {
      it->second = decision.dth;
      const net::DthUpdate push(lu->mn, decision.dth);
      accountant_.record(granted_time(), lu->via_gateway,
                         net::Direction::kDownlink, push);
      send(std::string(net::kTopicDthUpdate), granted_time(),
           sim::make_payload<net::DthUpdate>(push));
      ++dth_updates_published_;
    }
  } else {
    decision = filter_->process(lu->mn, lu->sampled_at, lu->position);
  }
  if (eventlog) {
    // In device-side mode every LU that reached this tier was already let
    // through by the device, so the verdict is always "sent" — matching
    // how TrafficMetrics accounts it.
    obs::evt::verdict(static_cast<std::uint32_t>(lu->mn.value()),
                      lu->sampled_at, decision.transmit, decision.moved,
                      decision.dth,
                      decision.cluster.valid()
                          ? static_cast<std::int64_t>(decision.cluster.value())
                          : -1);
    obs::evt::clear_cursor();
  }

  const std::optional<RegionId> region = campus_.locate(lu->position);
  const geo::RegionKind kind =
      campus_
          .region(region ? *region : campus_.nearest_region(lu->position))
          .kind();
  traffic_.record(lu->sampled_at, decision.transmit, kind);
  if (!decision.transmit) accountant_.record_suppressed(lu->sampled_at);

  if (decision.transmit) {
    // Forward the LU to the broker, timestamped at the current grant (the
    // ADF cannot send into its own past).
    send(std::string(net::kTopicFilteredUpdate), granted_time(),
         interaction.payload);
  }
}

// ---------------------------------------------------------------------------
// BrokerFederate
// ---------------------------------------------------------------------------

BrokerFederate::BrokerFederate(
    std::unique_ptr<estimation::LocationEstimator> estimator_prototype,
    Duration bucket_width, ScoringMode scoring, JobWorkloadConfig jobs,
    const geo::CampusMap* campus, util::RngStream job_rng)
    : Federate("broker", /*lookahead=*/0.0),
      broker_(std::move(estimator_prototype)),
      errors_(bucket_width),
      scoring_(scoring),
      jobs_(jobs),
      campus_(campus),
      job_rng_(job_rng),
      scheduler_(broker_, jobs.scheduler) {
  if (jobs_.rate < 0.0) {
    throw std::invalid_argument("JobWorkloadConfig: rate must be >= 0");
  }
  if (jobs_.rate > 0.0) {
    if (campus_ == nullptr) {
      throw std::invalid_argument(
          "BrokerFederate: job workload needs a campus for job sites");
    }
    if (!jobs_.work.valid() || !(jobs_.work.hi > 0.0)) {
      throw std::invalid_argument("JobWorkloadConfig: invalid work range");
    }
    if (!(jobs_.timeout > 0.0) || jobs_.replicas == 0) {
      throw std::invalid_argument(
          "JobWorkloadConfig: invalid timeout/replicas");
    }
  }
}

void BrokerFederate::on_join() {
  subscribe(std::string(net::kTopicFilteredUpdate));
  subscribe(std::string(kTopicTruth));
  if (jobs_.rate > 0.0) subscribe(std::string(net::kTopicJobResult));
}

void BrokerFederate::dispatch(JobId job, SimTime t) {
  const auto status = scheduler_.status(job);
  TrackedJob& tracked = tracked_jobs_.at(job);
  tracked.dispatched = true;
  tracked.deadline = t + jobs_.timeout;
  for (MnId assignee : status->assignees) {
    auto assign = std::make_shared<net::JobAssign>();
    assign->job = job;
    assign->assignee = assignee;
    assign->work_units = tracked.work_units;
    assign->site = tracked.site;
    send(std::string(net::kTopicJobAssign), granted_time(),
         std::move(assign));
  }
}

void BrokerFederate::run_job_workload(SimTime t) {
  // Expire overdue jobs (and stop tracking them).
  std::vector<JobId> expired;
  for (const auto& [job, tracked] : tracked_jobs_) {
    if (tracked.dispatched && tracked.deadline <= t) expired.push_back(job);
  }
  for (JobId job : expired) {
    const auto status = scheduler_.status(job);
    if (status->state == broker::JobState::kRunning) {
      scheduler_.report_completion(job, status->assignees.front(), t,
                                   /*success=*/false);
      ++jobs_timed_out_;
    }
    tracked_jobs_.erase(job);
  }

  // Pending jobs may become schedulable as new LUs arrive.
  scheduler_.reschedule_pending(t);
  for (auto& [job, tracked] : tracked_jobs_) {
    if (tracked.dispatched) continue;
    if (scheduler_.status(job)->state == broker::JobState::kRunning) {
      dispatch(job, t);
    }
  }

  // Poisson arrivals.
  if (next_arrival_ < 0.0) {
    next_arrival_ = t + job_rng_.exponential(jobs_.rate);
  }
  while (next_arrival_ <= t) {
    next_arrival_ += job_rng_.exponential(jobs_.rate);
    broker::JobSpec spec;
    spec.id = JobId{next_job_id_++};
    const std::vector<RegionId> buildings = campus_->buildings();
    const geo::Region& site_region = campus_->region(
        buildings[job_rng_.index(buildings.size())]);
    spec.site = site_region.sample(job_rng_);
    spec.work_units = jobs_.work.sample(job_rng_);
    spec.replicas = jobs_.replicas;
    TrackedJob tracked;
    tracked.work_units = spec.work_units;
    tracked.site = spec.site;
    tracked_jobs_.emplace(spec.id, tracked);
    if (scheduler_.submit(spec, t) == broker::JobState::kRunning) {
      dispatch(spec.id, t);
    }
  }
}

JobReport BrokerFederate::job_report() const {
  JobReport report;
  report.submitted = next_job_id_;
  report.completed = jobs_completed_;
  report.timed_out = jobs_timed_out_;
  report.still_pending = scheduler_.pending_count();
  report.still_running = scheduler_.running_count();
  report.mean_completion_time = completion_time_.mean();
  return report;
}

void BrokerFederate::receive(const sim::Interaction& interaction) {
  if (const auto* lu = interaction.payload_as<net::LocationUpdate>()) {
    broker_.on_location_update(lu->mn, lu->sampled_at, lu->position,
                               lu->velocity, lu->battery_fraction);
    return;
  }
  if (const auto* beacon = interaction.payload_as<net::KeepAlive>()) {
    broker_.on_keepalive(beacon->mn, beacon->sent_at);
    return;
  }
  if (const auto* result = interaction.payload_as<net::JobResult>()) {
    const auto status = scheduler_.status(result->job);
    if (!status || status->state != broker::JobState::kRunning) {
      return;  // straggler after a timeout — drop
    }
    scheduler_.report_completion(result->job, result->worker,
                                 result->completed_at, result->success);
    if (scheduler_.status(result->job)->state ==
        broker::JobState::kCompleted) {
      ++jobs_completed_;
      completion_time_.add(result->completed_at - status->submitted_at);
      tracked_jobs_.erase(result->job);
    }
    return;
  }
  if (const auto* truth = interaction.payload_as<TruthSample>()) {
    if (scoring_ == ScoringMode::kLogical) {
      // Logical accounting: truths are timestamp-delayed to arrive in the
      // same cycle as their LU, and LUs sort first within the cycle — so
      // the broker's belief about `sampled_at` is final here. Score it.
      const std::optional<geo::Vec2> belief =
          broker_.belief_at(truth->mn, truth->sampled_at);
      if (belief) {
        errors_.record(truth->sampled_at, truth->position, *belief,
                       truth->region_kind);
        if (obs::eventlog_enabled()) {
          obs::evt::scored(static_cast<std::uint32_t>(truth->mn.value()),
                           truth->sampled_at, belief->x, belief->y,
                           geo::distance(truth->position, *belief));
        }
      }
      return;
    }
    truths_.push_back(BufferedTruth{truth->mn, truth->position,
                                    truth->sampled_at, truth->region_kind});
  }
}

void BrokerFederate::on_time_grant(SimTime t) {
  // Real-time accounting: score the view the broker *had* at each truth's
  // timestamp (the snapshot taken at the end of the previous grant) — this
  // charges the broker for filtering AND pipeline latency, exactly what a
  // job scheduler would see.
  const bool eventlog = obs::eventlog_enabled();
  for (const BufferedTruth& truth : truths_) {
    auto it = view_snapshot_.find(truth.mn);
    if (it == view_snapshot_.end()) continue;  // broker does not know it yet
    errors_.record(truth.sampled_at, truth.position, it->second, truth.kind);
    if (eventlog) {
      obs::evt::scored(static_cast<std::uint32_t>(truth.mn.value()),
                       truth.sampled_at, it->second.x, it->second.y,
                       geo::distance(truth.position, it->second));
    }
  }
  truths_.clear();

  broker_.on_tick(t);
  if (scoring_ == ScoringMode::kRealTime) {
    for (MnId mn : broker_.db().known_nodes()) {
      const std::optional<geo::Vec2> view = broker_.position_view(mn);
      if (view) view_snapshot_[mn] = *view;
    }
  }
  if (jobs_.rate > 0.0) run_job_workload(t);
}

}  // namespace mgrid::scenario

#include "scenario/result_io.h"

#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string_view>

#include "util/json.h"

namespace mgrid::scenario {

std::string to_json(const ExperimentOptions& options,
                    const ExperimentResult& result, bool include_series) {
  util::JsonWriter json;
  json.begin_object();

  json.key("options").begin_object();
  json.field("duration", options.duration);
  json.field("sample_period", options.sample_period);
  json.field("motion_dt", options.motion_dt);
  json.field("seed", static_cast<std::uint64_t>(options.seed));
  json.field("filter", to_string(options.filter));
  json.field("dth_factor", options.dth_factor);
  json.field("estimator",
             options.estimator.empty() ? "none" : options.estimator);
  json.field("estimator_alpha", options.estimator_alpha);
  json.field("map_match", options.map_match);
  json.field("forecast_horizon", options.forecast_horizon);
  json.field("scoring", options.scoring == ScoringMode::kLogical
                            ? "logical"
                            : "realtime");
  json.field("device_side_filtering", options.device_side_filtering);
  json.field("keepalive_interval", options.keepalive_interval);
  json.field("max_silence", options.max_silence);
  json.field("time_filter_interval", options.time_filter_interval);
  json.field("prediction_threshold", options.prediction_threshold);
  json.field("campus_blocks",
             static_cast<std::uint64_t>(options.campus_blocks));
  json.field("loss_probability", options.channel.loss_probability);
  json.field("burst_p_enter_bad", options.burst.p_enter_bad);
  json.field("clustering_alpha", options.adf.clustering.alpha);
  json.end_object();

  json.key("traffic").begin_object();
  json.field("total_transmitted",
             static_cast<std::uint64_t>(result.total_transmitted));
  json.field("total_attempted",
             static_cast<std::uint64_t>(result.total_attempted));
  json.field("transmission_rate", result.transmission_rate);
  json.field("road_transmission_rate", result.road_transmission_rate);
  json.field("building_transmission_rate",
             result.building_transmission_rate);
  json.field("mean_lu_per_bucket", result.mean_lu_per_bucket);
  json.field("lus_lost_on_air",
             static_cast<std::uint64_t>(result.lus_lost_on_air));
  json.field("lus_suppressed",
             static_cast<std::uint64_t>(result.lus_suppressed));
  json.field("uplink_messages",
             static_cast<std::uint64_t>(result.uplink_messages));
  json.field("uplink_bytes", static_cast<std::uint64_t>(result.uplink_bytes));
  json.field("downlink_messages",
             static_cast<std::uint64_t>(result.downlink_messages));
  json.field("downlink_bytes",
             static_cast<std::uint64_t>(result.downlink_bytes));
  json.end_object();

  json.key("error").begin_object();
  json.field("rmse", result.rmse_overall);
  json.field("rmse_road", result.rmse_road);
  json.field("rmse_building", result.rmse_building);
  json.field("mae", result.mae_overall);
  json.end_object();

  json.key("adf").begin_object();
  json.field("final_cluster_count",
             static_cast<std::uint64_t>(result.final_cluster_count));
  json.field("cluster_rebuilds",
             static_cast<std::uint64_t>(result.cluster_rebuilds));
  json.end_object();

  json.key("energy").begin_object();
  json.field("lus_transmitted",
             static_cast<std::uint64_t>(result.energy.lus_transmitted));
  json.field("lus_suppressed_on_device",
             static_cast<std::uint64_t>(
                 result.energy.lus_suppressed_on_device));
  json.field("dth_updates_received",
             static_cast<std::uint64_t>(result.energy.dth_updates_received));
  json.field("lus_dropped_battery",
             static_cast<std::uint64_t>(result.energy.lus_dropped_battery));
  json.field("dth_downlink_messages",
             static_cast<std::uint64_t>(result.dth_downlink_messages));
  json.field("keepalives_sent",
             static_cast<std::uint64_t>(result.keepalives_sent));
  json.field("mean_energy_j", result.energy.mean_energy_j);
  json.field("mean_energy_cellphone_j",
             result.energy.mean_energy_cellphone_j);
  json.field("mean_energy_pda_j", result.energy.mean_energy_pda_j);
  json.field("mean_energy_laptop_j", result.energy.mean_energy_laptop_j);
  json.field("projected_cellphone_lifetime_h",
             result.energy.projected_cellphone_lifetime_h);
  json.end_object();

  json.key("jobs").begin_object();
  json.field("submitted", static_cast<std::uint64_t>(result.jobs.submitted));
  json.field("completed", static_cast<std::uint64_t>(result.jobs.completed));
  json.field("timed_out", static_cast<std::uint64_t>(result.jobs.timed_out));
  json.field("still_pending",
             static_cast<std::uint64_t>(result.jobs.still_pending));
  json.field("still_running",
             static_cast<std::uint64_t>(result.jobs.still_running));
  json.field("mean_completion_time", result.jobs.mean_completion_time);
  json.field("mean_dispatch_distance", result.jobs.mean_dispatch_distance);
  json.end_object();

  json.key("run").begin_object();
  json.field("node_count", static_cast<std::uint64_t>(result.node_count));
  json.field("handovers", static_cast<std::uint64_t>(result.handovers));
  json.field("updates_received",
             static_cast<std::uint64_t>(result.broker_stats.updates_received));
  json.field("estimates_made",
             static_cast<std::uint64_t>(result.broker_stats.estimates_made));
  json.field("federation_cycles",
             static_cast<std::uint64_t>(result.federation_stats.cycles));
  json.field("interactions_sent",
             static_cast<std::uint64_t>(
                 result.federation_stats.interactions_sent));
  json.field("keepalives_received",
             static_cast<std::uint64_t>(result.keepalives_received));
  json.end_object();

  json.key("final_positions").begin_array();
  for (const FinalPosition& fp : result.final_positions) {
    json.begin_object();
    json.field("mn", static_cast<std::uint64_t>(fp.mn));
    json.field("t", fp.t);
    json.field("x", fp.x);
    json.field("y", fp.y);
    json.field("estimated", fp.estimated);
    json.end_object();
  }
  json.end_array();

  if (include_series) {
    json.key("series").begin_object();
    json.field_array("lu_per_bucket", result.lu_per_bucket);
    json.field_array("lu_cumulative", result.lu_cumulative);
    json.field_array("rmse", result.rmse_per_bucket);
    json.field_array("rmse_road", result.rmse_per_bucket_road);
    json.field_array("rmse_building", result.rmse_per_bucket_building);
    json.end_object();
  }

  json.end_object();
  return json.str();
}

void save_json(const std::string& path, const ExperimentOptions& options,
               const ExperimentResult& result, bool include_series) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_json: cannot write " + path);
  out << to_json(options, result, include_series) << '\n';
}

namespace {

std::uint64_t read_u64(const util::JsonValue& object, std::string_view key) {
  return static_cast<std::uint64_t>(object.at(key).as_double());
}

std::vector<double> read_series(const util::JsonValue& object,
                                std::string_view key) {
  std::vector<double> out;
  for (const util::JsonValue& v : object.at(key).as_array()) {
    out.push_back(v.as_double());
  }
  return out;
}

}  // namespace

ExperimentResult result_from_json(const util::JsonValue& doc) {
  ExperimentResult result;

  const util::JsonValue& traffic = doc.at("traffic");
  result.total_transmitted = read_u64(traffic, "total_transmitted");
  result.total_attempted = read_u64(traffic, "total_attempted");
  result.transmission_rate = traffic.at("transmission_rate").as_double();
  result.road_transmission_rate =
      traffic.at("road_transmission_rate").as_double();
  result.building_transmission_rate =
      traffic.at("building_transmission_rate").as_double();
  result.mean_lu_per_bucket = traffic.at("mean_lu_per_bucket").as_double();
  result.lus_lost_on_air = read_u64(traffic, "lus_lost_on_air");
  result.lus_suppressed = read_u64(traffic, "lus_suppressed");
  result.uplink_messages = read_u64(traffic, "uplink_messages");
  result.uplink_bytes = read_u64(traffic, "uplink_bytes");
  result.downlink_messages = read_u64(traffic, "downlink_messages");
  result.downlink_bytes = read_u64(traffic, "downlink_bytes");

  const util::JsonValue& error = doc.at("error");
  result.rmse_overall = error.at("rmse").as_double();
  result.rmse_road = error.at("rmse_road").as_double();
  result.rmse_building = error.at("rmse_building").as_double();
  result.mae_overall = error.at("mae").as_double();

  const util::JsonValue& adf = doc.at("adf");
  result.final_cluster_count =
      static_cast<std::size_t>(read_u64(adf, "final_cluster_count"));
  result.cluster_rebuilds = read_u64(adf, "cluster_rebuilds");

  const util::JsonValue& energy = doc.at("energy");
  result.energy.lus_transmitted = read_u64(energy, "lus_transmitted");
  result.energy.lus_suppressed_on_device =
      read_u64(energy, "lus_suppressed_on_device");
  result.energy.dth_updates_received =
      read_u64(energy, "dth_updates_received");
  result.energy.lus_dropped_battery =
      read_u64(energy, "lus_dropped_battery");
  result.dth_downlink_messages = read_u64(energy, "dth_downlink_messages");
  result.keepalives_sent = read_u64(energy, "keepalives_sent");
  result.energy.mean_energy_j = energy.at("mean_energy_j").as_double();
  result.energy.mean_energy_cellphone_j =
      energy.at("mean_energy_cellphone_j").as_double();
  result.energy.mean_energy_pda_j =
      energy.at("mean_energy_pda_j").as_double();
  result.energy.mean_energy_laptop_j =
      energy.at("mean_energy_laptop_j").as_double();
  result.energy.projected_cellphone_lifetime_h =
      energy.at("projected_cellphone_lifetime_h").as_double();

  const util::JsonValue& jobs = doc.at("jobs");
  result.jobs.submitted = read_u64(jobs, "submitted");
  result.jobs.completed = read_u64(jobs, "completed");
  result.jobs.timed_out = read_u64(jobs, "timed_out");
  result.jobs.still_pending = read_u64(jobs, "still_pending");
  result.jobs.still_running = read_u64(jobs, "still_running");
  result.jobs.mean_completion_time =
      jobs.at("mean_completion_time").as_double();
  result.jobs.mean_dispatch_distance =
      jobs.at("mean_dispatch_distance").as_double();

  const util::JsonValue& run = doc.at("run");
  result.node_count = static_cast<std::size_t>(read_u64(run, "node_count"));
  result.handovers = read_u64(run, "handovers");
  result.broker_stats.updates_received = read_u64(run, "updates_received");
  result.broker_stats.estimates_made = read_u64(run, "estimates_made");
  result.federation_stats.cycles = read_u64(run, "federation_cycles");
  result.federation_stats.interactions_sent =
      read_u64(run, "interactions_sent");
  result.keepalives_received = read_u64(run, "keepalives_received");
  result.broker_stats.keepalives_received = result.keepalives_received;

  for (const util::JsonValue& fp : doc.at("final_positions").as_array()) {
    result.final_positions.push_back(
        {static_cast<std::uint32_t>(fp.at("mn").as_double()),
         fp.at("t").as_double(), fp.at("x").as_double(),
         fp.at("y").as_double(), fp.at("estimated").as_bool()});
  }

  if (const util::JsonValue* series = doc.find("series")) {
    result.lu_per_bucket = read_series(*series, "lu_per_bucket");
    result.lu_cumulative = read_series(*series, "lu_cumulative");
    result.rmse_per_bucket = read_series(*series, "rmse");
    result.rmse_per_bucket_road = read_series(*series, "rmse_road");
    result.rmse_per_bucket_building = read_series(*series, "rmse_building");
  }
  return result;
}

ExperimentResult load_result_json(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_result_json: cannot read " + path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return result_from_json(util::JsonValue::parse(text));
}

}  // namespace mgrid::scenario

#include "scenario/result_io.h"

#include <fstream>
#include <stdexcept>

#include "util/json.h"

namespace mgrid::scenario {

std::string to_json(const ExperimentOptions& options,
                    const ExperimentResult& result, bool include_series) {
  util::JsonWriter json;
  json.begin_object();

  json.key("options").begin_object();
  json.field("duration", options.duration);
  json.field("sample_period", options.sample_period);
  json.field("motion_dt", options.motion_dt);
  json.field("seed", static_cast<std::uint64_t>(options.seed));
  json.field("filter", to_string(options.filter));
  json.field("dth_factor", options.dth_factor);
  json.field("estimator",
             options.estimator.empty() ? "none" : options.estimator);
  json.field("estimator_alpha", options.estimator_alpha);
  json.field("map_match", options.map_match);
  json.field("forecast_horizon", options.forecast_horizon);
  json.field("scoring", options.scoring == ScoringMode::kLogical
                            ? "logical"
                            : "realtime");
  json.field("device_side_filtering", options.device_side_filtering);
  json.field("keepalive_interval", options.keepalive_interval);
  json.field("max_silence", options.max_silence);
  json.field("time_filter_interval", options.time_filter_interval);
  json.field("prediction_threshold", options.prediction_threshold);
  json.field("campus_blocks",
             static_cast<std::uint64_t>(options.campus_blocks));
  json.field("loss_probability", options.channel.loss_probability);
  json.field("burst_p_enter_bad", options.burst.p_enter_bad);
  json.field("clustering_alpha", options.adf.clustering.alpha);
  json.end_object();

  json.key("traffic").begin_object();
  json.field("total_transmitted",
             static_cast<std::uint64_t>(result.total_transmitted));
  json.field("total_attempted",
             static_cast<std::uint64_t>(result.total_attempted));
  json.field("transmission_rate", result.transmission_rate);
  json.field("road_transmission_rate", result.road_transmission_rate);
  json.field("building_transmission_rate",
             result.building_transmission_rate);
  json.field("mean_lu_per_bucket", result.mean_lu_per_bucket);
  json.field("lus_lost_on_air",
             static_cast<std::uint64_t>(result.lus_lost_on_air));
  json.end_object();

  json.key("error").begin_object();
  json.field("rmse", result.rmse_overall);
  json.field("rmse_road", result.rmse_road);
  json.field("rmse_building", result.rmse_building);
  json.field("mae", result.mae_overall);
  json.end_object();

  json.key("adf").begin_object();
  json.field("final_cluster_count",
             static_cast<std::uint64_t>(result.final_cluster_count));
  json.field("cluster_rebuilds",
             static_cast<std::uint64_t>(result.cluster_rebuilds));
  json.end_object();

  json.key("energy").begin_object();
  json.field("lus_transmitted",
             static_cast<std::uint64_t>(result.energy.lus_transmitted));
  json.field("lus_suppressed_on_device",
             static_cast<std::uint64_t>(
                 result.energy.lus_suppressed_on_device));
  json.field("dth_downlink_messages",
             static_cast<std::uint64_t>(result.dth_downlink_messages));
  json.field("keepalives_sent",
             static_cast<std::uint64_t>(result.keepalives_sent));
  json.field("mean_energy_j", result.energy.mean_energy_j);
  json.field("mean_energy_cellphone_j",
             result.energy.mean_energy_cellphone_j);
  json.field("projected_cellphone_lifetime_h",
             result.energy.projected_cellphone_lifetime_h);
  json.end_object();

  json.key("run").begin_object();
  json.field("node_count", static_cast<std::uint64_t>(result.node_count));
  json.field("handovers", static_cast<std::uint64_t>(result.handovers));
  json.field("updates_received",
             static_cast<std::uint64_t>(result.broker_stats.updates_received));
  json.field("estimates_made",
             static_cast<std::uint64_t>(result.broker_stats.estimates_made));
  json.field("federation_cycles",
             static_cast<std::uint64_t>(result.federation_stats.cycles));
  json.field("interactions_sent",
             static_cast<std::uint64_t>(
                 result.federation_stats.interactions_sent));
  json.end_object();

  if (include_series) {
    json.key("series").begin_object();
    json.field_array("lu_per_bucket", result.lu_per_bucket);
    json.field_array("lu_cumulative", result.lu_cumulative);
    json.field_array("rmse", result.rmse_per_bucket);
    json.field_array("rmse_road", result.rmse_per_bucket_road);
    json.field_array("rmse_building", result.rmse_per_bucket_building);
    json.end_object();
  }

  json.end_object();
  return json.str();
}

void save_json(const std::string& path, const ExperimentOptions& options,
               const ExperimentResult& result, bool include_series) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_json: cannot write " + path);
  out << to_json(options, result, include_series) << '\n';
}

}  // namespace mgrid::scenario

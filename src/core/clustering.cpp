#include "core/clustering.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "obs/eventlog.h"

namespace mgrid::core {

SequentialClusterer::SequentialClusterer(ClusteringParams params)
    : params_(params) {
  if (!(params.alpha > 0.0)) {
    throw std::invalid_argument("SequentialClusterer: alpha must be > 0");
  }
  if (params.direction_weight < 0.0) {
    throw std::invalid_argument(
        "SequentialClusterer: direction_weight must be >= 0");
  }
}

ClusterId SequentialClusterer::create_cluster(const ClusterFeature& seed) {
  const ClusterId id{static_cast<ClusterId::value_type>(clusters_.size())};
  ClusterState state;
  state.info.id = id;
  state.info.centroid = seed;
  clusters_.push_back(std::move(state));
  ++clusters_created_;
  return id;
}

void SequentialClusterer::add_member(ClusterState& cluster, MnId mn,
                                     const ClusterFeature& f) {
  cluster.sum_speed += f.speed;
  cluster.sum_dir_x += f.dir_x;
  cluster.sum_dir_y += f.dir_y;
  ++cluster.info.size;
  refresh_centroid(cluster);
  memberships_[mn] = cluster.info.id;
}

void SequentialClusterer::remove_member(ClusterState& cluster, MnId mn) {
  const ClusterFeature& f = latest_features_.at(mn);
  cluster.sum_speed -= f.speed;
  cluster.sum_dir_x -= f.dir_x;
  cluster.sum_dir_y -= f.dir_y;
  --cluster.info.size;
  refresh_centroid(cluster);
  memberships_.erase(mn);
  if (cluster.info.size == 0) {
    clusters_[cluster.info.id.value()].reset();  // retire
  }
}

void SequentialClusterer::refresh_centroid(ClusterState& cluster) noexcept {
  if (cluster.info.size == 0) return;
  const double n = static_cast<double>(cluster.info.size);
  cluster.info.centroid.speed = cluster.sum_speed / n;
  cluster.info.centroid.dir_x = cluster.sum_dir_x / n;
  cluster.info.centroid.dir_y = cluster.sum_dir_y / n;
}

SequentialClusterer::ClusterState* SequentialClusterer::find_nearest(
    const ClusterFeature& f, double* out_distance) {
  ClusterState* best = nullptr;
  double best_d = std::numeric_limits<double>::infinity();
  for (auto& slot : clusters_) {
    if (!slot) continue;
    const double d = f.distance_to(slot->info.centroid);
    if (d < best_d) {
      best_d = d;
      best = &*slot;
    }
  }
  if (out_distance != nullptr) *out_distance = best_d;
  return best;
}

ClusterId SequentialClusterer::assign(MnId mn,
                                      const MotionFeatures& features) {
  if (!mn.valid()) {
    throw std::invalid_argument("SequentialClusterer::assign: invalid MnId");
  }
  const ClusterFeature f =
      ClusterFeature::from_motion(features, params_.direction_weight);

  // Detach from the current cluster first so the node's stale feature does
  // not drag the centroid it is being compared against.
  if (auto it = memberships_.find(mn); it != memberships_.end()) {
    remove_member(*clusters_[it->second.value()], mn);
  }
  latest_features_[mn] = f;

  double nearest_distance = 0.0;
  ClusterState* nearest = find_nearest(f, &nearest_distance);
  const bool cap_reached =
      params_.max_clusters != 0 && cluster_count() >= params_.max_clusters;
  ClusterId id;
  if (nearest != nullptr &&
      (nearest_distance <= params_.alpha || cap_reached)) {
    add_member(*nearest, mn, f);
    id = nearest->info.id;
  } else {
    id = create_cluster(f);
    add_member(*clusters_[id.value()], mn, f);
  }
  if (obs::eventlog_enabled()) {
    obs::evt::clustered(static_cast<std::int64_t>(id.value()),
                        clusters_[id.value()]->info.centroid.speed);
  }
  return id;
}

bool SequentialClusterer::remove(MnId mn) {
  auto it = memberships_.find(mn);
  if (it == memberships_.end()) return false;
  remove_member(*clusters_[it->second.value()], mn);
  latest_features_.erase(mn);
  return true;
}

std::optional<ClusterId> SequentialClusterer::cluster_of(MnId mn) const {
  auto it = memberships_.find(mn);
  if (it == memberships_.end()) return std::nullopt;
  return it->second;
}

const ClusterInfo& SequentialClusterer::cluster(ClusterId id) const {
  if (!id.valid() || id.value() >= clusters_.size() ||
      !clusters_[id.value()]) {
    throw std::out_of_range("SequentialClusterer::cluster: unknown id");
  }
  return clusters_[id.value()]->info;
}

std::vector<ClusterInfo> SequentialClusterer::clusters() const {
  std::vector<ClusterInfo> out;
  for (const auto& slot : clusters_) {
    if (slot) out.push_back(slot->info);
  }
  return out;
}

std::size_t SequentialClusterer::cluster_count() const noexcept {
  std::size_t count = 0;
  for (const auto& slot : clusters_) {
    if (slot) ++count;
  }
  return count;
}

void SequentialClusterer::rebuild(double merge_fraction) {
  if (merge_fraction < 0.0) {
    throw std::invalid_argument(
        "SequentialClusterer::rebuild: merge_fraction must be >= 0");
  }
  // Snapshot members in MnId order for determinism.
  std::vector<std::pair<MnId, ClusterFeature>> members(
      latest_features_.begin(), latest_features_.end());
  std::sort(members.begin(), members.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  clusters_.clear();
  memberships_.clear();
  for (const auto& [mn, f] : members) {
    double nearest_distance = 0.0;
    ClusterState* nearest = find_nearest(f, &nearest_distance);
    const bool cap_reached =
        params_.max_clusters != 0 && cluster_count() >= params_.max_clusters;
    if (nearest != nullptr &&
        (nearest_distance <= params_.alpha || cap_reached)) {
      add_member(*nearest, mn, f);
    } else {
      const ClusterId id = create_cluster(f);
      add_member(*clusters_[id.value()], mn, f);
    }
  }

  // Merge pass: absorb clusters whose centroids ended up closer than
  // merge_fraction * alpha (BSAS refinement).
  const double merge_radius = merge_fraction * params_.alpha;
  for (std::size_t i = 0; i < clusters_.size(); ++i) {
    if (!clusters_[i]) continue;
    for (std::size_t j = i + 1; j < clusters_.size(); ++j) {
      if (!clusters_[j]) continue;
      if (clusters_[i]->info.centroid.distance_to(
              clusters_[j]->info.centroid) > merge_radius) {
        continue;
      }
      // Move every member of j into i.
      std::vector<MnId> moved;
      for (const auto& [mn, cid] : memberships_) {
        if (cid == clusters_[j]->info.id) moved.push_back(mn);
      }
      std::sort(moved.begin(), moved.end());
      for (MnId mn : moved) {
        const ClusterFeature f = latest_features_.at(mn);
        remove_member(*clusters_[j], mn);
        add_member(*clusters_[i], mn, f);
      }
    }
  }
}

}  // namespace mgrid::core

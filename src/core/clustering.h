// Sequential (BSAS) clustering of moving MNs (paper §3.2.1, after
// Theodoridis & Koutroumbas, "Pattern Recognition").
//
// Every non-SS node is embedded as (speed, direction) and assigned to the
// nearest cluster if its distance to that cluster's centroid is within the
// similarity bound alpha; otherwise a new cluster is created. Centroids are
// running means over current members. The cluster's mean speed is what the
// ADF turns into a Distance Threshold.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/motion_features.h"
#include "util/types.h"

namespace mgrid::core {

struct ClusteringParams {
  /// Similarity bound alpha: max feature distance to join a cluster
  /// (m/s-equivalent units). Must be > 0.
  double alpha = 0.8;
  /// Direction weight in the feature embedding (m/s per unit chord, >= 0;
  /// 0 clusters on speed alone).
  double direction_weight = 0.5;
  /// Upper bound on live clusters (BSAS's q); 0 = unlimited. When the cap
  /// is hit, the nearest cluster absorbs the node even beyond alpha.
  std::size_t max_clusters = 0;
};

struct ClusterInfo {
  ClusterId id;
  ClusterFeature centroid;
  std::size_t size = 0;

  /// Mean speed of the members (the centroid's speed coordinate).
  [[nodiscard]] double mean_speed() const noexcept { return centroid.speed; }
};

class SequentialClusterer {
 public:
  explicit SequentialClusterer(ClusteringParams params = {});

  /// Assigns (or re-assigns) a node given its current features. Returns the
  /// cluster the node now belongs to.
  ClusterId assign(MnId mn, const MotionFeatures& features);

  /// Removes a node (e.g. it entered Stop State). Returns false when the
  /// node was not clustered. Empty clusters are retired.
  bool remove(MnId mn);

  /// Cluster of a node, if any.
  [[nodiscard]] std::optional<ClusterId> cluster_of(MnId mn) const;

  /// Cluster metadata; throws std::out_of_range for a retired/unknown id.
  [[nodiscard]] const ClusterInfo& cluster(ClusterId id) const;

  /// Live clusters, ordered by id.
  [[nodiscard]] std::vector<ClusterInfo> clusters() const;
  [[nodiscard]] std::size_t cluster_count() const noexcept;
  [[nodiscard]] std::size_t member_count() const noexcept {
    return memberships_.size();
  }

  /// Reconstruction (paper step 6): re-assigns every member from scratch in
  /// MnId order using its latest features, then merges clusters whose
  /// centroids are within `merge_fraction * alpha`. Deterministic.
  void rebuild(double merge_fraction = 0.5);

  /// Total number of clusters ever created (monotone; for diagnostics).
  [[nodiscard]] std::uint64_t clusters_created() const noexcept {
    return clusters_created_;
  }

  [[nodiscard]] const ClusteringParams& params() const noexcept {
    return params_;
  }

 private:
  struct ClusterState {
    ClusterInfo info;
    // Running sums backing the centroid.
    double sum_speed = 0.0;
    double sum_dir_x = 0.0;
    double sum_dir_y = 0.0;
  };

  ClusterId create_cluster(const ClusterFeature& seed);
  void add_member(ClusterState& cluster, MnId mn, const ClusterFeature& f);
  void remove_member(ClusterState& cluster, MnId mn);
  void refresh_centroid(ClusterState& cluster) noexcept;
  [[nodiscard]] ClusterState* find_nearest(const ClusterFeature& f,
                                           double* out_distance);

  ClusteringParams params_;
  // Dense-by-id storage; retired clusters become nullopt slots.
  std::vector<std::optional<ClusterState>> clusters_;
  std::unordered_map<MnId, ClusterId> memberships_;
  std::unordered_map<MnId, ClusterFeature> latest_features_;
  std::uint64_t clusters_created_ = 0;
};

}  // namespace mgrid::core

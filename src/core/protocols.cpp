#include "core/protocols.h"

#include <stdexcept>

#include "obs/eventlog.h"

namespace mgrid::core {

// ---------------------------------------------------------------------------
// TimeFilter
// ---------------------------------------------------------------------------

TimeFilter::TimeFilter(Duration interval) : interval_(interval) {
  if (!(interval > 0.0)) {
    throw std::invalid_argument("TimeFilter: interval must be > 0");
  }
}

FilterDecision TimeFilter::process(MnId mn, SimTime t, geo::Vec2 position) {
  if (!mn.valid()) {
    throw std::invalid_argument("TimeFilter::process: invalid MnId");
  }
  (void)position;
  FilterDecision decision;
  auto [it, inserted] = last_tx_.try_emplace(mn, t);
  if (inserted || t - it->second >= interval_) {
    it->second = t;
    decision.transmit = true;
    ++transmitted_;
  } else {
    ++filtered_;
  }
  return decision;
}

void TimeFilter::note_forced_transmit(MnId mn, SimTime t,
                                      geo::Vec2 /*position*/) {
  last_tx_[mn] = t;
}

// ---------------------------------------------------------------------------
// BoundedSilenceFilter
// ---------------------------------------------------------------------------

BoundedSilenceFilter::BoundedSilenceFilter(
    std::unique_ptr<LocationUpdateFilter> inner, Duration max_silence)
    : inner_(std::move(inner)), max_silence_(max_silence) {
  if (!inner_) {
    throw std::invalid_argument("BoundedSilenceFilter: null inner");
  }
  if (!(max_silence > 0.0)) {
    throw std::invalid_argument(
        "BoundedSilenceFilter: max_silence must be > 0");
  }
  name_ = "bounded_silence(" + std::string(inner_->name()) + ")";
}

FilterDecision BoundedSilenceFilter::process(MnId mn, SimTime t,
                                             geo::Vec2 position) {
  FilterDecision decision = inner_->process(mn, t, position);
  auto [it, inserted] = last_tx_.try_emplace(mn, t);
  if (decision.transmit) {
    it->second = t;
    ++transmitted_;
    return decision;
  }
  if (t - it->second >= max_silence_) {
    // Bound expired: force this sample through and realign the inner
    // policy's anchor so it measures displacement from here on.
    inner_->note_forced_transmit(mn, t, position);
    it->second = t;
    decision.transmit = true;
    ++forced_;
    ++transmitted_;
    if (obs::eventlog_enabled()) obs::evt::forced_refresh();
    return decision;
  }
  ++filtered_;
  return decision;
}

void BoundedSilenceFilter::note_forced_transmit(MnId mn, SimTime t,
                                                geo::Vec2 position) {
  inner_->note_forced_transmit(mn, t, position);
  last_tx_[mn] = t;
}

// ---------------------------------------------------------------------------
// PredictionFilter
// ---------------------------------------------------------------------------

PredictionFilter::PredictionFilter(EstimatorFactory make_estimator,
                                   double threshold)
    : make_estimator_(std::move(make_estimator)), threshold_(threshold) {
  if (!make_estimator_) {
    throw std::invalid_argument("PredictionFilter: null estimator factory");
  }
  if (!(threshold > 0.0)) {
    throw std::invalid_argument("PredictionFilter: threshold must be > 0");
  }
}

FilterDecision PredictionFilter::process(MnId mn, SimTime t,
                                         geo::Vec2 position) {
  if (!mn.valid()) {
    throw std::invalid_argument("PredictionFilter::process: invalid MnId");
  }
  FilterDecision decision;
  auto it = predictors_.find(mn);
  if (it == predictors_.end()) {
    // First sighting: introduce the node and seed the shared predictor.
    it = predictors_.emplace(mn, make_estimator_()).first;
    it->second->observe(t, position);
    decision.transmit = true;
    ++transmitted_;
    return decision;
  }
  const geo::Vec2 predicted = it->second->estimate(t);
  decision.moved = geo::distance(predicted, position);
  decision.dth = threshold_;
  if (decision.moved > threshold_) {
    // The shared prediction has drifted too far: correct it. Only
    // transmitted fixes feed the predictor — the broker sees the same
    // stream and stays in lockstep.
    it->second->observe(t, position);
    decision.transmit = true;
    ++transmitted_;
  } else {
    ++filtered_;
  }
  return decision;
}

void PredictionFilter::note_forced_transmit(MnId mn, SimTime t,
                                            geo::Vec2 position) {
  auto it = predictors_.find(mn);
  if (it == predictors_.end()) {
    it = predictors_.emplace(mn, make_estimator_()).first;
  }
  it->second->observe(t, position);
}

std::optional<geo::Vec2> PredictionFilter::shared_prediction(
    MnId mn, SimTime t) const {
  auto it = predictors_.find(mn);
  if (it == predictors_.end()) return std::nullopt;
  return it->second->estimate(t);
}

}  // namespace mgrid::core

// Distance Filter (DF) — the LU suppression primitive (paper §3.2.2).
//
// Per MN it remembers the last *transmitted* position. A new sample is
// transmitted only when its distance from that anchor exceeds the Distance
// Threshold (DTH); otherwise the LU is filtered. Comparing against the last
// transmission (not the previous sample) means displacement accumulates, so
// even a slow mover eventually reports and the broker's error stays bounded
// by ~DTH.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "geo/vec2.h"
#include "util/types.h"

namespace mgrid::core {

class DistanceFilter {
 public:
  struct Decision {
    bool transmit = false;
    /// Distance from the last transmitted position (0 on first sighting).
    double moved = 0.0;
  };

  /// Applies the filter for one sample. The first sample of an MN is always
  /// transmitted (the broker must learn the node exists). `dth` must be
  /// >= 0.
  Decision apply(MnId mn, geo::Vec2 position, double dth);

  /// Transmits unconditionally and moves the anchor (used for forced
  /// refreshes). Returns the distance moved since the previous anchor.
  double force_transmit(MnId mn, geo::Vec2 position);

  /// Last transmitted position of an MN, if any.
  [[nodiscard]] std::optional<geo::Vec2> last_transmitted(MnId mn) const;

  void forget(MnId mn);
  [[nodiscard]] std::size_t tracked_count() const noexcept {
    return anchors_.size();
  }

  [[nodiscard]] std::uint64_t transmitted() const noexcept {
    return transmitted_;
  }
  [[nodiscard]] std::uint64_t filtered() const noexcept { return filtered_; }

 private:
  std::unordered_map<MnId, geo::Vec2> anchors_;
  std::uint64_t transmitted_ = 0;
  std::uint64_t filtered_ = 0;
};

}  // namespace mgrid::core

#include "core/classifier.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "obs/eventlog.h"
#include "stats/running_stats.h"

namespace mgrid::core {

MobilityClassifier::MobilityClassifier(ClassifierParams params)
    : params_(params) {
  if (params.window < 2) {
    throw std::invalid_argument("MobilityClassifier: window must be >= 2");
  }
  if (!(params.walk_velocity > 0.0)) {
    throw std::invalid_argument(
        "MobilityClassifier: walk_velocity must be > 0");
  }
  if (params.stop_epsilon < 0.0 ||
      params.stop_epsilon >= params.walk_velocity) {
    throw std::invalid_argument(
        "MobilityClassifier: stop_epsilon must be in [0, walk_velocity)");
  }
  if (params.heading_change_threshold <= 0.0 ||
      params.speed_cv_threshold <= 0.0) {
    throw std::invalid_argument(
        "MobilityClassifier: thresholds must be > 0");
  }
}

void MobilityClassifier::observe(MnId mn, SimTime t, geo::Vec2 position) {
  if (!mn.valid()) {
    throw std::invalid_argument("MobilityClassifier::observe: invalid MnId");
  }
  auto& window = windows_[mn];
  if (!window.empty()) {
    if (t < window.back().t) {
      throw std::invalid_argument(
          "MobilityClassifier::observe: time went backwards");
    }
    if (t == window.back().t) return;  // duplicate tick
  }
  window.push_back(Sample{t, position});
  while (window.size() > params_.window) window.pop_front();
}

MotionFeatures MobilityClassifier::features(MnId mn) const {
  MotionFeatures out;
  auto it = windows_.find(mn);
  if (it == windows_.end()) return out;
  const std::deque<Sample>& window = it->second;
  out.samples = window.size();
  if (window.size() < 2) return out;

  stats::RunningStats speeds;
  std::vector<double> headings;  // headings of moving segments only
  for (std::size_t i = 1; i < window.size(); ++i) {
    const Duration dt = window[i].t - window[i - 1].t;
    const geo::Vec2 displacement =
        window[i].position - window[i - 1].position;
    const double dist = displacement.norm();
    speeds.add(dist / dt);
    // The heading of a (near-)zero displacement is noise, not direction.
    if (dist / dt >= params_.stop_epsilon) {
      headings.push_back(displacement.heading());
    }
  }
  out.mean_speed = speeds.mean();
  out.speed_stddev = speeds.stddev();
  if (!headings.empty()) out.heading = headings.back();

  if (headings.size() >= 2) {
    stats::RunningStats changes;
    for (std::size_t i = 1; i < headings.size(); ++i) {
      changes.add(geo::angle_diff(headings[i], headings[i - 1]));
    }
    // RMS movement produces zero-mean but high-variance heading changes;
    // use the RMS of the change (not the stddev about the mean) so a single
    // steady turn still reads as "one direction change".
    const double mean_sq =
        changes.variance() + changes.mean() * changes.mean();
    out.heading_change_stddev = std::sqrt(mean_sq);
  }
  return out;
}

mobility::MobilityPattern MobilityClassifier::classify(MnId mn) const {
  const MotionFeatures f = features(mn);
  mobility::MobilityPattern pattern = mobility::MobilityPattern::kLinear;
  // Fig. 2, line 1: V_mn == 0 -> Stop.
  if (f.samples < 2 || f.mean_speed < params_.stop_epsilon) {
    pattern = mobility::MobilityPattern::kStop;
  } else if (f.mean_speed > params_.walk_velocity) {
    // Fig. 2: V_mn > V_walk -> running / vehicle -> Linear.
    pattern = mobility::MobilityPattern::kLinear;
  } else if (f.heading_change_stddev > params_.heading_change_threshold ||
             f.speed_cv() > params_.speed_cv_threshold) {
    // Walking: frequent velocity or direction change -> Random.
    pattern = mobility::MobilityPattern::kRandom;
  }
  if (obs::eventlog_enabled()) {
    obs::evt::classified(pattern == mobility::MobilityPattern::kStop  ? 'S'
                         : pattern == mobility::MobilityPattern::kRandom
                             ? 'R'
                             : 'L');
  }
  return pattern;
}

void MobilityClassifier::forget(MnId mn) { windows_.erase(mn); }

}  // namespace mgrid::core

#include "core/adf.h"

#include <stdexcept>

namespace mgrid::core {

AdaptiveDistanceFilter::AdaptiveDistanceFilter(AdfParams params)
    : params_(params),
      classifier_(params.classifier),
      clusterer_(params.clustering) {
  if (!(params.dth_factor > 0.0)) {
    throw std::invalid_argument("AdfParams: dth_factor must be > 0");
  }
  if (!(params.sample_period > 0.0)) {
    throw std::invalid_argument("AdfParams: sample_period must be > 0");
  }
  if (params.stop_dth_factor < 0.0) {
    throw std::invalid_argument("AdfParams: stop_dth_factor must be >= 0");
  }
  if (params.recluster_interval < 0.0) {
    throw std::invalid_argument("AdfParams: recluster_interval must be >= 0");
  }
}

double AdaptiveDistanceFilter::stop_dth() const noexcept {
  return params_.stop_dth_factor * params_.classifier.walk_velocity *
         params_.sample_period;
}

FilterDecision AdaptiveDistanceFilter::process(MnId mn, SimTime t,
                                               geo::Vec2 position) {
  FilterDecision decision = update_dth(mn, t, position);
  // (4) filter, (5) transmit.
  const DistanceFilter::Decision df =
      filter_.apply(mn, position, decision.dth);
  decision.transmit = df.transmit;
  decision.moved = df.moved;
  return decision;
}

FilterDecision AdaptiveDistanceFilter::update_dth(MnId mn, SimTime t,
                                                  geo::Vec2 position) {
  // (3) acquire + (1) observe velocity/direction.
  classifier_.observe(mn, t, position);

  // Periodic cluster reconstruction (6).
  if (params_.recluster_interval > 0.0) {
    if (!rebuild_clock_started_) {
      rebuild_clock_started_ = true;
      last_rebuild_ = t;
    } else if (t - last_rebuild_ >= params_.recluster_interval) {
      clusterer_.rebuild();
      last_rebuild_ = t;
      ++rebuilds_;
    }
  }

  FilterDecision decision;
  decision.pattern = classifier_.classify(mn);

  // (2) classify + cluster.
  if (decision.pattern == mobility::MobilityPattern::kStop) {
    clusterer_.remove(mn);
    decision.dth = stop_dth();
  } else {
    const MotionFeatures features = classifier_.features(mn);
    decision.cluster = clusterer_.assign(mn, features);
    decision.dth = params_.dth_factor *
                   clusterer_.cluster(decision.cluster).mean_speed() *
                   params_.sample_period;
  }
  current_dth_[mn] = decision.dth;
  decision.transmit = true;
  return decision;
}

void AdaptiveDistanceFilter::note_forced_transmit(MnId mn, SimTime /*t*/,
                                                  geo::Vec2 position) {
  filter_.force_transmit(mn, position);
}

double AdaptiveDistanceFilter::current_dth(MnId mn) const {
  auto it = current_dth_.find(mn);
  return it == current_dth_.end() ? 0.0 : it->second;
}

}  // namespace mgrid::core

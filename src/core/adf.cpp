#include "core/adf.h"

#include <stdexcept>

#include "obs/eventlog.h"
#include "obs/metrics.h"

namespace mgrid::core {

namespace {

constexpr std::size_t kPatternCount = 3;  // stop, random, linear

/// ADF telemetry shared by every filter instance. The 3x3 transition matrix
/// is pre-registered so the hot path never takes the registry lock.
struct AdfMetrics {
  obs::Counter transmitted;
  obs::Counter filtered;
  obs::Counter rebuilds;
  obs::Gauge clusters;
  obs::HistogramMetric dth_meters;
  obs::Counter transitions[kPatternCount][kPatternCount];

  explicit AdfMetrics(obs::MetricsRegistry& registry) {
    transmitted = registry.counter("mgrid_adf_transmitted_total", {},
                                   "Location updates passed by the ADF");
    filtered = registry.counter("mgrid_adf_filtered_total", {},
                                "Location updates suppressed by the ADF");
    rebuilds = registry.counter("mgrid_adf_rebuilds_total", {},
                                "Periodic cluster reconstructions");
    clusters = registry.gauge("mgrid_adf_clusters", {},
                              "Clusters after the last DTH computation");
    dth_meters =
        registry.histogram("mgrid_adf_dth_meters", 0.0, 50.0, 50, {},
                           "Distance threshold handed to the filter, meters");
    for (std::size_t from = 0; from < kPatternCount; ++from) {
      for (std::size_t to = 0; to < kPatternCount; ++to) {
        const auto from_name = mobility::to_string(
            static_cast<mobility::MobilityPattern>(from));
        const auto to_name =
            mobility::to_string(static_cast<mobility::MobilityPattern>(to));
        transitions[from][to] = registry.counter(
            "mgrid_adf_transitions_total",
            {{"from", std::string(from_name)}, {"to", std::string(to_name)}},
            "Mobility-pattern transitions observed by the classifier");
      }
    }
  }
};

AdfMetrics& adf_metrics() { return obs::instruments<AdfMetrics>(); }

}  // namespace

AdaptiveDistanceFilter::AdaptiveDistanceFilter(AdfParams params)
    : params_(params),
      classifier_(params.classifier),
      clusterer_(params.clustering) {
  if (!(params.dth_factor > 0.0)) {
    throw std::invalid_argument("AdfParams: dth_factor must be > 0");
  }
  if (!(params.sample_period > 0.0)) {
    throw std::invalid_argument("AdfParams: sample_period must be > 0");
  }
  if (params.stop_dth_factor < 0.0) {
    throw std::invalid_argument("AdfParams: stop_dth_factor must be >= 0");
  }
  if (params.recluster_interval < 0.0) {
    throw std::invalid_argument("AdfParams: recluster_interval must be >= 0");
  }
}

double AdaptiveDistanceFilter::stop_dth() const noexcept {
  return params_.stop_dth_factor * params_.classifier.walk_velocity *
         params_.sample_period;
}

FilterDecision AdaptiveDistanceFilter::process(MnId mn, SimTime t,
                                               geo::Vec2 position) {
  FilterDecision decision = update_dth(mn, t, position);
  // (4) filter, (5) transmit.
  const DistanceFilter::Decision df =
      filter_.apply(mn, position, decision.dth);
  decision.transmit = df.transmit;
  decision.moved = df.moved;
  if (obs::enabled()) {
    (decision.transmit ? adf_metrics().transmitted : adf_metrics().filtered)
        .inc();
  }
  return decision;
}

FilterDecision AdaptiveDistanceFilter::update_dth(MnId mn, SimTime t,
                                                  geo::Vec2 position) {
  // (3) acquire + (1) observe velocity/direction.
  classifier_.observe(mn, t, position);

  // Periodic cluster reconstruction (6).
  if (params_.recluster_interval > 0.0) {
    if (!rebuild_clock_started_) {
      rebuild_clock_started_ = true;
      last_rebuild_ = t;
    } else if (t - last_rebuild_ >= params_.recluster_interval) {
      clusterer_.rebuild();
      last_rebuild_ = t;
      ++rebuilds_;
      if (obs::enabled()) adf_metrics().rebuilds.inc();
    }
  }

  FilterDecision decision;
  decision.pattern = classifier_.classify(mn);

  // (2) classify + cluster.
  if (decision.pattern == mobility::MobilityPattern::kStop) {
    clusterer_.remove(mn);
    decision.dth = stop_dth();
  } else {
    const MotionFeatures features = classifier_.features(mn);
    decision.cluster = clusterer_.assign(mn, features);
    decision.dth = params_.dth_factor *
                   clusterer_.cluster(decision.cluster).mean_speed() *
                   params_.sample_period;
  }
  current_dth_[mn] = decision.dth;
  decision.transmit = true;
  if (obs::eventlog_enabled()) obs::evt::threshold(decision.dth);
  if (obs::enabled()) {
    AdfMetrics& metrics = adf_metrics();
    metrics.dth_meters.observe(decision.dth);
    metrics.clusters.set(static_cast<double>(clusterer_.cluster_count()));
    // State-transition accounting (per-MN last pattern is only maintained
    // while telemetry is on; the first enabled sample seeds it silently).
    const auto slot = static_cast<std::size_t>(mn.value());
    if (slot >= last_pattern_.size()) last_pattern_.resize(slot + 1, 0xFF);
    const std::uint8_t previous = last_pattern_[slot];
    const auto current = static_cast<std::uint8_t>(decision.pattern);
    if (previous != 0xFF && previous != current) {
      metrics.transitions[previous][current].inc();
    }
    last_pattern_[slot] = current;
  }
  return decision;
}

void AdaptiveDistanceFilter::note_forced_transmit(MnId mn, SimTime /*t*/,
                                                  geo::Vec2 position) {
  filter_.force_transmit(mn, position);
}

double AdaptiveDistanceFilter::current_dth(MnId mn) const {
  auto it = current_dth_.find(mn);
  return it == current_dth_.end() ? 0.0 : it->second;
}

}  // namespace mgrid::core

// Baseline filtering policies.
//
//  * IdealReporter — "ideal LU" in the paper's figures: every sampled
//    position is transmitted, nothing filtered.
//  * GeneralDistanceFilter — §3.2.2's general DF: one global DTH derived
//    from the *population* average speed, applied to every MN regardless of
//    its mobility. This is what the ADF's per-cluster DTH improves on.
#pragma once

#include <cstdint>

#include "core/distance_filter.h"
#include "core/update_filter.h"
#include "stats/running_stats.h"

namespace mgrid::core {

class IdealReporter final : public LocationUpdateFilter {
 public:
  FilterDecision process(MnId mn, SimTime t, geo::Vec2 position) override;

  [[nodiscard]] std::string_view name() const noexcept override {
    return "ideal";
  }
  [[nodiscard]] std::uint64_t transmitted() const noexcept override {
    return transmitted_;
  }
  [[nodiscard]] std::uint64_t filtered() const noexcept override { return 0; }

 private:
  struct LastFix {
    SimTime t;
    geo::Vec2 position;
  };
  std::unordered_map<MnId, LastFix> last_;
  std::uint64_t transmitted_ = 0;
};

struct GeneralDfParams {
  /// DTH = dth_factor * population mean speed * sample_period.
  double dth_factor = 1.0;
  /// LU sampling period, seconds (> 0).
  Duration sample_period = 1.0;
  /// Samples to accumulate before the global DTH kicks in (the filter
  /// passes everything while it is still estimating the population speed).
  std::size_t warmup_samples = 64;
};

class GeneralDistanceFilter final : public LocationUpdateFilter {
 public:
  explicit GeneralDistanceFilter(GeneralDfParams params = {});

  FilterDecision process(MnId mn, SimTime t, geo::Vec2 position) override;

  [[nodiscard]] std::string_view name() const noexcept override {
    return "general_df";
  }
  [[nodiscard]] std::uint64_t transmitted() const noexcept override {
    return filter_.transmitted();
  }
  [[nodiscard]] std::uint64_t filtered() const noexcept override {
    return filter_.filtered();
  }

  /// The global DTH currently in force (0 during warm-up).
  [[nodiscard]] double global_dth() const noexcept;
  /// Population mean speed observed so far.
  [[nodiscard]] double population_mean_speed() const noexcept {
    return speeds_.mean();
  }

 private:
  GeneralDfParams params_;
  DistanceFilter filter_;
  stats::RunningStats speeds_;
  std::unordered_map<MnId, geo::Vec2> previous_;
  std::unordered_map<MnId, SimTime> previous_time_;
};

}  // namespace mgrid::core

#include "core/device_filter.h"

#include <stdexcept>

namespace mgrid::core {

void DeviceSideFilter::set_dth(double dth) {
  if (dth < 0.0) {
    throw std::invalid_argument("DeviceSideFilter::set_dth: dth must be >= 0");
  }
  dth_ = dth;
  ++dth_updates_;
}

bool DeviceSideFilter::should_transmit(geo::Vec2 position) {
  if (!has_anchor_) {
    has_anchor_ = true;
    anchor_ = position;
    ++transmitted_;
    return true;
  }
  if (geo::distance(anchor_, position) > dth_) {
    anchor_ = position;
    ++transmitted_;
    return true;
  }
  ++suppressed_;
  return false;
}

}  // namespace mgrid::core

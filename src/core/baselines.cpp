#include "core/baselines.h"

#include <stdexcept>

namespace mgrid::core {

FilterDecision IdealReporter::process(MnId mn, SimTime t,
                                      geo::Vec2 position) {
  if (!mn.valid()) {
    throw std::invalid_argument("IdealReporter::process: invalid MnId");
  }
  FilterDecision decision;
  decision.transmit = true;
  auto [it, inserted] = last_.try_emplace(mn, LastFix{t, position});
  if (!inserted) {
    decision.moved = geo::distance(it->second.position, position);
    it->second = LastFix{t, position};
  }
  ++transmitted_;
  return decision;
}

GeneralDistanceFilter::GeneralDistanceFilter(GeneralDfParams params)
    : params_(params) {
  if (!(params.dth_factor > 0.0)) {
    throw std::invalid_argument("GeneralDfParams: dth_factor must be > 0");
  }
  if (!(params.sample_period > 0.0)) {
    throw std::invalid_argument("GeneralDfParams: sample_period must be > 0");
  }
}

double GeneralDistanceFilter::global_dth() const noexcept {
  if (speeds_.count() < params_.warmup_samples) return 0.0;
  return params_.dth_factor * speeds_.mean() * params_.sample_period;
}

FilterDecision GeneralDistanceFilter::process(MnId mn, SimTime t,
                                              geo::Vec2 position) {
  if (!mn.valid()) {
    throw std::invalid_argument(
        "GeneralDistanceFilter::process: invalid MnId");
  }
  // Update the population speed estimate from this node's displacement.
  if (auto it = previous_.find(mn); it != previous_.end()) {
    const Duration dt = t - previous_time_.at(mn);
    if (dt > 0.0) speeds_.add(geo::distance(it->second, position) / dt);
  }
  previous_[mn] = position;
  previous_time_[mn] = t;

  FilterDecision decision;
  decision.dth = global_dth();
  const DistanceFilter::Decision df =
      filter_.apply(mn, position, decision.dth);
  decision.transmit = df.transmit;
  decision.moved = df.moved;
  return decision;
}

}  // namespace mgrid::core

// Mobility-pattern classifier (paper §3.2.1, Fig. 2).
//
// From an MN's sampled positions it maintains a sliding observation window
// and classifies:
//   V_mn ~ 0                                  -> Stop State (SS)
//   V_mn > V_walk                             -> Linear Movement (running /
//                                                vehicle)
//   0 < V_mn <= V_walk, V and D constant      -> Linear Movement (walking)
//   0 < V_mn <= V_walk, V or D change often   -> Random Movement
#pragma once

#include <deque>
#include <unordered_map>

#include "core/motion_features.h"
#include "mobility/mobility_model.h"
#include "util/types.h"

namespace mgrid::core {

struct ClassifierParams {
  /// Maximum walking velocity V_walk (m/s). Faster nodes are running or in
  /// a vehicle -> LMS by definition.
  double walk_velocity = 2.0;
  /// Speeds below this are "not moving" (m/s).
  double stop_epsilon = 0.05;
  /// Sliding window length in samples (>= 2).
  std::size_t window = 8;
  /// A walking node is RMS when the stddev of consecutive heading changes
  /// exceeds this (radians)...
  double heading_change_threshold = 0.7;
  /// ...or when the speed coefficient-of-variation exceeds this.
  double speed_cv_threshold = 0.5;
};

class MobilityClassifier {
 public:
  explicit MobilityClassifier(ClassifierParams params = {});

  /// Feeds one sampled position. Samples must be time-ordered per MN
  /// (equal timestamps are ignored).
  void observe(MnId mn, SimTime t, geo::Vec2 position);

  /// Classifies from the current window. An MN with fewer than 2 samples is
  /// SS (nothing has been seen moving yet).
  [[nodiscard]] mobility::MobilityPattern classify(MnId mn) const;

  /// Motion features for the clusterer (zeroed when unknown MN).
  [[nodiscard]] MotionFeatures features(MnId mn) const;

  /// Drops an MN's history (e.g. when it leaves the grid).
  void forget(MnId mn);

  [[nodiscard]] std::size_t tracked_count() const noexcept {
    return windows_.size();
  }
  [[nodiscard]] const ClassifierParams& params() const noexcept {
    return params_;
  }

 private:
  struct Sample {
    SimTime t;
    geo::Vec2 position;
  };

  ClassifierParams params_;
  std::unordered_map<MnId, std::deque<Sample>> windows_;
};

}  // namespace mgrid::core

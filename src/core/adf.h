// Adaptive Distance Filter (ADF) — the paper's contribution (§3.2, §3.4).
//
// Pipeline per sampled position:
//   1. classifier.observe()                  (velocity/direction window)
//   2. classify -> SS | RMS | LMS            (Fig. 2)
//   3. SS  -> leave/stay out of any cluster; DTH = stop-state threshold
//      RMS/LMS -> (re)assign to a BSAS cluster; DTH = factor *
//                 cluster-mean-speed * sample-period
//   4. distance-filter the LU against the DTH
//   5. periodically rebuild the clusters     (step 6 of the ADF process)
//
// The first classification + clustering happens implicitly on each node's
// first samples (steps 1-2 of the paper's six-step process run once, the
// rest repeat).
#pragma once

#include <cstdint>
#include <vector>

#include "core/classifier.h"
#include "core/clustering.h"
#include "core/distance_filter.h"
#include "core/update_filter.h"

namespace mgrid::core {

struct AdfParams {
  /// DTH = dth_factor * cluster mean speed * sample_period. The paper
  /// evaluates 0.75, 1.0 and 1.25 ("0.75 av" etc.).
  double dth_factor = 1.0;
  /// LU sampling period, seconds (> 0; the paper samples at 1 s).
  Duration sample_period = 1.0;
  /// DTH applied to Stop State nodes: stop_dth_factor * walk_velocity *
  /// sample_period. Keeps a parked node silent yet reports it as soon as it
  /// genuinely moves.
  double stop_dth_factor = 0.25;
  /// Cluster reconstruction interval, seconds (0 disables periodic
  /// rebuilds).
  Duration recluster_interval = 30.0;
  ClassifierParams classifier;
  ClusteringParams clustering;
};

class AdaptiveDistanceFilter final : public LocationUpdateFilter {
 public:
  explicit AdaptiveDistanceFilter(AdfParams params = {});

  FilterDecision process(MnId mn, SimTime t, geo::Vec2 position) override;

  void note_forced_transmit(MnId mn, SimTime t, geo::Vec2 position) override;

  /// Steps 1-3 and 6 only: classify, (re-)cluster, compute the DTH —
  /// WITHOUT applying the distance filter. Used by device-side filtering,
  /// where the ADF computes thresholds centrally but suppression happens on
  /// the mobile node (the returned decision has transmit == true and
  /// moved == 0).
  FilterDecision update_dth(MnId mn, SimTime t, geo::Vec2 position);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "adf";
  }
  [[nodiscard]] std::uint64_t transmitted() const noexcept override {
    return filter_.transmitted();
  }
  [[nodiscard]] std::uint64_t filtered() const noexcept override {
    return filter_.filtered();
  }

  /// The DTH currently applied to an MN (0 when never processed).
  [[nodiscard]] double current_dth(MnId mn) const;

  [[nodiscard]] const MobilityClassifier& classifier() const noexcept {
    return classifier_;
  }
  [[nodiscard]] const SequentialClusterer& clusterer() const noexcept {
    return clusterer_;
  }
  [[nodiscard]] const AdfParams& params() const noexcept { return params_; }
  [[nodiscard]] std::uint64_t rebuilds() const noexcept { return rebuilds_; }

 private:
  [[nodiscard]] double stop_dth() const noexcept;

  AdfParams params_;
  MobilityClassifier classifier_;
  SequentialClusterer clusterer_;
  DistanceFilter filter_;
  std::unordered_map<MnId, double> current_dth_;
  /// Last classified pattern per MN, maintained only while telemetry is
  /// enabled (feeds mgrid_adf_transitions_total).
  /// Last classified pattern per MN (telemetry transition matrix), indexed
  /// by MnId value; 0xFF = not yet seen. MnIds are dense in practice, so a
  /// flat vector beats a hash map on the per-sample hot path.
  std::vector<std::uint8_t> last_pattern_;
  SimTime last_rebuild_ = 0.0;
  bool rebuild_clock_started_ = false;
  std::uint64_t rebuilds_ = 0;
};

}  // namespace mgrid::core

// Device-side distance filtering (extension; paper's future-work direction).
//
// The paper filters LUs at the ADF, *after* the mobile node has already
// spent uplink energy sending them. If the ADF instead pushes each node's
// current DTH down to the device, the node can suppress the LU locally and
// keep its radio off — trading a small downlink control stream (DTH
// updates) for the entire suppressed uplink.
//
// DeviceSideFilter is the MN-resident half: it holds the last DTH pushed by
// the ADF and the last *transmitted* position, and decides per sample
// whether to key the radio. The ADF-resident half is
// AdaptiveDistanceFilter::update_dth() plus a hysteresis publisher (see
// FilterFederate's device-side mode).
#pragma once

#include <cstdint>

#include "geo/vec2.h"
#include "util/types.h"

namespace mgrid::core {

class DeviceSideFilter {
 public:
  /// Starts with DTH 0 (transmit every movement) until the ADF pushes a
  /// threshold.
  DeviceSideFilter() = default;

  /// Applies a DTH pushed by the ADF (must be >= 0).
  void set_dth(double dth);
  [[nodiscard]] double dth() const noexcept { return dth_; }

  /// Decides whether the sampled position must be transmitted; updates the
  /// anchor when it is. First sample always transmits.
  [[nodiscard]] bool should_transmit(geo::Vec2 position);

  [[nodiscard]] std::uint64_t transmitted() const noexcept {
    return transmitted_;
  }
  [[nodiscard]] std::uint64_t suppressed() const noexcept {
    return suppressed_;
  }
  [[nodiscard]] std::uint64_t dth_updates_received() const noexcept {
    return dth_updates_;
  }

 private:
  double dth_ = 0.0;
  bool has_anchor_ = false;
  geo::Vec2 anchor_{};
  std::uint64_t transmitted_ = 0;
  std::uint64_t suppressed_ = 0;
  std::uint64_t dth_updates_ = 0;
};

}  // namespace mgrid::core

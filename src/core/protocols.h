// Alternative location-update protocols (extension; comparison points from
// the location-management literature the paper's distance filter belongs
// to).
//
//  * TimeFilter — temporal reporting: one LU every `interval` seconds
//    regardless of movement. The classic strawman: wastes LUs on parked
//    nodes, under-reports fast ones.
//  * BoundedSilenceFilter — decorator: any inner policy plus a maximum
//    silence bound. If the inner policy suppressed everything for
//    `max_silence` seconds, the next sample is forced through. Gives a
//    distance filter a hard staleness guarantee.
//  * PredictionFilter — DIS/HLA-style dead-reckoning reporting: device and
//    broker run the *same* predictor over the *transmitted* fixes; the
//    device transmits only when its true position deviates from the shared
//    prediction by more than `threshold`. By construction, a broker running
//    the same estimator tracks every node within `threshold` at sample
//    times (plus delivery latency) — the error bound the ADF only achieves
//    indirectly.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "core/update_filter.h"
#include "estimation/estimator.h"

namespace mgrid::core {

class TimeFilter final : public LocationUpdateFilter {
 public:
  /// Transmit at most once per `interval` seconds per MN (> 0); the first
  /// sample always transmits.
  explicit TimeFilter(Duration interval);

  FilterDecision process(MnId mn, SimTime t, geo::Vec2 position) override;
  void note_forced_transmit(MnId mn, SimTime t, geo::Vec2 position) override;

  [[nodiscard]] std::string_view name() const noexcept override {
    return "time_filter";
  }
  [[nodiscard]] std::uint64_t transmitted() const noexcept override {
    return transmitted_;
  }
  [[nodiscard]] std::uint64_t filtered() const noexcept override {
    return filtered_;
  }

 private:
  Duration interval_;
  std::unordered_map<MnId, SimTime> last_tx_;
  std::uint64_t transmitted_ = 0;
  std::uint64_t filtered_ = 0;
};

class BoundedSilenceFilter final : public LocationUpdateFilter {
 public:
  /// Wraps `inner`; a node silent for >= `max_silence` seconds (> 0) has
  /// its next sample forced through (and the inner policy's anchor moved).
  BoundedSilenceFilter(std::unique_ptr<LocationUpdateFilter> inner,
                       Duration max_silence);

  FilterDecision process(MnId mn, SimTime t, geo::Vec2 position) override;
  void note_forced_transmit(MnId mn, SimTime t, geo::Vec2 position) override;

  [[nodiscard]] std::string_view name() const noexcept override {
    return name_;
  }
  [[nodiscard]] std::uint64_t transmitted() const noexcept override {
    return transmitted_;
  }
  [[nodiscard]] std::uint64_t filtered() const noexcept override {
    return filtered_;
  }
  /// LUs that went through only because the silence bound expired.
  [[nodiscard]] std::uint64_t forced() const noexcept { return forced_; }
  [[nodiscard]] const LocationUpdateFilter& inner() const noexcept {
    return *inner_;
  }

 private:
  std::unique_ptr<LocationUpdateFilter> inner_;
  Duration max_silence_;
  std::string name_;
  std::unordered_map<MnId, SimTime> last_tx_;
  std::uint64_t transmitted_ = 0;
  std::uint64_t filtered_ = 0;
  std::uint64_t forced_ = 0;
};

class PredictionFilter final : public LocationUpdateFilter {
 public:
  using EstimatorFactory =
      std::function<std::unique_ptr<estimation::LocationEstimator>()>;

  /// `make_estimator` builds the shared predictor (one clone per MN, fed
  /// with transmitted fixes only); `threshold` metres (> 0) is the maximum
  /// tolerated deviation between truth and prediction.
  PredictionFilter(EstimatorFactory make_estimator, double threshold);

  FilterDecision process(MnId mn, SimTime t, geo::Vec2 position) override;
  void note_forced_transmit(MnId mn, SimTime t, geo::Vec2 position) override;

  [[nodiscard]] std::string_view name() const noexcept override {
    return "prediction_filter";
  }
  [[nodiscard]] std::uint64_t transmitted() const noexcept override {
    return transmitted_;
  }
  [[nodiscard]] std::uint64_t filtered() const noexcept override {
    return filtered_;
  }
  [[nodiscard]] double threshold() const noexcept { return threshold_; }

  /// The device-side predictor's current estimate for an MN (what the
  /// broker would believe); nullopt before the first transmission.
  [[nodiscard]] std::optional<geo::Vec2> shared_prediction(MnId mn,
                                                           SimTime t) const;

 private:
  EstimatorFactory make_estimator_;
  double threshold_;
  std::unordered_map<MnId, std::unique_ptr<estimation::LocationEstimator>>
      predictors_;
  std::uint64_t transmitted_ = 0;
  std::uint64_t filtered_ = 0;
};

}  // namespace mgrid::core

#include "core/analysis.h"

#include <cmath>
#include <stdexcept>

namespace mgrid::core {

double predicted_transmission_rate(double speed, double dth,
                                   Duration period) {
  if (!(period > 0.0)) {
    throw std::invalid_argument(
        "predicted_transmission_rate: period must be > 0");
  }
  if (speed < 0.0 || dth < 0.0) {
    throw std::invalid_argument(
        "predicted_transmission_rate: negative speed or dth");
  }
  if (speed == 0.0) return 0.0;  // never exceeds any threshold
  const double per_tick = speed * period;
  // Smallest k with k * per_tick > dth.
  const double k = std::floor(dth / per_tick) + 1.0;
  return 1.0 / k;
}

double predicted_transmission_rate_uniform(const mobility::SpeedRange& speeds,
                                           double dth, Duration period,
                                           std::size_t integration_steps) {
  if (!speeds.valid()) {
    throw std::invalid_argument(
        "predicted_transmission_rate_uniform: invalid range");
  }
  if (integration_steps == 0) {
    throw std::invalid_argument(
        "predicted_transmission_rate_uniform: zero steps");
  }
  if (speeds.lo == speeds.hi) {
    return predicted_transmission_rate(speeds.lo, dth, period);
  }
  // Midpoint rule over the staircase (exact in the limit; the staircase
  // has finitely many jumps so midpoint converges quickly).
  const double width = (speeds.hi - speeds.lo) /
                       static_cast<double>(integration_steps);
  double sum = 0.0;
  for (std::size_t i = 0; i < integration_steps; ++i) {
    const double s = speeds.lo + (static_cast<double>(i) + 0.5) * width;
    sum += predicted_transmission_rate(s, dth, period);
  }
  return sum / static_cast<double>(integration_steps);
}

double adf_dth(double factor, double mean_speed, Duration period) {
  if (!(factor > 0.0) || mean_speed < 0.0 || !(period > 0.0)) {
    throw std::invalid_argument("adf_dth: invalid arguments");
  }
  return factor * mean_speed * period;
}

double stale_view_error_bound(double dth, double speed, Duration period) {
  if (dth < 0.0 || speed < 0.0 || !(period > 0.0)) {
    throw std::invalid_argument("stale_view_error_bound: invalid arguments");
  }
  return dth + speed * period;
}

}  // namespace mgrid::core

// Analytical model of distance filtering (validation aid).
//
// For a node moving in a straight line at constant speed s sampled every T
// seconds, the DF transmits once every k ticks where k is the smallest
// integer with k*s*T > DTH, i.e. k = floor(DTH/(s*T)) + 1. The
// transmission rate is therefore a staircase 1/k in DTH — a closed form the
// simulator must match exactly, which the test suite asserts. The
// expectation over a uniform speed population predicts the aggregate
// reduction a cluster achieves and explains the Fig. 4 curve's shape.
#pragma once

#include <cstddef>

#include "mobility/mobility_model.h"
#include "util/types.h"

namespace mgrid::core {

/// Expected fraction of samples transmitted by a straight-line mover at
/// constant `speed`, threshold `dth`, sampling period `period`.
/// speed <= 0 yields 0 (only the first sample ever transmits);
/// dth == 0 yields 1 (every moving sample transmits). Requires period > 0,
/// speed >= 0, dth >= 0.
[[nodiscard]] double predicted_transmission_rate(double speed, double dth,
                                                 Duration period);

/// Expected transmission rate of a population with speeds uniform in
/// `speeds`, all sharing one `dth` (numeric integration of the staircase).
/// Requires a valid range.
[[nodiscard]] double predicted_transmission_rate_uniform(
    const mobility::SpeedRange& speeds, double dth, Duration period,
    std::size_t integration_steps = 512);

/// The ADF's DTH for a cluster of mean speed `mean_speed` at `factor`
/// ("f av"): factor * mean_speed * period.
[[nodiscard]] double adf_dth(double factor, double mean_speed,
                             Duration period);

/// Worst-case broker error bound for a filtered node under LOGICAL
/// accounting: the node is never farther than dth from its last transmitted
/// position plus one inter-sample move (dth + speed * period).
[[nodiscard]] double stale_view_error_bound(double dth, double speed,
                                            Duration period);

}  // namespace mgrid::core

#include "core/distance_filter.h"

#include <stdexcept>

#include "obs/eventlog.h"

namespace mgrid::core {

DistanceFilter::Decision DistanceFilter::apply(MnId mn, geo::Vec2 position,
                                               double dth) {
  if (!mn.valid()) {
    throw std::invalid_argument("DistanceFilter::apply: invalid MnId");
  }
  if (dth < 0.0) {
    throw std::invalid_argument("DistanceFilter::apply: dth must be >= 0");
  }
  auto [it, inserted] = anchors_.try_emplace(mn, position);
  if (inserted) {
    ++transmitted_;
    if (obs::eventlog_enabled()) obs::evt::df_outcome(true, 0.0, true);
    return Decision{true, 0.0};
  }
  const double moved = geo::distance(it->second, position);
  if (moved > dth) {
    it->second = position;
    ++transmitted_;
    if (obs::eventlog_enabled()) obs::evt::df_outcome(true, moved, false);
    return Decision{true, moved};
  }
  ++filtered_;
  if (obs::eventlog_enabled()) obs::evt::df_outcome(false, moved, false);
  return Decision{false, moved};
}

double DistanceFilter::force_transmit(MnId mn, geo::Vec2 position) {
  auto [it, inserted] = anchors_.try_emplace(mn, position);
  ++transmitted_;
  if (inserted) return 0.0;
  const double moved = geo::distance(it->second, position);
  it->second = position;
  return moved;
}

std::optional<geo::Vec2> DistanceFilter::last_transmitted(MnId mn) const {
  auto it = anchors_.find(mn);
  if (it == anchors_.end()) return std::nullopt;
  return it->second;
}

void DistanceFilter::forget(MnId mn) { anchors_.erase(mn); }

}  // namespace mgrid::core

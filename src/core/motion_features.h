// Motion features derived from an MN's recent sampled positions.
//
// Both the mobility-pattern classifier (paper Fig. 2) and the sequential
// clusterer consume these: the classifier thresholds them, the clusterer
// embeds (speed, direction) into a similarity space.
#pragma once

#include <cstddef>

#include "geo/vec2.h"
#include "util/types.h"

namespace mgrid::core {

struct MotionFeatures {
  /// Mean speed over the window, m/s.
  double mean_speed = 0.0;
  /// Stddev of per-sample speeds, m/s.
  double speed_stddev = 0.0;
  /// Most recent movement heading, radians (0 when never moved).
  double heading = 0.0;
  /// Stddev of consecutive (wrapped) heading changes, radians.
  double heading_change_stddev = 0.0;
  /// Number of position samples the features were computed from.
  std::size_t samples = 0;

  /// Coefficient of variation of speed (0 when mean is ~0).
  [[nodiscard]] double speed_cv() const noexcept {
    return mean_speed > 1e-9 ? speed_stddev / mean_speed : 0.0;
  }
};

/// Feature embedding used for cluster similarity:
///   (speed, w * cos(heading), w * sin(heading)).
/// `direction_weight` converts direction mismatch into m/s-equivalent
/// distance so the BSAS bound alpha has a single unit.
struct ClusterFeature {
  double speed = 0.0;
  double dir_x = 0.0;
  double dir_y = 0.0;

  static ClusterFeature from_motion(const MotionFeatures& motion,
                                    double direction_weight) noexcept {
    return ClusterFeature{
        motion.mean_speed,
        direction_weight * std::cos(motion.heading),
        direction_weight * std::sin(motion.heading)};
  }

  [[nodiscard]] double distance_to(const ClusterFeature& other) const noexcept {
    const double ds = speed - other.speed;
    const double dx = dir_x - other.dir_x;
    const double dy = dir_y - other.dir_y;
    return std::sqrt(ds * ds + dx * dx + dy * dy);
  }
};

}  // namespace mgrid::core

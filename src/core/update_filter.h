// Common interface of all location-update filtering policies, so the
// experiment runner and benches can swap the ADF, the general DF baseline
// and the ideal (no-filter) reporter behind one API.
#pragma once

#include <memory>
#include <string_view>

#include "geo/vec2.h"
#include "mobility/mobility_model.h"
#include "util/types.h"

namespace mgrid::core {

/// The outcome of feeding one sampled position through a filter.
struct FilterDecision {
  /// Forward this LU to the grid broker?
  bool transmit = false;
  /// Pattern the policy believes the MN is in (ground truth for baselines
  /// that do not classify; kStop as a neutral default).
  mobility::MobilityPattern pattern = mobility::MobilityPattern::kStop;
  /// Cluster the MN sits in (invalid when unclustered / not applicable).
  ClusterId cluster;
  /// Distance threshold applied (0 for the ideal reporter).
  double dth = 0.0;
  /// Displacement since the last transmitted LU.
  double moved = 0.0;
};

class LocationUpdateFilter {
 public:
  virtual ~LocationUpdateFilter() = default;

  /// Processes one sampled position of `mn` at time `t`. Samples must be
  /// time-ordered per MN.
  virtual FilterDecision process(MnId mn, SimTime t, geo::Vec2 position) = 0;

  /// Informs the policy that an LU was transmitted out-of-band (e.g. a
  /// bounded-silence override forced it through): implementations move
  /// their suppression anchor so subsequent decisions measure from this
  /// position. Default: no-op.
  virtual void note_forced_transmit(MnId /*mn*/, SimTime /*t*/,
                                    geo::Vec2 /*position*/) {}

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// LUs forwarded to the broker so far.
  [[nodiscard]] virtual std::uint64_t transmitted() const noexcept = 0;
  /// LUs suppressed so far.
  [[nodiscard]] virtual std::uint64_t filtered() const noexcept = 0;
};

}  // namespace mgrid::core

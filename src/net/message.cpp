#include "net/message.h"

namespace mgrid::net {

std::string_view to_string(MessageKind kind) noexcept {
  switch (kind) {
    case MessageKind::kLocationUpdate:
      return "location_update";
    case MessageKind::kKeepAlive:
      return "keep_alive";
    case MessageKind::kJobAssign:
      return "job_assign";
    case MessageKind::kJobResult:
      return "job_result";
    case MessageKind::kDthUpdate:
      return "dth_update";
  }
  return "unknown";
}

}  // namespace mgrid::net

// Wireless gateways: the base stations (roads) and access points
// (buildings) that relay MN traffic into the wired grid (paper Fig. 3).
//
// GatewayNetwork owns one gateway per campus region, associates each MN with
// the gateway covering its position (nearest-region fallback for open
// ground) and counts handovers.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "geo/campus.h"
#include "util/types.h"

namespace mgrid::net {

enum class GatewayKind {
  kAccessPoint,  ///< wireless LAN inside a building
  kBaseStation,  ///< cellular coverage of roads/gates
};

[[nodiscard]] std::string_view to_string(GatewayKind kind) noexcept;

struct WirelessGateway {
  GatewayId id;
  std::string name;
  GatewayKind kind = GatewayKind::kBaseStation;
  RegionId coverage;  ///< region this gateway serves
};

class GatewayNetwork {
 public:
  /// Builds one gateway per region of `campus` (APs for buildings, base
  /// stations for roads and gates). The campus must outlive the network.
  explicit GatewayNetwork(const geo::CampusMap& campus);

  [[nodiscard]] std::size_t gateway_count() const noexcept {
    return gateways_.size();
  }
  [[nodiscard]] const WirelessGateway& gateway(GatewayId id) const;
  [[nodiscard]] const std::vector<WirelessGateway>& gateways() const noexcept {
    return gateways_;
  }
  /// Gateway serving the given region.
  [[nodiscard]] GatewayId gateway_for_region(RegionId region) const;

  /// Gateway that would serve a node at `p` (region containment, else
  /// nearest region).
  [[nodiscard]] GatewayId serving_gateway(geo::Vec2 p) const;

  /// Records the MN's current position; re-associates if it moved into
  /// another gateway's coverage. Returns the serving gateway and whether a
  /// handover happened.
  struct AssociationResult {
    GatewayId gateway;
    bool handover = false;
  };
  AssociationResult update_association(MnId mn, geo::Vec2 p);

  /// Current association of an MN (nullopt before its first update).
  [[nodiscard]] std::optional<GatewayId> association(MnId mn) const;
  /// Number of MNs currently associated with `gw`.
  [[nodiscard]] std::size_t load(GatewayId gw) const;
  [[nodiscard]] std::uint64_t handover_count() const noexcept {
    return handovers_;
  }

 private:
  const geo::CampusMap& campus_;
  std::vector<WirelessGateway> gateways_;
  std::unordered_map<RegionId, GatewayId> by_region_;
  std::unordered_map<MnId, GatewayId> associations_;
  std::uint64_t handovers_ = 0;
};

}  // namespace mgrid::net

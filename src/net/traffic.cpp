#include "net/traffic.h"

#include "obs/metrics.h"

namespace mgrid::net {

namespace {

/// Net telemetry bundle; every accountant instance mirrors into the current
/// registry's cells so exporters see one consistent total per experiment.
struct NetMetrics {
  obs::Counter uplink_messages;
  obs::Counter uplink_bytes;
  obs::Counter downlink_messages;
  obs::Counter downlink_bytes;
  obs::Counter suppressed;

  explicit NetMetrics(obs::MetricsRegistry& registry) {
    uplink_messages =
        registry.counter("mgrid_net_messages_total", {{"direction", "uplink"}},
                         "Messages crossing the wireless gateways");
    uplink_bytes =
        registry.counter("mgrid_net_bytes_total", {{"direction", "uplink"}},
                         "Wire bytes crossing the wireless gateways");
    downlink_messages = registry.counter(
        "mgrid_net_messages_total", {{"direction", "downlink"}},
        "Messages crossing the wireless gateways");
    downlink_bytes =
        registry.counter("mgrid_net_bytes_total", {{"direction", "downlink"}},
                         "Wire bytes crossing the wireless gateways");
    suppressed = registry.counter(
        "mgrid_lu_suppressed_total", {},
        "Location updates suppressed by the distance filter");
  }
};

NetMetrics& net_metrics() { return obs::instruments<NetMetrics>(); }

}  // namespace

TrafficAccountant::TrafficAccountant(Duration bucket_width)
    : uplink_series_(bucket_width) {}

void TrafficAccountant::record(SimTime t, GatewayId gateway,
                               Direction direction, const Message& message) {
  record_bytes(t, gateway, direction, message.wire_bytes());
}

void TrafficAccountant::record_bytes(SimTime t, GatewayId gateway,
                                     Direction direction,
                                     std::size_t wire_bytes) {
  if (direction == Direction::kUplink) {
    uplink_.add(wire_bytes);
    per_gateway_up_[gateway].add(wire_bytes);
    uplink_series_.add_count(t);
    if (obs::enabled()) {
      net_metrics().uplink_messages.inc();
      net_metrics().uplink_bytes.inc(wire_bytes);
    }
  } else {
    downlink_.add(wire_bytes);
    per_gateway_down_[gateway].add(wire_bytes);
    if (obs::enabled()) {
      net_metrics().downlink_messages.inc();
      net_metrics().downlink_bytes.inc(wire_bytes);
    }
  }
}

void TrafficAccountant::record_suppressed(SimTime /*t*/) noexcept {
  ++suppressed_;
  if (obs::enabled()) net_metrics().suppressed.inc();
}

const TrafficCounters& TrafficAccountant::total(
    Direction direction) const noexcept {
  return direction == Direction::kUplink ? uplink_ : downlink_;
}

TrafficCounters TrafficAccountant::gateway_total(GatewayId gateway,
                                                 Direction direction) const {
  const auto& map = direction == Direction::kUplink ? per_gateway_up_
                                                    : per_gateway_down_;
  auto it = map.find(gateway);
  return it == map.end() ? TrafficCounters{} : it->second;
}

double TrafficAccountant::transmission_rate() const noexcept {
  const std::uint64_t sent = uplink_.messages;
  const std::uint64_t attempted = sent + suppressed_;
  if (attempted == 0) return 1.0;
  return static_cast<double>(sent) / static_cast<double>(attempted);
}

}  // namespace mgrid::net

#include "net/traffic.h"

namespace mgrid::net {

TrafficAccountant::TrafficAccountant(Duration bucket_width)
    : uplink_series_(bucket_width) {}

void TrafficAccountant::record(SimTime t, GatewayId gateway,
                               Direction direction, const Message& message) {
  record_bytes(t, gateway, direction, message.wire_bytes());
}

void TrafficAccountant::record_bytes(SimTime t, GatewayId gateway,
                                     Direction direction,
                                     std::size_t wire_bytes) {
  if (direction == Direction::kUplink) {
    uplink_.add(wire_bytes);
    per_gateway_up_[gateway].add(wire_bytes);
    uplink_series_.add_count(t);
  } else {
    downlink_.add(wire_bytes);
    per_gateway_down_[gateway].add(wire_bytes);
  }
}

void TrafficAccountant::record_suppressed(SimTime /*t*/) noexcept {
  ++suppressed_;
}

const TrafficCounters& TrafficAccountant::total(
    Direction direction) const noexcept {
  return direction == Direction::kUplink ? uplink_ : downlink_;
}

TrafficCounters TrafficAccountant::gateway_total(GatewayId gateway,
                                                 Direction direction) const {
  const auto& map = direction == Direction::kUplink ? per_gateway_up_
                                                    : per_gateway_down_;
  auto it = map.find(gateway);
  return it == map.end() ? TrafficCounters{} : it->second;
}

double TrafficAccountant::transmission_rate() const noexcept {
  const std::uint64_t sent = uplink_.messages;
  const std::uint64_t attempted = sent + suppressed_;
  if (attempted == 0) return 1.0;
  return static_cast<double>(sent) / static_cast<double>(attempted);
}

}  // namespace mgrid::net

#include "net/bursty_channel.h"

#include <stdexcept>

#include "obs/eventlog.h"

namespace mgrid::net {

GilbertElliottChannel::GilbertElliottChannel(Params params) : params_(params) {
  auto in_unit = [](double p) { return p >= 0.0 && p <= 1.0; };
  if (!in_unit(params.p_enter_bad) || !in_unit(params.loss_good) ||
      !in_unit(params.loss_bad)) {
    throw std::invalid_argument(
        "GilbertElliottChannel: probabilities must be in [0, 1]");
  }
  if (!(params.p_exit_bad > 0.0) || params.p_exit_bad > 1.0) {
    throw std::invalid_argument(
        "GilbertElliottChannel: p_exit_bad must be in (0, 1]");
  }
}

bool GilbertElliottChannel::deliver(MnId link, util::RngStream& rng) {
  bool& bad = bad_state_[link];
  if (bad) {
    if (rng.chance(params_.p_exit_bad)) bad = false;
  } else {
    if (rng.chance(params_.p_enter_bad)) {
      bad = true;
      ++transitions_to_bad_;
    }
  }
  const double loss = bad ? params_.loss_bad : params_.loss_good;
  const bool delivered = !rng.chance(loss);
  if (obs::eventlog_enabled()) obs::evt::channel_outcome(delivered);
  return delivered;
}

bool GilbertElliottChannel::in_bad_state(MnId link) const noexcept {
  auto it = bad_state_.find(link);
  return it != bad_state_.end() && it->second;
}

double GilbertElliottChannel::stationary_bad_probability() const noexcept {
  const double total = params_.p_enter_bad + params_.p_exit_bad;
  if (total == 0.0) return 0.0;
  return params_.p_enter_bad / total;
}

double GilbertElliottChannel::average_loss_rate() const noexcept {
  const double p_bad = stationary_bad_probability();
  return p_bad * params_.loss_bad + (1.0 - p_bad) * params_.loss_good;
}

}  // namespace mgrid::net

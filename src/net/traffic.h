// Traffic accounting.
//
// Counts messages and bytes globally, per gateway and per second; the
// Fig. 4/5/6 benches read their series from here.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "net/message.h"
#include "stats/time_series.h"
#include "util/types.h"

namespace mgrid::net {

enum class Direction { kUplink, kDownlink };

struct TrafficCounters {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;

  void add(std::size_t wire_bytes) noexcept {
    ++messages;
    bytes += wire_bytes;
  }
};

class TrafficAccountant {
 public:
  /// `bucket_width` of the per-second series (default: 1 s like the paper).
  explicit TrafficAccountant(Duration bucket_width = 1.0);

  /// Records one message crossing a gateway at time t.
  void record(SimTime t, GatewayId gateway, Direction direction,
              const Message& message);
  /// Records a raw byte count (used when only sizes are known).
  void record_bytes(SimTime t, GatewayId gateway, Direction direction,
                    std::size_t wire_bytes);
  /// Counts a message that was suppressed (filtered) — not added to byte
  /// totals, tracked for reduction reporting.
  void record_suppressed(SimTime t) noexcept;

  [[nodiscard]] const TrafficCounters& total(Direction direction) const noexcept;
  [[nodiscard]] TrafficCounters gateway_total(GatewayId gateway,
                                              Direction direction) const;
  [[nodiscard]] std::uint64_t suppressed() const noexcept {
    return suppressed_;
  }

  /// Per-bucket uplink message counts (the Fig. 4 series).
  [[nodiscard]] const stats::TimeSeries& uplink_series() const noexcept {
    return uplink_series_;
  }
  /// Fraction of would-be messages actually sent (sent/(sent+suppressed));
  /// 1.0 when nothing was ever suppressed or sent.
  [[nodiscard]] double transmission_rate() const noexcept;

 private:
  stats::TimeSeries uplink_series_;
  TrafficCounters uplink_;
  TrafficCounters downlink_;
  std::unordered_map<GatewayId, TrafficCounters> per_gateway_up_;
  std::unordered_map<GatewayId, TrafficCounters> per_gateway_down_;
  std::uint64_t suppressed_ = 0;
};

}  // namespace mgrid::net

// Radio energy model and device battery (extension; paper §1 motivates the
// mobile grid's "low battery capacity" constraint).
//
// Costs follow the classic first-order radio model: a fixed per-message
// electronics cost plus a per-byte amplifier cost for transmission, and a
// smaller per-byte cost for reception. Device classes (laptop / PDA / cell
// phone) differ in battery capacity, not radio cost — a laptop simply lasts
// longer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "mobility/mobility_model.h"

namespace mgrid::net {

struct EnergyParams {
  /// Fixed cost of powering the radio for one transmission, joules.
  double tx_base_j = 50e-6;
  /// Per-byte transmission cost, joules.
  double tx_per_byte_j = 1e-6;
  /// Fixed cost of receiving one message, joules.
  double rx_base_j = 25e-6;
  /// Per-byte reception cost, joules.
  double rx_per_byte_j = 0.5e-6;
};

class EnergyModel {
 public:
  /// Validates (all costs must be >= 0).
  explicit EnergyModel(EnergyParams params = {});

  [[nodiscard]] double tx_cost_j(std::size_t wire_bytes) const noexcept {
    return params_.tx_base_j +
           params_.tx_per_byte_j * static_cast<double>(wire_bytes);
  }
  [[nodiscard]] double rx_cost_j(std::size_t wire_bytes) const noexcept {
    return params_.rx_base_j +
           params_.rx_per_byte_j * static_cast<double>(wire_bytes);
  }
  [[nodiscard]] const EnergyParams& params() const noexcept { return params_; }

 private:
  EnergyParams params_;
};

/// Battery capacity by device class, joules (order-of-magnitude values:
/// a phone's communication budget is far smaller than a laptop's).
[[nodiscard]] double default_battery_capacity_j(
    mobility::DeviceType device) noexcept;

class Battery {
 public:
  /// `capacity_j` must be > 0.
  explicit Battery(double capacity_j);

  /// Draws `joules` from the battery; clamps at 0. Returns false once the
  /// battery is exhausted (the draw that empties it still succeeds).
  bool drain(double joules);

  [[nodiscard]] double capacity_j() const noexcept { return capacity_; }
  [[nodiscard]] double remaining_j() const noexcept { return remaining_; }
  [[nodiscard]] double consumed_j() const noexcept {
    return capacity_ - remaining_;
  }
  [[nodiscard]] double remaining_fraction() const noexcept {
    return remaining_ / capacity_;
  }
  [[nodiscard]] bool empty() const noexcept { return remaining_ <= 0.0; }

 private:
  double capacity_;
  double remaining_;
};

}  // namespace mgrid::net

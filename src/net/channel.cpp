#include "net/channel.h"

#include <stdexcept>

#include "obs/eventlog.h"

namespace mgrid::net {

ChannelModel::ChannelModel(ChannelParams params) : params_(params) {
  if (params.loss_probability < 0.0 || params.loss_probability > 1.0) {
    throw std::invalid_argument("ChannelModel: loss_probability not in [0,1]");
  }
  if (params.base_latency < 0.0) {
    throw std::invalid_argument("ChannelModel: negative base_latency");
  }
  if (params.jitter < 0.0) {
    throw std::invalid_argument("ChannelModel: negative jitter");
  }
}

bool ChannelModel::deliver(util::RngStream& rng) const {
  const bool delivered =
      params_.loss_probability == 0.0 || !rng.chance(params_.loss_probability);
  if (obs::eventlog_enabled()) obs::evt::channel_outcome(delivered);
  return delivered;
}

Duration ChannelModel::latency(util::RngStream& rng) const {
  Duration latency = params_.base_latency;
  if (params_.jitter > 0.0) latency += rng.uniform(0.0, params_.jitter);
  return latency;
}

}  // namespace mgrid::net

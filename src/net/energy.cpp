#include "net/energy.h"

#include <algorithm>
#include <stdexcept>

namespace mgrid::net {

EnergyModel::EnergyModel(EnergyParams params) : params_(params) {
  if (params.tx_base_j < 0.0 || params.tx_per_byte_j < 0.0 ||
      params.rx_base_j < 0.0 || params.rx_per_byte_j < 0.0) {
    throw std::invalid_argument("EnergyModel: costs must be >= 0");
  }
}

double default_battery_capacity_j(mobility::DeviceType device) noexcept {
  switch (device) {
    case mobility::DeviceType::kLaptop:
      return 20.0;  // generous communication budget
    case mobility::DeviceType::kPda:
      return 5.0;
    case mobility::DeviceType::kCellPhone:
      return 2.0;
  }
  return 2.0;
}

Battery::Battery(double capacity_j)
    : capacity_(capacity_j), remaining_(capacity_j) {
  if (!(capacity_j > 0.0)) {
    throw std::invalid_argument("Battery: capacity must be > 0");
  }
}

bool Battery::drain(double joules) {
  if (joules < 0.0) {
    throw std::invalid_argument("Battery::drain: negative draw");
  }
  if (remaining_ <= 0.0) return false;
  remaining_ = std::max(0.0, remaining_ - joules);
  return true;
}

}  // namespace mgrid::net

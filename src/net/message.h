// Message taxonomy of the mobile grid.
//
// Everything exchanged between mobile nodes, gateways, the ADF and the grid
// broker is a typed message with an on-air size, so the benches can report
// traffic in bytes as well as in location-update counts. Messages derive
// from sim::InteractionPayload and flow through the HLA-lite federation.
#pragma once

#include <cstddef>
#include <string_view>

#include "geo/vec2.h"
#include "sim/interaction.h"
#include "util/types.h"

namespace mgrid::net {

/// Federation topics (interaction class names in HLA terms).
inline constexpr std::string_view kTopicLocationUpdate = "mn.location_update";
inline constexpr std::string_view kTopicFilteredUpdate = "adf.location_update";
inline constexpr std::string_view kTopicJobAssign = "broker.job_assign";
inline constexpr std::string_view kTopicJobResult = "mn.job_result";
inline constexpr std::string_view kTopicDthUpdate = "adf.dth_update";

/// Fixed per-message envelope cost on the wireless link (MAC + IP + UDP, a
/// representative 802.11/cellular figure).
inline constexpr std::size_t kHeaderBytes = 40;

enum class MessageKind {
  kLocationUpdate,
  kKeepAlive,
  kJobAssign,
  kJobResult,
  kDthUpdate,
};

[[nodiscard]] std::string_view to_string(MessageKind kind) noexcept;

struct Message : sim::InteractionPayload {
  [[nodiscard]] virtual MessageKind kind() const noexcept = 0;
  /// Payload size excluding the envelope.
  [[nodiscard]] virtual std::size_t payload_bytes() const noexcept = 0;
  [[nodiscard]] std::size_t wire_bytes() const noexcept {
    return payload_bytes() + kHeaderBytes;
  }
};

/// A location update (LU): the MN's sampled position and velocity.
struct LocationUpdate final : Message {
  MnId mn;
  geo::Vec2 position;
  geo::Vec2 velocity;
  SimTime sampled_at = 0.0;
  /// Gateway that relayed the LU (set by the gateway layer).
  GatewayId via_gateway;
  /// Remaining battery fraction the device piggybacks on every LU
  /// (resource brokers schedule around drained devices).
  double battery_fraction = 1.0;

  LocationUpdate() = default;
  LocationUpdate(MnId mn_id, geo::Vec2 pos, geo::Vec2 vel, SimTime t)
      : mn(mn_id), position(pos), velocity(vel), sampled_at(t) {}

  [[nodiscard]] MessageKind kind() const noexcept override {
    return MessageKind::kLocationUpdate;
  }
  [[nodiscard]] std::size_t payload_bytes() const noexcept override {
    // id(4) + position(16) + velocity(16) + timestamp(8) + battery(1)
    return 45;
  }
};

/// Periodic liveness beacon (sent when a node has nothing to report; an
/// optional extension, off in the paper-reproduction experiments).
struct KeepAlive final : Message {
  MnId mn;
  SimTime sent_at = 0.0;

  [[nodiscard]] MessageKind kind() const noexcept override {
    return MessageKind::kKeepAlive;
  }
  [[nodiscard]] std::size_t payload_bytes() const noexcept override {
    return 12;  // id(4) + timestamp(8)
  }
};

/// Grid job dispatched by the broker to a selected MN.
struct JobAssign final : Message {
  JobId job;
  MnId assignee;
  /// Abstract work units (translated to compute seconds by the device).
  double work_units = 0.0;
  /// Where the job's data lives (locality metric: the broker picked this
  /// node because it believed it was near the site).
  geo::Vec2 site;

  [[nodiscard]] MessageKind kind() const noexcept override {
    return MessageKind::kJobAssign;
  }
  [[nodiscard]] std::size_t payload_bytes() const noexcept override {
    return 32;  // job(4) + assignee(4) + work(8) + site(16)
  }
};

/// ADF -> MN downlink: the node's new distance threshold (device-side
/// filtering extension).
struct DthUpdate final : Message {
  MnId mn;
  double dth = 0.0;

  DthUpdate() = default;
  DthUpdate(MnId mn_id, double threshold) : mn(mn_id), dth(threshold) {}

  [[nodiscard]] MessageKind kind() const noexcept override {
    return MessageKind::kDthUpdate;
  }
  [[nodiscard]] std::size_t payload_bytes() const noexcept override {
    return 12;  // id(4) + dth(8)
  }
};

/// Job completion report from an MN.
struct JobResult final : Message {
  JobId job;
  MnId worker;
  bool success = false;
  SimTime completed_at = 0.0;

  [[nodiscard]] MessageKind kind() const noexcept override {
    return MessageKind::kJobResult;
  }
  [[nodiscard]] std::size_t payload_bytes() const noexcept override {
    return 17;  // job(4) + worker(4) + success(1) + timestamp(8)
  }
};

}  // namespace mgrid::net

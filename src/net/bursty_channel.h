// Gilbert-Elliott bursty wireless channel (extension; paper §1 motivates
// the mobile grid's "frequent disconnectivity" constraint).
//
// Each MN's uplink is a two-state Markov chain: a Good state with low loss
// and a Bad state (deep fade / doorway / elevator) with high loss. The
// chain advances once per sample, so the mean outage length is
// 1 / p_exit_bad samples. Uniform loss with the same *average* rate spreads
// the damage thinly; bursty loss produces multi-second blackouts — exactly
// what a location estimator must bridge.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "util/rng.h"
#include "util/types.h"

namespace mgrid::net {

class GilbertElliottChannel {
 public:
  struct Params {
    /// P(Good -> Bad) per sample, in [0, 1]. 0 disables the bad state.
    double p_enter_bad = 0.0;
    /// P(Bad -> Good) per sample, in (0, 1].
    double p_exit_bad = 0.25;
    /// Loss probability while Good, in [0, 1].
    double loss_good = 0.0;
    /// Loss probability while Bad, in [0, 1].
    double loss_bad = 1.0;
  };

  /// Validates parameters (throws std::invalid_argument).
  explicit GilbertElliottChannel(Params params);

  /// Advances `link`'s channel state one sample and draws delivery.
  [[nodiscard]] bool deliver(MnId link, util::RngStream& rng);

  /// Whether the link is currently in the Bad state (links start Good).
  [[nodiscard]] bool in_bad_state(MnId link) const noexcept;

  /// Long-run fraction of time a link spends Bad:
  /// p_enter / (p_enter + p_exit).
  [[nodiscard]] double stationary_bad_probability() const noexcept;
  /// Long-run average loss rate.
  [[nodiscard]] double average_loss_rate() const noexcept;

  [[nodiscard]] const Params& params() const noexcept { return params_; }
  [[nodiscard]] std::uint64_t transitions_to_bad() const noexcept {
    return transitions_to_bad_;
  }

 private:
  Params params_;
  std::unordered_map<MnId, bool> bad_state_;
  std::uint64_t transitions_to_bad_ = 0;
};

}  // namespace mgrid::net

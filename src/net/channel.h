// Wireless channel model: loss and latency.
//
// The paper's simulation assumes lossless, immediate LU delivery; the
// defaults reproduce that. The loss/latency knobs are used by the
// failure-injection tests and the robustness ablation (what happens to the
// broker's location error when LUs are dropped in flight).
#pragma once

#include "util/rng.h"
#include "util/types.h"

namespace mgrid::net {

struct ChannelParams {
  /// Probability an uplink message is lost, in [0, 1].
  double loss_probability = 0.0;
  /// Fixed one-way latency, seconds (>= 0).
  Duration base_latency = 0.0;
  /// Uniform extra latency in [0, jitter] seconds (>= 0).
  Duration jitter = 0.0;
};

class ChannelModel {
 public:
  /// Validates parameters (throws std::invalid_argument).
  explicit ChannelModel(ChannelParams params);

  /// Perfect channel (paper default).
  ChannelModel() : ChannelModel(ChannelParams{}) {}

  /// Draws whether a message survives the air interface.
  [[nodiscard]] bool deliver(util::RngStream& rng) const;
  /// Draws the one-way latency for a delivered message.
  [[nodiscard]] Duration latency(util::RngStream& rng) const;

  [[nodiscard]] const ChannelParams& params() const noexcept {
    return params_;
  }
  [[nodiscard]] bool perfect() const noexcept {
    return params_.loss_probability == 0.0 && params_.base_latency == 0.0 &&
           params_.jitter == 0.0;
  }

 private:
  ChannelParams params_;
};

}  // namespace mgrid::net

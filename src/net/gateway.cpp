#include "net/gateway.h"

#include <stdexcept>

#include "obs/eventlog.h"
#include "obs/metrics.h"

namespace mgrid::net {

namespace {

struct GatewayMetrics {
  obs::Counter handovers;
  obs::Gauge associations;

  explicit GatewayMetrics(obs::MetricsRegistry& registry) {
    handovers = registry.counter("mgrid_net_handovers_total", {},
                                 "MN re-associations between gateways");
    associations = registry.gauge("mgrid_net_associations", {},
                                  "MNs currently associated with a gateway");
  }
};

GatewayMetrics& gateway_metrics() {
  return obs::instruments<GatewayMetrics>();
}

}  // namespace

std::string_view to_string(GatewayKind kind) noexcept {
  switch (kind) {
    case GatewayKind::kAccessPoint:
      return "access_point";
    case GatewayKind::kBaseStation:
      return "base_station";
  }
  return "unknown";
}

GatewayNetwork::GatewayNetwork(const geo::CampusMap& campus)
    : campus_(campus) {
  if (campus.region_count() == 0) {
    throw std::invalid_argument("GatewayNetwork: campus has no regions");
  }
  for (const geo::Region& region : campus.regions()) {
    WirelessGateway gw;
    gw.id = GatewayId{static_cast<GatewayId::value_type>(gateways_.size())};
    gw.kind = region.is_building() ? GatewayKind::kAccessPoint
                                   : GatewayKind::kBaseStation;
    gw.name = (gw.kind == GatewayKind::kAccessPoint ? "ap." : "bs.") +
              region.name();
    gw.coverage = region.id();
    by_region_.emplace(region.id(), gw.id);
    gateways_.push_back(std::move(gw));
  }
}

const WirelessGateway& GatewayNetwork::gateway(GatewayId id) const {
  if (!id.valid() || id.value() >= gateways_.size()) {
    throw std::out_of_range("GatewayNetwork::gateway: bad id");
  }
  return gateways_[id.value()];
}

GatewayId GatewayNetwork::gateway_for_region(RegionId region) const {
  auto it = by_region_.find(region);
  if (it == by_region_.end()) {
    throw std::out_of_range("GatewayNetwork::gateway_for_region: unknown");
  }
  return it->second;
}

GatewayId GatewayNetwork::serving_gateway(geo::Vec2 p) const {
  const std::optional<RegionId> region = campus_.locate(p);
  return gateway_for_region(region ? *region : campus_.nearest_region(p));
}

GatewayNetwork::AssociationResult GatewayNetwork::update_association(
    MnId mn, geo::Vec2 p) {
  const GatewayId serving = serving_gateway(p);
  auto [it, inserted] = associations_.try_emplace(mn, serving);
  AssociationResult result{serving, false};
  if (inserted) {
    if (obs::enabled()) {
      gateway_metrics().associations.set(
          static_cast<double>(associations_.size()));
    }
  } else if (it->second != serving) {
    it->second = serving;
    ++handovers_;
    result.handover = true;
    if (obs::enabled()) gateway_metrics().handovers.inc();
  }
  if (obs::eventlog_enabled()) {
    obs::evt::gateway(static_cast<std::int64_t>(serving.value()),
                      result.handover);
  }
  return result;
}

std::optional<GatewayId> GatewayNetwork::association(MnId mn) const {
  auto it = associations_.find(mn);
  if (it == associations_.end()) return std::nullopt;
  return it->second;
}

std::size_t GatewayNetwork::load(GatewayId gw) const {
  std::size_t count = 0;
  for (const auto& [mn, assigned] : associations_) {
    if (assigned == gw) ++count;
  }
  return count;
}

}  // namespace mgrid::net

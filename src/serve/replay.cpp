#include "serve/replay.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>
#include <variant>

#include "estimation/horizon_clamped.h"
#include "serve/wire.h"
#include "util/json.h"

namespace mgrid::serve {

ReplayLog load_eventlog(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    throw std::runtime_error("load_eventlog: cannot read " + path);
  }
  std::string line;
  if (!std::getline(file, line)) {
    throw std::runtime_error("load_eventlog: empty document " + path);
  }
  const util::JsonValue header = util::JsonValue::parse(line);
  if (header.at("schema").as_string() != "mgrid-eventlog-v1") {
    throw std::runtime_error("load_eventlog: unsupported schema '" +
                             header.at("schema").as_string() + "'");
  }
  ReplayLog log;
  log.records = static_cast<std::uint64_t>(header.at("records").as_double());
  log.run.sample_every =
      static_cast<std::uint32_t>(header.number_or("sample_every", 1.0));
  log.run.dropped =
      static_cast<std::uint64_t>(header.number_or("dropped", 0.0));
  const util::JsonValue& run = header.at("run");
  log.run.duration = run.at("duration").as_double();
  log.run.sample_period = run.at("sample_period").as_double();
  log.run.seed = static_cast<std::uint64_t>(run.number_or("seed", 0.0));
  log.run.filter = run.at("filter").as_string();
  log.run.estimator = run.at("estimator").as_string();
  log.run.estimator_alpha = run.number_or("estimator_alpha", 0.0);
  log.run.forecast_horizon = run.number_or("forecast_horizon", 0.0);
  if (const util::JsonValue* mm = run.find("map_match")) {
    log.run.map_match = mm->as_bool();
  }
  log.run.pipeline_depth =
      static_cast<std::uint32_t>(run.number_or("pipeline_depth", 0.0));

  while (std::getline(file, line)) {
    if (line.empty()) continue;
    const util::JsonValue record = util::JsonValue::parse(line);
    if (record.find("broker_rx") == nullptr) continue;
    ReplayLu lu;
    lu.mn = static_cast<std::uint32_t>(record.at("mn").as_double());
    lu.t = record.at("t").as_double();
    lu.x = record.at("x").as_double();
    lu.y = record.at("y").as_double();
    lu.vx = record.number_or("vx", 0.0);
    lu.vy = record.number_or("vy", 0.0);
    log.lus.push_back(lu);
  }
  return log;
}

bool replay_is_exact(const ReplayLog& log, std::string* why) {
  const auto fail = [&](const char* reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  if (!(log.run.duration > 0.0) || !(log.run.sample_period > 0.0)) {
    return fail("run header lacks duration/sample_period");
  }
  if (log.run.sample_every > 1) {
    return fail("log was sampled (sample_every > 1)");
  }
  if (log.run.dropped > 0) {
    return fail("log dropped records at capacity");
  }
  if (log.run.map_match) {
    return fail("map-matched estimator needs the campus map");
  }
  if (log.run.pipeline_depth == 0) {
    return fail("log predates pipeline_depth; arrival ticks unknown");
  }
  if (why != nullptr) why->clear();
  return true;
}

std::unique_ptr<estimation::LocationEstimator> make_replay_estimator(
    const ReplayRunInfo& run) {
  if (run.estimator.empty() || run.estimator == "none") return nullptr;
  if (run.map_match) {
    throw std::runtime_error(
        "make_replay_estimator: map-matched runs cannot be replayed "
        "(the eventlog does not carry the campus map)");
  }
  std::unique_ptr<estimation::LocationEstimator> estimator =
      estimation::make_estimator(run.estimator, run.estimator_alpha,
                                 run.sample_period);
  if (run.forecast_horizon > 0.0) {
    estimator = std::make_unique<estimation::HorizonClampedEstimator>(
        std::move(estimator), run.forecast_horizon);
  }
  return estimator;
}

ReplayReport replay_eventlog(const ReplayLog& log, ShardedDirectory& directory,
                             IngestPipeline& pipeline) {
  ReplayReport report;
  if (!(log.run.sample_period > 0.0)) {
    throw std::runtime_error("replay_eventlog: sample_period must be > 0");
  }
  const double dt = log.run.sample_period;
  const auto cycles =
      static_cast<std::int64_t>(std::llround(log.run.duration / dt));
  if (cycles <= 0) return report;
  report.ticks = static_cast<std::size_t>(cycles);

  // Bucket LUs by broker-arrival tick (sample tick + pipeline depth).
  std::vector<std::vector<const ReplayLu*>> by_tick(
      static_cast<std::size_t>(cycles) + 1);
  for (const ReplayLu& lu : log.lus) {
    std::int64_t k =
        std::llround(lu.t / dt) + static_cast<std::int64_t>(
                                      log.run.pipeline_depth);
    k = std::max<std::int64_t>(1, std::min(k, cycles));
    by_tick[static_cast<std::size_t>(k)].push_back(&lu);
  }

  std::vector<std::uint8_t> frame;
  std::uint32_t seq = 0;
  for (std::int64_t k = 1; k <= cycles; ++k) {
    for (const ReplayLu* lu : by_tick[static_cast<std::size_t>(k)]) {
      // Round-trip through the wire codec: the replay exercises the same
      // decode path a network ingester would run.
      wire::LuMsg msg;
      msg.mn = lu->mn;
      msg.seq = seq++;
      msg.t = lu->t;
      msg.x = lu->x;
      msg.y = lu->y;
      msg.vx = lu->vx;
      msg.vy = lu->vy;
      frame.clear();
      wire::encode(frame, msg);
      const wire::Decoded decoded = wire::decode_frame(frame);
      if (!decoded.ok() ||
          !std::holds_alternative<wire::LuMsg>(decoded.msg) ||
          !pipeline.submit(std::get<wire::LuMsg>(decoded.msg))) {
        ++report.lus_dropped_wire;
        continue;
      }
      ++report.lus_submitted;
    }
    pipeline.flush();
    // Same multiplicative grant times the federation used (t0 = 0).
    report.estimates +=
        directory.advance_estimates(static_cast<double>(k) * dt);
  }
  return report;
}

}  // namespace mgrid::serve

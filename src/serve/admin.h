// Admin/observability surface for the serving layer.
//
// Binds an obs::http::Server to the operational state of a running broker
// service and exposes the scrape endpoints a production location service
// needs:
//
//   GET /metrics  Prometheus text exposition of the bound MetricsRegistry
//   GET /healthz  liveness: 200 "ok" while the process serves requests
//   GET /readyz   readiness: 200 once ingest is caught up (pipeline
//                 backlog at or under ready_max_pending and the driver's
//                 ready predicate, when set, agrees); 503 with the reason
//                 otherwise
//   GET /statusz  JSON snapshot (mgrid-statusz-v1): build info, process
//                 role, uptime, directory shard occupancy,
//                 ingest/backpressure counters and per-source queue depths,
//                 SLO report, a cluster block on router/shard/follower
//                 nodes, plus any driver-provided progress fields
//   GET /varz     raw counter dump, one `name{labels} value` per line
//   GET /clusterz federated cluster view on routers (mgrid-clusterz-v1
//                 JSON; ?format=prom re-exports every scraped target's
//                 metrics with shard=/role= labels) — present only when a
//                 FederationCollector is hooked in
//   GET /tracez   latency attribution (mgrid-tracez-v1): per-SLI histogram
//                 exemplars and the top-K slowest sampled LU spans with
//                 their queue/wal/apply/visible stage breakdown; ?k=N
//                 bounds the slowest list
//   GET /profilez runs the in-process sampling CPU profiler for
//                 ?seconds=N (default 2, clamped to [0.1, 30]) and returns
//                 collapsed "folded" stacks as text/plain — feed straight
//                 into flamegraph.pl. 503 while a profile is already
//                 running; blocks one HTTP worker for the duration
//   GET /quitz    requests driver shutdown (fires the on_quit hook; the
//                 driver loop exits and stops the server — /quitz never
//                 blocks on the shutdown itself)
//
// Every hook is optional: a driver with no pipeline simply loses the
// ingest block and readiness falls back to the ready predicate (or always
// ready). handle() is exposed directly so tests can exercise routing
// without sockets.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "obs/http.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/span.h"
#include "serve/directory.h"
#include "serve/ingest.h"
#include "serve/wal.h"
#include "util/json.h"

namespace mgrid::serve {

struct AdminOptions {
  obs::http::ServerOptions http;
  /// Readiness: the pipeline is "caught up" while pending() <= this.
  std::uint64_t ready_max_pending = 1024;
  /// Free-form build/version string surfaced in /statusz.
  std::string build_info = "mgrid";
};

struct AdminHooks {
  /// Registry scraped by /metrics and /varz; nullptr = the registry that
  /// is current on the constructing thread.
  obs::MetricsRegistry* registry = nullptr;
  ShardedDirectory* directory = nullptr;    ///< Optional.
  IngestPipeline* pipeline = nullptr;       ///< Optional.
  obs::SloMonitor* slo = nullptr;           ///< Optional.
  WalWriter* wal = nullptr;                 ///< Optional: /statusz wal block.
  /// Optional: /tracez exemplars + slowest spans, /statusz spans block.
  obs::SpanTracer* spans = nullptr;
  /// Current sim-time, for the /statusz staleness block (with directory).
  std::function<double()> sim_now;
  /// Extra readiness predicate; fill `*reason` when returning false.
  std::function<bool(std::string* reason)> ready;
  /// Appends driver-specific fields inside /statusz's "driver" object.
  std::function<void(util::JsonWriter&)> extra_status;
  /// Appends cluster-plane fields (ring version, shard epochs,
  /// forward/merge counters) inside /statusz's "cluster" object — wired by
  /// router/shard/follower drivers (see cluster/router.h). Absent on
  /// standalone nodes, and so is the block.
  std::function<void(util::JsonWriter&)> cluster_status;
  /// Serves GET /clusterz (the router's federation plane — see
  /// cluster/federation.h). Absent => /clusterz is 404.
  std::function<obs::http::Response(const obs::http::Request&)> clusterz;
  /// Fired by /quitz (e.g. set an atomic the driver loop polls).
  std::function<void()> on_quit;
};

class AdminServer {
 public:
  AdminServer(AdminOptions options, AdminHooks hooks);
  ~AdminServer();  ///< Implies stop().

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Binds and starts serving. Throws std::runtime_error on bind failure.
  void start();
  /// Graceful shutdown (idempotent).
  void stop();

  /// Swaps the optional state hooks while serving — a recovering driver
  /// starts the admin plane first (so /readyz can report 503 "recovering")
  /// and attaches the rebuilt directory, pipeline and WAL once recovery
  /// completes. Thread-safe with respect to handle().
  void rebind(ShardedDirectory* directory, IngestPipeline* pipeline,
              WalWriter* wal);

  [[nodiscard]] std::uint16_t port() const noexcept;
  [[nodiscard]] bool running() const noexcept;
  [[nodiscard]] obs::http::ServerStats http_stats() const;

  /// Route one request (the HTTP server's handler; public for tests).
  [[nodiscard]] obs::http::Response handle(const obs::http::Request& request);

 private:
  [[nodiscard]] obs::http::Response metrics() const;
  [[nodiscard]] obs::http::Response varz() const;
  [[nodiscard]] obs::http::Response readyz() const;
  [[nodiscard]] obs::http::Response statusz() const;
  [[nodiscard]] obs::http::Response tracez(
      const obs::http::Request& request) const;
  [[nodiscard]] obs::http::Response profilez(
      const obs::http::Request& request) const;
  [[nodiscard]] bool is_ready(std::string* reason) const;

  AdminOptions options_;
  AdminHooks hooks_;
  /// Guards the rebindable hook pointers (directory/pipeline/wal) against
  /// concurrent handle() calls.
  mutable std::mutex rebind_mutex_;
  obs::http::Server server_;
  std::chrono::steady_clock::time_point started_;
  std::atomic<std::uint64_t> quit_requests_{0};
};

}  // namespace mgrid::serve

// Batched LU ingestion pipeline for the serving layer.
//
// Producers submit decoded wire::LuMsg frames; each LU is routed to one of
// `sources` MPSC queues by mn % sources, and each queue is owned by exactly
// one worker (source % workers), so per-MN arrival order is preserved for
// ANY worker count — replaying a log with 1 worker or 8 reaches the same
// directory state. Workers drain their queues in batches, group each batch
// by destination shard and apply it under one shard lock per group, which
// amortises locking at high rates.
//
// flush() is the barrier the replay driver uses between simulated ticks:
// it returns once every LU submitted before the call has been applied.
//
// Backpressure telemetry (recorded into the registry that is current on the
// constructing thread; worker threads inherit it): per-source queue-depth
// gauges (mgrid_ingest_queue_depth{source=...}), an enqueue-to-apply
// latency histogram, a batch-size histogram and accept/reject counters
// (mgrid_ingest_rejected_total{reason="full"|"stale"}). The bounded-queue
// mode (queue_capacity > 0) turns overload into counted rejects instead of
// unbounded memory growth. All of it is gated on obs::enabled(): the
// disabled cost per submit is one relaxed atomic load.
//
// Latency attribution (options.spans): deterministically sampled LUs carry
// a per-stage span — source-queue wait, WAL append, directory apply,
// visible-to-lookup — recorded into an obs::SpanTracer under the
// "update_latency" SLI. Sampling is a hash of (source, mn, seq), so any
// worker count selects the byte-identical span set. The stage values tile
// the span: their sum equals its total exactly. LUs submitted through
// submit_traced() arrived with a cluster trace context: they keep the
// upstream trace id and additionally carry the router-batch and network
// stages computed from the propagated timestamps.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "obs/span.h"
#include "serve/directory.h"
#include "serve/wal.h"
#include "serve/wire.h"

namespace mgrid::serve {

struct IngestOptions {
  /// MPSC queue count (>= 1). LUs route to queue mn % sources.
  std::size_t sources = 8;
  /// Worker threads (>= 1). Queue q is owned by worker q % workers.
  std::size_t workers = 1;
  /// Max LUs a worker takes from one queue per drain.
  std::size_t batch_size = 256;
  /// Per-queue capacity; submits beyond it are rejected (0 = unbounded).
  std::size_t queue_capacity = 0;
  /// Start with workers parked: producers can pre-fill the queues, then
  /// resume() releases the workers. Lets benchmarks time pure drain
  /// throughput without the producer in the loop.
  bool start_paused = false;
  /// Called by workers after each applied batch with (batch size, max
  /// enqueue-to-apply seconds in the batch). Latencies are only measured
  /// while obs::enabled(); the hook then feeds e.g. an obs::SloMonitor's
  /// update-latency SLI at batch rate rather than per LU. Must be
  /// thread-safe. Empty = disabled.
  std::function<void(std::size_t, double)> backpressure_hook;
  /// Admission control: when a source queue's depth reaches this fraction
  /// of queue_capacity, LUs that carry little information — the MN moved
  /// less than shed_min_displacement since its last accepted fix — are shed
  /// instead of enqueued. The ADF already suppressed sub-threshold motion
  /// at the sender; under overload the receiver raises the bar the same
  /// way, dropping the lowest-information traffic first. 0 (or
  /// queue_capacity == 0) disables shedding.
  double shed_watermark = 0.0;
  /// Displacement (m) below which an LU is sheddable at the watermark.
  double shed_min_displacement = 5.0;
  /// Write-ahead log: when set, every *accepted* LU is appended under the
  /// source-queue lock — WAL order equals queue order per MN, so serial
  /// replay reproduces the directory exactly. Shed and rejected LUs never
  /// reach the WAL. Must outlive the pipeline.
  WalWriter* wal = nullptr;
  /// Latency attribution: when set, deterministically sampled LUs record
  /// stage-sliced spans (queue/wal/apply/visible) under the
  /// "update_latency" SLI. Must outlive the pipeline. Cost when the tracer
  /// is disabled: one relaxed atomic load per submit.
  obs::SpanTracer* spans = nullptr;
  /// Replication tap: called for every *accepted* LU under the source-queue
  /// lock, right after the WAL append — the tap sees the exact per-MN
  /// record order the WAL and the workers see, so a follower replaying the
  /// tapped stream serially reaches the same directory state (see
  /// cluster/replication.h). Must be fast (buffer, don't block on I/O) and
  /// must not call back into the pipeline. Empty = disabled.
  std::function<void(const wire::LuMsg&)> lu_tap;
  /// Trace-propagating replication tap: called INSTEAD of lu_tap for LUs
  /// submitted with an upstream trace context, carrying the trace id so
  /// the replication hub can re-stream a kTracedLu and a follower joins
  /// the same trace. When unset, traced LUs fall back to lu_tap (the
  /// follower still gets every record, just without the context). Same
  /// ordering and reentrancy contract as lu_tap.
  std::function<void(const wire::TracedLuMsg&)> traced_lu_tap;
};

/// Upstream trace context for an LU that arrived as a wire::TracedLuMsg.
/// Timestamps are CLOCK_MONOTONIC microseconds (cross-process comparable on
/// one machine); 0 = "not stamped", and the corresponding stage stays 0.
struct IngestTraceContext {
  std::uint64_t trace_id = 0;  ///< 0 = no propagated context.
  std::uint64_t origin_us = 0;  ///< router accepted the LU
  std::uint64_t send_us = 0;    ///< router flushed the batch
  std::uint64_t recv_us = 0;    ///< shard decoded the frame
};

struct IngestStats {
  std::uint64_t accepted = 0;
  std::uint64_t rejected_full = 0;   ///< Submits refused by a full queue.
  std::uint64_t applied = 0;         ///< LUs applied to the directory.
  std::uint64_t rejected_stale = 0;  ///< LUs the track refused (regression).
  std::uint64_t batches = 0;         ///< Non-empty drains.
  std::uint64_t shed_low_info = 0;   ///< LUs shed by admission control.
};

class IngestPipeline {
 public:
  /// `directory` must outlive the pipeline. Workers start immediately
  /// (parked when options.start_paused).
  IngestPipeline(ShardedDirectory& directory, IngestOptions options);
  /// Stops and joins the workers; queued LUs are still drained first.
  ~IngestPipeline();

  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  /// Enqueues one LU. Returns false (and counts rejected_full) when the
  /// source queue is at capacity. Thread-safe.
  bool submit(const wire::LuMsg& msg);

  /// Enqueues one LU that carries an upstream trace context: the LU is
  /// force-sampled under the propagated trace id (options.spans permitting)
  /// and its span includes the router-batch and network stages computed
  /// from the context's timestamps. Same admission behavior as submit().
  bool submit_traced(const wire::LuMsg& msg,
                     const IngestTraceContext& trace);

  /// Releases workers parked by start_paused (no-op otherwise).
  void resume();

  /// Blocks until everything submitted before the call has been applied.
  /// Implies resume().
  void flush();

  /// Drains outstanding work and joins the workers. Idempotent; submit()
  /// after stop() returns false.
  void stop();

  [[nodiscard]] IngestStats stats() const;
  [[nodiscard]] std::size_t worker_count() const noexcept {
    return workers_.size();
  }
  /// LUs accepted but not yet applied (the flush barrier's condition and
  /// the admin plane's readiness signal).
  [[nodiscard]] std::uint64_t pending() const noexcept {
    return pending_.load(std::memory_order_acquire);
  }
  /// Instantaneous per-source queue depths (one short lock per queue).
  [[nodiscard]] std::vector<std::size_t> queue_depths() const;

 private:
  /// One queued LU; `enqueued` is stamped only while telemetry is enabled
  /// or the LU is span-sampled (epoch time_point otherwise) so the disabled
  /// path never reads a clock.
  struct QueuedLu {
    wire::LuMsg msg;
    std::chrono::steady_clock::time_point enqueued{};
    /// WAL append duration for span-sampled LUs (0 otherwise / no WAL).
    std::uint64_t wal_ns = 0;
    /// Selected by the span tracer's deterministic sampler, or forced by a
    /// propagated trace context.
    bool sampled = false;
    /// Upstream context (trace_id == 0 when the LU arrived untraced).
    IngestTraceContext trace{};
  };

  struct SourceQueue {
    mutable std::mutex mutex;
    std::deque<QueuedLu> lus;
    /// Last accepted position per MN on this source — the displacement
    /// baseline for admission control (guarded by `mutex`).
    std::unordered_map<std::uint32_t, geo::Vec2> last_position;
  };

  struct Telemetry;  // registry handles, resolved once at construction

  bool submit_internal(const wire::LuMsg& msg,
                       const IngestTraceContext* trace);
  void worker_main(std::size_t worker_id);
  /// True when any queue owned by `worker_id` holds LUs.
  [[nodiscard]] bool own_work(std::size_t worker_id);

  ShardedDirectory& directory_;
  IngestOptions options_;
  std::vector<std::unique_ptr<SourceQueue>> queues_;
  /// The constructing thread's current registry: telemetry handles resolve
  /// against it and worker threads install it as their scoped registry, so
  /// pipeline metrics land with the owner's experiment, not the global.
  obs::MetricsRegistry* home_registry_ = nullptr;
  std::shared_ptr<Telemetry> telemetry_;

  mutable std::mutex control_mutex_;
  std::condition_variable work_cv_;  ///< Signals workers: work or stop.
  std::condition_variable idle_cv_;  ///< Signals flush(): pending drained.
  bool paused_ = false;
  bool stopping_ = false;
  bool stopped_ = false;

  /// Queue depth at which admission control starts shedding (SIZE_MAX when
  /// shedding is disabled).
  std::size_t shed_threshold_ = 0;

  std::atomic<bool> accepting_{true};
  /// LUs accepted but not yet applied (flush barrier condition).
  std::atomic<std::uint64_t> pending_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_full_{0};
  std::atomic<std::uint64_t> applied_{0};
  std::atomic<std::uint64_t> rejected_stale_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> shed_low_info_{0};
  /// True while overload shedding has the directory flagged degraded;
  /// cleared when the pipeline fully drains.
  std::atomic<bool> shed_active_{false};

  std::vector<std::thread> workers_;
};

}  // namespace mgrid::serve

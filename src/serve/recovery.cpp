#include "serve/recovery.h"

#include <filesystem>
#include <variant>

#include "serve/snapshot.h"

namespace mgrid::serve {

std::unique_ptr<ShardedDirectory> recover_directory(
    const RecoverOptions& options,
    const std::function<std::unique_ptr<ShardedDirectory>()>& make_directory,
    RecoverReport& report) {
  report = RecoverReport{};
  namespace fs = std::filesystem;
  const std::string wal_path =
      (fs::path(options.wal_dir) / options.wal_file).string();
  std::error_code ec;
  if (!fs::exists(wal_path, ec)) {
    return make_directory();
  }
  report.wal_found = true;

  const WalReadResult wal = read_wal(wal_path);
  report.wal_records_total = wal.records.size();
  report.tail_status = wal.status;

  // Pick the newest snapshot that is valid AND consistent with this WAL.
  std::unique_ptr<ShardedDirectory> directory;
  SnapshotData snapshot;
  std::uint64_t skip = 0;
  for (const std::string& path : list_snapshots(options.wal_dir)) {
    SnapshotData candidate;
    if (!load_snapshot(path, candidate) ||
        candidate.wal_records > wal.records.size()) {
      ++report.snapshots_rejected;
      continue;
    }
    auto attempt = make_directory();
    if (apply_snapshot(*attempt, candidate) != candidate.tracks.size()) {
      ++report.snapshots_rejected;
      continue;
    }
    directory = std::move(attempt);
    snapshot = std::move(candidate);
    skip = snapshot.wal_records;
    report.snapshot_loaded = true;
    report.snapshot_path = path;
    break;
  }
  if (!directory) directory = make_directory();
  report.wal_records_skipped = skip;

  // A snapshot is taken at a tick barrier, so its last covered record is
  // that barrier's tick frame — recover the resume tick from it without
  // storing it in the snapshot itself.
  if (skip > 0) {
    if (const auto* tick = std::get_if<wire::TickMsg>(&wal.records[skip - 1])) {
      report.has_barrier = true;
      report.last_tick_t = tick->t;
      report.last_tick = tick->tick;
    }
  }

  // The consistent cut: the last tick record at or after the snapshot
  // boundary (or the boundary itself when no tick follows it).
  std::size_t cut = static_cast<std::size_t>(skip);  // replay [skip, cut)
  if (options.to_tick_boundary) {
    for (std::size_t i = wal.records.size(); i > skip; --i) {
      if (std::holds_alternative<wire::TickMsg>(wal.records[i - 1])) {
        cut = i;
        break;
      }
    }
  } else {
    cut = wal.records.size();
  }

  for (std::size_t i = skip; i < cut; ++i) {
    if (const auto* lu = std::get_if<wire::LuMsg>(&wal.records[i])) {
      if (directory->update(lu->mn, lu->t, {lu->x, lu->y}, {lu->vx, lu->vy})) {
        ++report.lus_applied;
      } else {
        ++report.lus_rejected;
      }
    } else if (const auto* tick =
                   std::get_if<wire::TickMsg>(&wal.records[i])) {
      directory->advance_estimates(tick->t);
      ++report.ticks_replayed;
      report.has_barrier = true;
      report.last_tick_t = tick->t;
      report.last_tick = tick->tick;
    }
    // Other frame types cannot appear in a WAL (the writer only emits kLu
    // and kTick); if one does, it is ignored rather than fatal.
  }
  report.trailing_lus_dropped = wal.records.size() - cut;

  report.consistent_records = cut;
  report.consistent_bytes =
      cut == 0 ? sizeof(kWalHeader) : wal.record_ends[cut - 1];
  return directory;
}

}  // namespace mgrid::serve

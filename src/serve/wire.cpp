#include "serve/wire.h"

#include <bit>

namespace mgrid::serve::wire {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xFF));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xFF));
  }
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

std::uint16_t get_u16(std::span<const std::uint8_t> in, std::size_t at) {
  return static_cast<std::uint16_t>(in[at] |
                                    (static_cast<std::uint16_t>(in[at + 1])
                                     << 8));
}

std::uint32_t get_u32(std::span<const std::uint8_t> in, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | in[at + static_cast<std::size_t>(i)];
  }
  return v;
}

std::uint64_t get_u64(std::span<const std::uint8_t> in, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | in[at + static_cast<std::size_t>(i)];
  }
  return v;
}

double get_f64(std::span<const std::uint8_t> in, std::size_t at) {
  return std::bit_cast<double>(get_u64(in, at));
}

std::size_t begin_frame(std::vector<std::uint8_t>& out, MsgType type) {
  const std::size_t start = out.size();
  put_u16(out, kMagic);
  out.push_back(type == MsgType::kTracedLu ? kTracedVersion : kVersion);
  out.push_back(static_cast<std::uint8_t>(type));
  put_u32(out, static_cast<std::uint32_t>(payload_size(type)));
  return start;
}

void put_lu_payload(std::vector<std::uint8_t>& out, const LuMsg& msg) {
  put_u32(out, msg.mn);
  put_u32(out, msg.seq);
  put_f64(out, msg.t);
  put_f64(out, msg.x);
  put_f64(out, msg.y);
  put_f64(out, msg.vx);
  put_f64(out, msg.vy);
  put_f64(out, msg.battery);
}

LuMsg get_lu_payload(std::span<const std::uint8_t> in, std::size_t at) {
  LuMsg msg;
  msg.mn = get_u32(in, at);
  msg.seq = get_u32(in, at + 4);
  msg.t = get_f64(in, at + 8);
  msg.x = get_f64(in, at + 16);
  msg.y = get_f64(in, at + 24);
  msg.vx = get_f64(in, at + 32);
  msg.vy = get_f64(in, at + 40);
  msg.battery = get_f64(in, at + 48);
  return msg;
}

}  // namespace

std::string_view to_string(DecodeStatus status) noexcept {
  switch (status) {
    case DecodeStatus::kOk:
      return "ok";
    case DecodeStatus::kNeedMoreData:
      return "need_more_data";
    case DecodeStatus::kBadMagic:
      return "bad_magic";
    case DecodeStatus::kBadVersion:
      return "bad_version";
    case DecodeStatus::kBadType:
      return "bad_type";
    case DecodeStatus::kBadLength:
      return "bad_length";
  }
  return "unknown";
}

std::string_view to_string(MsgType type) noexcept {
  switch (type) {
    case MsgType::kLu:
      return "lu";
    case MsgType::kAck:
      return "ack";
    case MsgType::kLookup:
      return "lookup";
    case MsgType::kLookupReply:
      return "lookup_reply";
    case MsgType::kRegionQuery:
      return "region_query";
    case MsgType::kNearestQuery:
      return "nearest_query";
    case MsgType::kTick:
      return "tick";
    case MsgType::kNeighbor:
      return "neighbor";
    case MsgType::kQueryDone:
      return "query_done";
    case MsgType::kSubscribe:
      return "subscribe";
    case MsgType::kSnapshotChunk:
      return "snapshot_chunk";
    case MsgType::kSnapshotDone:
      return "snapshot_done";
    case MsgType::kTracedLu:
      return "traced_lu";
  }
  return "unknown";
}

std::size_t payload_size(MsgType type) noexcept {
  switch (type) {
    case MsgType::kLu:
      return 56;
    case MsgType::kAck:
      return 16;
    case MsgType::kLookup:
      return 16;
    case MsgType::kLookupReply:
      return 32;
    case MsgType::kRegionQuery:
      return 32;
    case MsgType::kNearestQuery:
      return 24;
    case MsgType::kTick:
      return 16;
    case MsgType::kNeighbor:
      return 32;
    case MsgType::kQueryDone:
      return 16;
    case MsgType::kSubscribe:
      return 16;
    case MsgType::kSnapshotChunk:
      return kVariablePayload;
    case MsgType::kSnapshotDone:
      return 16;
    case MsgType::kTracedLu:
      return 88;
  }
  return 0;
}

std::size_t encode(std::vector<std::uint8_t>& out, const LuMsg& msg) {
  const std::size_t start = begin_frame(out, MsgType::kLu);
  put_lu_payload(out, msg);
  return out.size() - start;
}

std::size_t encode(std::vector<std::uint8_t>& out, const TracedLuMsg& msg) {
  const std::size_t start = begin_frame(out, MsgType::kTracedLu);
  put_lu_payload(out, msg.lu);
  put_u64(out, msg.trace.trace_id);
  put_u64(out, msg.trace.origin_us);
  put_u64(out, msg.trace.send_us);
  put_u32(out, msg.trace.parent_stage);
  put_u32(out, 0);
  return out.size() - start;
}

std::size_t encode(std::vector<std::uint8_t>& out, const AckMsg& msg) {
  const std::size_t start = begin_frame(out, MsgType::kAck);
  put_u32(out, msg.mn);
  out.push_back(static_cast<std::uint8_t>(msg.status));
  out.push_back(0);
  out.push_back(0);
  out.push_back(0);
  put_f64(out, msg.t);
  return out.size() - start;
}

std::size_t encode(std::vector<std::uint8_t>& out, const LookupMsg& msg) {
  const std::size_t start = begin_frame(out, MsgType::kLookup);
  put_u32(out, msg.mn);
  put_u32(out, 0);
  put_f64(out, msg.t);
  return out.size() - start;
}

std::size_t encode(std::vector<std::uint8_t>& out, const LookupReplyMsg& msg) {
  const std::size_t start = begin_frame(out, MsgType::kLookupReply);
  put_u32(out, msg.mn);
  out.push_back(msg.found ? 1 : 0);
  out.push_back(msg.estimated ? 1 : 0);
  out.push_back(0);
  out.push_back(0);
  put_f64(out, msg.t);
  put_f64(out, msg.x);
  put_f64(out, msg.y);
  return out.size() - start;
}

std::size_t encode(std::vector<std::uint8_t>& out, const RegionQueryMsg& msg) {
  const std::size_t start = begin_frame(out, MsgType::kRegionQuery);
  put_f64(out, msg.x);
  put_f64(out, msg.y);
  put_f64(out, msg.radius);
  put_u32(out, msg.max_results);
  put_u32(out, 0);
  return out.size() - start;
}

std::size_t encode(std::vector<std::uint8_t>& out,
                   const NearestQueryMsg& msg) {
  const std::size_t start = begin_frame(out, MsgType::kNearestQuery);
  put_f64(out, msg.x);
  put_f64(out, msg.y);
  put_u32(out, msg.k);
  put_u32(out, 0);
  return out.size() - start;
}

std::size_t encode(std::vector<std::uint8_t>& out, const TickMsg& msg) {
  const std::size_t start = begin_frame(out, MsgType::kTick);
  put_f64(out, msg.t);
  put_u64(out, msg.tick);
  return out.size() - start;
}

std::size_t encode(std::vector<std::uint8_t>& out, const NeighborMsg& msg) {
  const std::size_t start = begin_frame(out, MsgType::kNeighbor);
  put_u32(out, msg.mn);
  put_u32(out, 0);
  put_f64(out, msg.distance);
  put_f64(out, msg.x);
  put_f64(out, msg.y);
  return out.size() - start;
}

std::size_t encode(std::vector<std::uint8_t>& out, const QueryDoneMsg& msg) {
  const std::size_t start = begin_frame(out, MsgType::kQueryDone);
  put_u32(out, msg.count);
  put_u32(out, 0);
  put_f64(out, msg.t);
  return out.size() - start;
}

std::size_t encode(std::vector<std::uint8_t>& out, const SubscribeMsg& msg) {
  const std::size_t start = begin_frame(out, MsgType::kSubscribe);
  put_u64(out, msg.from_record);
  put_u64(out, msg.flags);
  return out.size() - start;
}

std::size_t encode(std::vector<std::uint8_t>& out,
                   const SnapshotChunkMsg& msg) {
  if (msg.bytes.size() > kMaxChunkBytes) return 0;
  const std::size_t start = out.size();
  put_u16(out, kMagic);
  out.push_back(kVersion);
  out.push_back(static_cast<std::uint8_t>(MsgType::kSnapshotChunk));
  put_u32(out, static_cast<std::uint32_t>(msg.bytes.size()));
  out.insert(out.end(), msg.bytes.begin(), msg.bytes.end());
  return out.size() - start;
}

std::size_t encode(std::vector<std::uint8_t>& out,
                   const SnapshotDoneMsg& msg) {
  const std::size_t start = begin_frame(out, MsgType::kSnapshotDone);
  put_u64(out, msg.total_bytes);
  put_u64(out, msg.wal_records);
  return out.size() - start;
}

Decoded decode_frame(std::span<const std::uint8_t> buffer) {
  Decoded result;
  if (buffer.size() < kHeaderBytes) {
    // Validate whatever prefix of the header we do have, so garbage is
    // rejected immediately instead of stalling a reader forever.
    if (!buffer.empty() && buffer[0] != (kMagic & 0xFF)) {
      result.status = DecodeStatus::kBadMagic;
      return result;
    }
    if (buffer.size() >= 2 && get_u16(buffer, 0) != kMagic) {
      result.status = DecodeStatus::kBadMagic;
      return result;
    }
    if (buffer.size() >= 3 && buffer[2] != kVersion &&
        buffer[2] != kTracedVersion) {
      result.status = DecodeStatus::kBadVersion;
      return result;
    }
    result.status = DecodeStatus::kNeedMoreData;
    return result;
  }
  if (get_u16(buffer, 0) != kMagic) {
    result.status = DecodeStatus::kBadMagic;
    return result;
  }
  const auto type = static_cast<MsgType>(buffer[3]);
  // Version gate: kTracedLu is the one v2 frame; everything else is v1. A
  // mismatched pairing (v2 header on a legacy type, or a traced type under
  // v1) is rejected as kBadVersion — exactly what a v1-only decoder
  // answers for any v2 frame, so skew fails identically in both directions.
  const std::uint8_t required =
      type == MsgType::kTracedLu ? kTracedVersion : kVersion;
  if (buffer[2] != required) {
    result.status = DecodeStatus::kBadVersion;
    return result;
  }
  std::size_t expected = payload_size(type);
  if (expected == 0) {
    result.status = DecodeStatus::kBadType;
    return result;
  }
  const std::uint32_t declared = get_u32(buffer, 4);
  if (expected == kVariablePayload) {
    // The one variable-length type: the header's length is authoritative,
    // bounded so a hostile header cannot demand an unbounded buffer.
    if (declared > kMaxChunkBytes) {
      result.status = DecodeStatus::kBadLength;
      return result;
    }
    expected = declared;
  } else if (declared != expected) {
    result.status = DecodeStatus::kBadLength;
    return result;
  }
  if (buffer.size() < kHeaderBytes + expected) {
    result.status = DecodeStatus::kNeedMoreData;
    return result;
  }
  const std::size_t p = kHeaderBytes;
  switch (type) {
    case MsgType::kLu: {
      result.msg = get_lu_payload(buffer, p);
      break;
    }
    case MsgType::kTracedLu: {
      TracedLuMsg msg;
      msg.lu = get_lu_payload(buffer, p);
      msg.trace.trace_id = get_u64(buffer, p + 56);
      msg.trace.origin_us = get_u64(buffer, p + 64);
      msg.trace.send_us = get_u64(buffer, p + 72);
      msg.trace.parent_stage = get_u32(buffer, p + 80);
      result.msg = msg;
      break;
    }
    case MsgType::kAck: {
      AckMsg msg;
      msg.mn = get_u32(buffer, p);
      msg.status = static_cast<AckStatus>(buffer[p + 4]);
      msg.t = get_f64(buffer, p + 8);
      result.msg = msg;
      break;
    }
    case MsgType::kLookup: {
      LookupMsg msg;
      msg.mn = get_u32(buffer, p);
      msg.t = get_f64(buffer, p + 8);
      result.msg = msg;
      break;
    }
    case MsgType::kLookupReply: {
      LookupReplyMsg msg;
      msg.mn = get_u32(buffer, p);
      msg.found = buffer[p + 4] != 0;
      msg.estimated = buffer[p + 5] != 0;
      msg.t = get_f64(buffer, p + 8);
      msg.x = get_f64(buffer, p + 16);
      msg.y = get_f64(buffer, p + 24);
      result.msg = msg;
      break;
    }
    case MsgType::kRegionQuery: {
      RegionQueryMsg msg;
      msg.x = get_f64(buffer, p);
      msg.y = get_f64(buffer, p + 8);
      msg.radius = get_f64(buffer, p + 16);
      msg.max_results = get_u32(buffer, p + 24);
      result.msg = msg;
      break;
    }
    case MsgType::kNearestQuery: {
      NearestQueryMsg msg;
      msg.x = get_f64(buffer, p);
      msg.y = get_f64(buffer, p + 8);
      msg.k = get_u32(buffer, p + 16);
      result.msg = msg;
      break;
    }
    case MsgType::kTick: {
      TickMsg msg;
      msg.t = get_f64(buffer, p);
      msg.tick = get_u64(buffer, p + 8);
      result.msg = msg;
      break;
    }
    case MsgType::kNeighbor: {
      NeighborMsg msg;
      msg.mn = get_u32(buffer, p);
      msg.distance = get_f64(buffer, p + 8);
      msg.x = get_f64(buffer, p + 16);
      msg.y = get_f64(buffer, p + 24);
      result.msg = msg;
      break;
    }
    case MsgType::kQueryDone: {
      QueryDoneMsg msg;
      msg.count = get_u32(buffer, p);
      msg.t = get_f64(buffer, p + 8);
      result.msg = msg;
      break;
    }
    case MsgType::kSubscribe: {
      SubscribeMsg msg;
      msg.from_record = get_u64(buffer, p);
      msg.flags = get_u64(buffer, p + 8);
      result.msg = msg;
      break;
    }
    case MsgType::kSnapshotChunk: {
      SnapshotChunkMsg msg;
      msg.bytes.assign(buffer.begin() + static_cast<std::ptrdiff_t>(p),
                       buffer.begin() + static_cast<std::ptrdiff_t>(p + expected));
      result.msg = std::move(msg);
      break;
    }
    case MsgType::kSnapshotDone: {
      SnapshotDoneMsg msg;
      msg.total_bytes = get_u64(buffer, p);
      msg.wal_records = get_u64(buffer, p + 8);
      result.msg = msg;
      break;
    }
  }
  result.status = DecodeStatus::kOk;
  result.consumed = kHeaderBytes + expected;
  return result;
}

}  // namespace mgrid::serve::wire

#include "serve/ingest.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

#include "obs/trace.h"

namespace mgrid::serve {

/// Registry handles for the pipeline's backpressure telemetry, resolved
/// once against the constructing thread's current registry. Depth gauges
/// are per source so a scrape shows which queues are hot.
struct IngestPipeline::Telemetry {
  obs::Counter accepted;
  obs::Counter rejected_full;
  obs::Counter rejected_stale;
  obs::Counter shed_low_info;
  obs::Counter shed_queue_full;
  obs::HistogramMetric enqueue_to_apply_seconds;
  obs::HistogramMetric batch_size;
  std::vector<obs::Gauge> queue_depth;  ///< One per source.

  Telemetry(obs::MetricsRegistry& registry, std::size_t sources,
            std::size_t max_batch) {
    accepted = registry.counter("mgrid_ingest_accepted_total", {},
                                "LUs accepted into the ingest queues");
    rejected_full =
        registry.counter("mgrid_ingest_rejected_total",
                         {{"reason", "full"}},
                         "LUs rejected by the ingest pipeline");
    rejected_stale =
        registry.counter("mgrid_ingest_rejected_total",
                         {{"reason", "stale"}},
                         "LUs rejected by the ingest pipeline");
    shed_low_info = registry.counter(
        "mgrid_ingest_shed_total", {{"reason", "low_info"}},
        "LUs shed by overload admission control");
    shed_queue_full = registry.counter(
        "mgrid_ingest_shed_total", {{"reason", "queue_full"}},
        "LUs shed by overload admission control");
    enqueue_to_apply_seconds = registry.histogram(
        "mgrid_ingest_enqueue_to_apply_seconds", 0.0, 0.1, 100, {},
        "Latency from submit() to directory apply");
    batch_size = registry.histogram(
        "mgrid_ingest_batch_size", 0.0,
        static_cast<double>(max_batch) + 1.0,
        std::min<std::size_t>(max_batch + 1, 64), {},
        "LUs drained per worker batch");
    queue_depth.reserve(sources);
    for (std::size_t s = 0; s < sources; ++s) {
      queue_depth.push_back(registry.gauge(
          "mgrid_ingest_queue_depth", {{"source", std::to_string(s)}},
          "Instantaneous depth of one ingest source queue"));
    }
  }
};

IngestPipeline::IngestPipeline(ShardedDirectory& directory,
                               IngestOptions options)
    : directory_(directory), options_(std::move(options)) {
  if (options_.sources == 0) {
    throw std::invalid_argument("IngestPipeline: sources must be >= 1");
  }
  if (options_.workers == 0) {
    throw std::invalid_argument("IngestPipeline: workers must be >= 1");
  }
  if (options_.batch_size == 0) {
    throw std::invalid_argument("IngestPipeline: batch_size must be >= 1");
  }
  if (options_.shed_watermark < 0.0 || options_.shed_watermark > 1.0) {
    throw std::invalid_argument(
        "IngestPipeline: shed_watermark must be in [0, 1]");
  }
  if (options_.shed_watermark > 0.0 && options_.queue_capacity > 0) {
    shed_threshold_ = std::max<std::size_t>(
        1, static_cast<std::size_t>(options_.shed_watermark *
                                    static_cast<double>(
                                        options_.queue_capacity)));
  } else {
    shed_threshold_ = std::numeric_limits<std::size_t>::max();
  }
  paused_ = options_.start_paused;
  queues_.reserve(options_.sources);
  for (std::size_t i = 0; i < options_.sources; ++i) {
    queues_.push_back(std::make_unique<SourceQueue>());
  }
  home_registry_ = &obs::current_registry();
  telemetry_ = std::make_shared<Telemetry>(*home_registry_, options_.sources,
                                           options_.batch_size);
  if (options_.spans != nullptr) {
    // Exemplar buckets mirror the enqueue-to-apply latency histogram, so a
    // /tracez exemplar maps 1:1 onto a /metrics bucket.
    options_.spans->register_sli("update_latency", 0.0, 0.1, 100);
  }
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

IngestPipeline::~IngestPipeline() { stop(); }

bool IngestPipeline::submit(const wire::LuMsg& msg) {
  return submit_internal(msg, nullptr);
}

bool IngestPipeline::submit_traced(const wire::LuMsg& msg,
                                   const IngestTraceContext& trace) {
  return submit_internal(msg, trace.trace_id != 0 ? &trace : nullptr);
}

bool IngestPipeline::submit_internal(const wire::LuMsg& msg,
                                     const IngestTraceContext* trace) {
  if (!accepting_.load(std::memory_order_acquire)) return false;
  const bool telemetry = obs::enabled();
  const std::size_t source = msg.mn % queues_.size();
  // Producer-side sampling decision: a pure function of the LU's identity,
  // so the sampled set cannot depend on worker count or timing. An LU with
  // a propagated context was sampled upstream and stays sampled here, so
  // one cluster-wide decision selects every hop of the trace.
  const bool span_sampled =
      options_.spans != nullptr &&
      (trace != nullptr ||
       options_.spans->sampled(static_cast<std::uint32_t>(source), msg.mn,
                               msg.seq));
  SourceQueue& queue = *queues_[source];
  bool was_empty = false;
  std::size_t depth = 0;
  {
    const std::lock_guard<std::mutex> lock(queue.mutex);
    if (options_.queue_capacity > 0 &&
        queue.lus.size() >= options_.queue_capacity) {
      rejected_full_.fetch_add(1, std::memory_order_relaxed);
      if (telemetry) {
        telemetry_->rejected_full.inc();
        telemetry_->shed_queue_full.inc();
      }
      if (!shed_active_.exchange(true, std::memory_order_relaxed)) {
        directory_.set_degraded(true);
      }
      return false;
    }
    if (queue.lus.size() >= shed_threshold_) {
      // Overload: shed lowest-information LUs first. An MN that barely
      // moved since its last accepted fix costs the estimator little to
      // lose — the same displacement signal the ADF filters on.
      const auto last = queue.last_position.find(msg.mn);
      if (last != queue.last_position.end()) {
        const geo::Vec2 displacement =
            geo::Vec2{msg.x, msg.y} - last->second;
        if (displacement.norm() < options_.shed_min_displacement) {
          shed_low_info_.fetch_add(1, std::memory_order_relaxed);
          if (telemetry) telemetry_->shed_low_info.inc();
          if (!shed_active_.exchange(true, std::memory_order_relaxed)) {
            directory_.set_degraded(true);
          }
          return false;
        }
      }
    }
    was_empty = queue.lus.empty();
    QueuedLu item;
    item.msg = msg;
    item.sampled = span_sampled;
    if (trace != nullptr) item.trace = *trace;
    if (telemetry || span_sampled) {
      item.enqueued = std::chrono::steady_clock::now();
    }
    queue.lus.push_back(item);
    queue.last_position[msg.mn] = geo::Vec2{msg.x, msg.y};
    // WAL write inside the queue lock: the log's per-MN record order is the
    // queue's, so serial replay reproduces exactly what the workers apply.
    if (options_.wal != nullptr) {
      if (span_sampled) {
        // Carve the WAL append (+fsync) out of the queue-wait stage.
        const auto wal_start = std::chrono::steady_clock::now();
        options_.wal->append(msg);
        queue.lus.back().wal_ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - wal_start)
                .count());
      } else {
        options_.wal->append(msg);
      }
    }
    // Replication tap under the same lock: the tapped stream's per-MN order
    // is the queue's (== the WAL's), which is what makes follower replay
    // deterministic. Tap time lands in the span's queue stage. A traced LU
    // prefers the trace-propagating tap so the follower joins the trace;
    // either way every accepted LU reaches exactly one tap.
    if (trace != nullptr && options_.traced_lu_tap) {
      wire::TracedLuMsg traced;
      traced.lu = msg;
      traced.trace.trace_id = trace->trace_id;
      traced.trace.origin_us = trace->origin_us;
      traced.trace.send_us = trace->send_us;
      traced.trace.parent_stage =
          static_cast<std::uint32_t>(obs::LuStage::kVisible);
      options_.traced_lu_tap(traced);
    } else if (options_.lu_tap) {
      options_.lu_tap(msg);
    }
    depth = queue.lus.size();
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  pending_.fetch_add(1, std::memory_order_acq_rel);
  if (telemetry) {
    telemetry_->accepted.inc();
    telemetry_->queue_depth[source].set(static_cast<double>(depth));
  }
  if (was_empty) {
    // The owning worker may be parked on an empty queue; the lock pairs
    // with its predicate check so the wakeup cannot be lost.
    const std::lock_guard<std::mutex> lock(control_mutex_);
    work_cv_.notify_all();
  }
  return true;
}

void IngestPipeline::resume() {
  const std::lock_guard<std::mutex> lock(control_mutex_);
  if (!paused_) return;
  paused_ = false;
  work_cv_.notify_all();
}

void IngestPipeline::flush() {
  resume();
  std::unique_lock<std::mutex> lock(control_mutex_);
  idle_cv_.wait(lock, [this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

void IngestPipeline::stop() {
  {
    const std::lock_guard<std::mutex> lock(control_mutex_);
    if (stopped_) return;
    stopped_ = true;
    accepting_.store(false, std::memory_order_release);
    stopping_ = true;
    paused_ = false;
    work_cv_.notify_all();
  }
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

bool IngestPipeline::own_work(std::size_t worker_id) {
  for (std::size_t q = worker_id; q < queues_.size();
       q += options_.workers) {
    const std::lock_guard<std::mutex> lock(queues_[q]->mutex);
    if (!queues_[q]->lus.empty()) return true;
  }
  return false;
}

std::vector<std::size_t> IngestPipeline::queue_depths() const {
  std::vector<std::size_t> depths;
  depths.reserve(queues_.size());
  for (const std::unique_ptr<SourceQueue>& queue : queues_) {
    const std::lock_guard<std::mutex> lock(queue->mutex);
    depths.push_back(queue->lus.size());
  }
  return depths;
}

void IngestPipeline::worker_main(std::size_t worker_id) {
  // Workers record through the owner's registry (directory apply metrics,
  // pipeline histograms), not whatever the global happens to be.
  const obs::ScopedRegistry scoped_registry(*home_registry_);
  // Name the thread for trace exports so Perfetto groups the pipeline's
  // workers instead of showing raw trace ids.
  obs::current_trace_recorder().set_thread_name(
      obs::trace_thread_id(), "ingest-worker-" + std::to_string(worker_id));
  /// A span-sampled LU awaiting its apply/visible stage stamps.
  struct PendingSpan {
    std::uint32_t mn = 0;
    std::uint32_t seq = 0;
    std::uint64_t wal_ns = 0;
    std::chrono::steady_clock::time_point enqueued{};
    IngestTraceContext trace{};
  };
  std::vector<ShardedDirectory::LuApply> batch;
  std::vector<std::chrono::steady_clock::time_point> enqueue_times;
  std::vector<PendingSpan> pending_spans;
  batch.reserve(options_.batch_size);
  enqueue_times.reserve(options_.batch_size);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(control_mutex_);
      work_cv_.wait(lock, [this, worker_id] {
        return stopping_ || (!paused_ && own_work(worker_id));
      });
    }
    bool drained_any = false;
    for (std::size_t q = worker_id; q < queues_.size();
         q += options_.workers) {
      SourceQueue& queue = *queues_[q];
      batch.clear();
      enqueue_times.clear();
      pending_spans.clear();
      std::size_t remaining_depth = 0;
      {
        const std::lock_guard<std::mutex> lock(queue.mutex);
        const std::size_t take =
            std::min(options_.batch_size, queue.lus.size());
        for (std::size_t i = 0; i < take; ++i) {
          const QueuedLu& item = queue.lus[i];
          batch.push_back({item.msg.mn,
                           item.msg.t,
                           {item.msg.x, item.msg.y},
                           {item.msg.vx, item.msg.vy}});
          enqueue_times.push_back(item.enqueued);
          if (item.sampled) {
            pending_spans.push_back({item.msg.mn, item.msg.seq, item.wal_ns,
                                     item.enqueued, item.trace});
          }
        }
        queue.lus.erase(queue.lus.begin(),
                        queue.lus.begin() + static_cast<std::ptrdiff_t>(take));
        remaining_depth = queue.lus.size();
      }
      if (batch.empty()) continue;
      drained_any = true;
      std::chrono::steady_clock::time_point apply_start;
      if (!pending_spans.empty()) {
        apply_start = std::chrono::steady_clock::now();
      }
      const std::size_t applied = directory_.apply_batch(batch);
      std::chrono::steady_clock::time_point apply_end;
      if (!pending_spans.empty()) {
        apply_end = std::chrono::steady_clock::now();
      }
      applied_.fetch_add(applied, std::memory_order_relaxed);
      rejected_stale_.fetch_add(batch.size() - applied,
                                std::memory_order_relaxed);
      batches_.fetch_add(1, std::memory_order_relaxed);

      double max_latency = 0.0;
      bool have_latency = false;
      if (obs::enabled()) {
        const auto now = std::chrono::steady_clock::now();
        for (const auto& enqueued : enqueue_times) {
          if (enqueued == std::chrono::steady_clock::time_point{}) continue;
          const double seconds =
              std::chrono::duration<double>(now - enqueued).count();
          telemetry_->enqueue_to_apply_seconds.observe(seconds);
          max_latency = std::max(max_latency, seconds);
          have_latency = true;
        }
        telemetry_->batch_size.observe(static_cast<double>(batch.size()));
        telemetry_->queue_depth[q].set(
            static_cast<double>(remaining_depth));
        if (applied < batch.size()) {
          telemetry_->rejected_stale.inc(
              static_cast<std::uint64_t>(batch.size() - applied));
        }
      }
      if (options_.backpressure_hook && have_latency) {
        options_.backpressure_hook(batch.size(), max_latency);
      }

      if (!pending_spans.empty()) {
        // "Visible" is stamped after the telemetry/hook work above: it is
        // the moment a lookup issued now would see the applied batch with
        // all observability side effects settled. The four stages tile
        // [enqueued, visible] exactly, so their sum IS the span total.
        const auto visible = std::chrono::steady_clock::now();
        for (const PendingSpan& pending_span : pending_spans) {
          obs::LuSpan span;
          span.mn = pending_span.mn;
          span.seq = pending_span.seq;
          span.source = static_cast<std::uint32_t>(q);
          // A propagated context keeps its upstream id so every hop of the
          // cluster trace shares one trace_id; local sampling derives it.
          span.trace_id =
              pending_span.trace.trace_id != 0
                  ? pending_span.trace.trace_id
                  : obs::SpanTracer::trace_id(span.source, pending_span.mn,
                                              pending_span.seq);
          span.tid = obs::trace_thread_id();
          span.wall_us = static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  visible.time_since_epoch())
                  .count());
          const double wal_seconds =
              static_cast<double>(pending_span.wal_ns) * 1e-9;
          const double to_apply_start =
              std::chrono::duration<double>(apply_start -
                                            pending_span.enqueued)
                  .count();
          span.stage_seconds[static_cast<std::size_t>(obs::LuStage::kWal)] =
              wal_seconds;
          span.stage_seconds[static_cast<std::size_t>(
              obs::LuStage::kQueue)] =
              std::max(0.0, to_apply_start - wal_seconds);
          span.stage_seconds[static_cast<std::size_t>(
              obs::LuStage::kApply)] =
              std::chrono::duration<double>(apply_end - apply_start).count();
          span.stage_seconds[static_cast<std::size_t>(
              obs::LuStage::kVisible)] =
              std::chrono::duration<double>(visible - apply_end).count();
          // Upstream stages from the propagated timestamps (monotonic us,
          // cross-process comparable on one machine). Untraced LUs leave
          // them 0, so the local four stages still tile the span exactly.
          const IngestTraceContext& upstream = pending_span.trace;
          if (upstream.send_us > upstream.origin_us &&
              upstream.origin_us != 0) {
            span.stage_seconds[static_cast<std::size_t>(
                obs::LuStage::kRouterBatch)] =
                static_cast<double>(upstream.send_us - upstream.origin_us) *
                1e-6;
          }
          if (upstream.recv_us > upstream.send_us && upstream.send_us != 0) {
            span.stage_seconds[static_cast<std::size_t>(obs::LuStage::kNet)] =
                static_cast<double>(upstream.recv_us - upstream.send_us) *
                1e-6;
          }
          for (const double stage : span.stage_seconds) {
            span.total_seconds += stage;
          }
          options_.spans->record("update_latency", span);
        }
      }

      if (pending_.fetch_sub(batch.size(), std::memory_order_acq_rel) ==
          batch.size()) {
        // Fully drained: the overload that triggered shedding has passed,
        // so lift degraded mode.
        if (shed_active_.exchange(false, std::memory_order_relaxed)) {
          directory_.set_degraded(false);
        }
        const std::lock_guard<std::mutex> lock(control_mutex_);
        idle_cv_.notify_all();
      }
    }
    if (!drained_any) {
      const std::lock_guard<std::mutex> lock(control_mutex_);
      if (stopping_) return;
    }
  }
}

IngestStats IngestPipeline::stats() const {
  IngestStats out;
  out.accepted = accepted_.load(std::memory_order_relaxed);
  out.rejected_full = rejected_full_.load(std::memory_order_relaxed);
  out.applied = applied_.load(std::memory_order_relaxed);
  out.rejected_stale = rejected_stale_.load(std::memory_order_relaxed);
  out.batches = batches_.load(std::memory_order_relaxed);
  out.shed_low_info = shed_low_info_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace mgrid::serve

#include "serve/ingest.h"

#include <stdexcept>

namespace mgrid::serve {

IngestPipeline::IngestPipeline(ShardedDirectory& directory,
                               IngestOptions options)
    : directory_(directory), options_(options) {
  if (options_.sources == 0) {
    throw std::invalid_argument("IngestPipeline: sources must be >= 1");
  }
  if (options_.workers == 0) {
    throw std::invalid_argument("IngestPipeline: workers must be >= 1");
  }
  if (options_.batch_size == 0) {
    throw std::invalid_argument("IngestPipeline: batch_size must be >= 1");
  }
  paused_ = options_.start_paused;
  queues_.reserve(options_.sources);
  for (std::size_t i = 0; i < options_.sources; ++i) {
    queues_.push_back(std::make_unique<SourceQueue>());
  }
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

IngestPipeline::~IngestPipeline() { stop(); }

bool IngestPipeline::submit(const wire::LuMsg& msg) {
  if (!accepting_.load(std::memory_order_acquire)) return false;
  SourceQueue& queue = *queues_[msg.mn % queues_.size()];
  bool was_empty = false;
  {
    const std::lock_guard<std::mutex> lock(queue.mutex);
    if (options_.queue_capacity > 0 &&
        queue.lus.size() >= options_.queue_capacity) {
      rejected_full_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    was_empty = queue.lus.empty();
    queue.lus.push_back(msg);
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  pending_.fetch_add(1, std::memory_order_acq_rel);
  if (was_empty) {
    // The owning worker may be parked on an empty queue; the lock pairs
    // with its predicate check so the wakeup cannot be lost.
    const std::lock_guard<std::mutex> lock(control_mutex_);
    work_cv_.notify_all();
  }
  return true;
}

void IngestPipeline::resume() {
  const std::lock_guard<std::mutex> lock(control_mutex_);
  if (!paused_) return;
  paused_ = false;
  work_cv_.notify_all();
}

void IngestPipeline::flush() {
  resume();
  std::unique_lock<std::mutex> lock(control_mutex_);
  idle_cv_.wait(lock, [this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

void IngestPipeline::stop() {
  {
    const std::lock_guard<std::mutex> lock(control_mutex_);
    if (stopped_) return;
    stopped_ = true;
    accepting_.store(false, std::memory_order_release);
    stopping_ = true;
    paused_ = false;
    work_cv_.notify_all();
  }
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

bool IngestPipeline::own_work(std::size_t worker_id) {
  for (std::size_t q = worker_id; q < queues_.size();
       q += options_.workers) {
    const std::lock_guard<std::mutex> lock(queues_[q]->mutex);
    if (!queues_[q]->lus.empty()) return true;
  }
  return false;
}

void IngestPipeline::worker_main(std::size_t worker_id) {
  std::vector<ShardedDirectory::LuApply> batch;
  batch.reserve(options_.batch_size);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(control_mutex_);
      work_cv_.wait(lock, [this, worker_id] {
        return stopping_ || (!paused_ && own_work(worker_id));
      });
    }
    bool drained_any = false;
    for (std::size_t q = worker_id; q < queues_.size();
         q += options_.workers) {
      SourceQueue& queue = *queues_[q];
      batch.clear();
      {
        const std::lock_guard<std::mutex> lock(queue.mutex);
        const std::size_t take =
            std::min(options_.batch_size, queue.lus.size());
        for (std::size_t i = 0; i < take; ++i) {
          const wire::LuMsg& msg = queue.lus[i];
          batch.push_back({msg.mn, msg.t, {msg.x, msg.y}, {msg.vx, msg.vy}});
        }
        queue.lus.erase(queue.lus.begin(),
                        queue.lus.begin() + static_cast<std::ptrdiff_t>(take));
      }
      if (batch.empty()) continue;
      drained_any = true;
      const std::size_t applied = directory_.apply_batch(batch);
      applied_.fetch_add(applied, std::memory_order_relaxed);
      rejected_stale_.fetch_add(batch.size() - applied,
                                std::memory_order_relaxed);
      batches_.fetch_add(1, std::memory_order_relaxed);
      if (pending_.fetch_sub(batch.size(), std::memory_order_acq_rel) ==
          batch.size()) {
        const std::lock_guard<std::mutex> lock(control_mutex_);
        idle_cv_.notify_all();
      }
    }
    if (!drained_any) {
      const std::lock_guard<std::mutex> lock(control_mutex_);
      if (stopping_) return;
    }
  }
}

IngestStats IngestPipeline::stats() const {
  IngestStats out;
  out.accepted = accepted_.load(std::memory_order_relaxed);
  out.rejected_full = rejected_full_.load(std::memory_order_relaxed);
  out.applied = applied_.load(std::memory_order_relaxed);
  out.rejected_stale = rejected_stale_.load(std::memory_order_relaxed);
  out.batches = batches_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace mgrid::serve

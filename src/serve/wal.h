// Write-ahead log for the serving plane (mgrid-wal-v1).
//
// Durability contract: every LU admitted by the ingest pipeline is appended
// to the WAL *before* it becomes visible in the directory, and every tick
// barrier (flush + advance_estimates) is recorded as a kTick frame. Because
// directory state is a pure function of the per-MN LU substreams plus the
// tick schedule (see serve/replay.h), serially replaying the WAL reproduces
// the directory bit-identically — for any worker count the live process
// used.
//
// File layout:
//   [8-byte header: "MGWL" magic, version u8 = 1, 3 pad bytes]
//   repeated records: [u32 crc32c of frame][mgrid-lu-v1 wire frame]
// where the frame is a kLu or kTick message exactly as it would travel on
// the wire (wire.h). The CRC covers the whole frame including its header.
//
// Torn tails are expected after a crash: the reader stops deterministically
// at the first truncated, CRC-damaged or undecodable record and reports how
// many clean bytes precede it, so a recovering process can truncate the
// file to the consistent prefix before appending again.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "serve/wire.h"

namespace mgrid::serve {

/// CRC-32C (Castagnoli), software table implementation. Public for tests.
[[nodiscard]] std::uint32_t crc32c(const std::uint8_t* data, std::size_t len);

/// When the writer calls fsync(2).
enum class FsyncPolicy : std::uint8_t {
  kNever = 0,      ///< rely on the page cache (benchmarks, tests)
  kEveryTick = 1,  ///< once per tick barrier — the production default
  kEveryRecord = 2 ///< paranoid; throughput drops by orders of magnitude
};

[[nodiscard]] const char* to_string(FsyncPolicy policy) noexcept;

/// Appends CRC-framed wire records to a WAL file. Thread-safe: append() may
/// be called concurrently from ingest submit paths (each append is atomic
/// under an internal mutex). Lock ordering: callers holding a source-queue
/// lock may call append(); the WAL never calls back out.
class WalWriter {
 public:
  /// Opens (or creates) `path` for appending. When the file is empty a
  /// fresh header is written; when it already has content the caller is
  /// expected to have truncated it to a consistent prefix (recovery does
  /// this). Throws std::runtime_error on I/O errors or a foreign header.
  explicit WalWriter(const std::string& path,
                     FsyncPolicy policy = FsyncPolicy::kEveryTick);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one LU record. Returns false on write failure (the WAL is
  /// then considered broken; subsequent appends also fail).
  bool append(const wire::LuMsg& msg);
  /// Appends one tick-barrier record, honouring FsyncPolicy::kEveryTick.
  bool append_tick(double t, std::uint64_t tick);

  /// Forces an fsync regardless of policy. Returns false on failure.
  bool sync();

  /// Records appended by *this writer* (excludes pre-existing content).
  [[nodiscard]] std::uint64_t records_appended() const noexcept;
  /// Bytes appended by this writer.
  [[nodiscard]] std::uint64_t bytes_appended() const noexcept;
  /// True once any append or sync has failed.
  [[nodiscard]] bool failed() const noexcept;

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] FsyncPolicy policy() const noexcept { return policy_; }

 private:
  bool append_frame_locked(const std::vector<std::uint8_t>& frame);
  bool sync_locked();

  std::string path_;
  FsyncPolicy policy_;
  int fd_ = -1;
  mutable std::mutex mutex_;
  std::vector<std::uint8_t> scratch_;
  std::uint64_t records_ = 0;
  std::uint64_t bytes_ = 0;
  bool failed_ = false;
};

/// Why a WAL read pass stopped.
enum class WalReadStatus : std::uint8_t {
  kEnd = 0,        ///< clean end of file
  kTruncated = 1,  ///< partial record at the tail
  kBadCrc = 2,     ///< CRC mismatch (torn or bit-rotted record)
  kBadFrame = 3,   ///< CRC fine but the frame does not decode
};

[[nodiscard]] const char* to_string(WalReadStatus status) noexcept;

/// Result of reading a WAL file.
struct WalReadResult {
  /// Decoded records in file order (each a wire::LuMsg or wire::TickMsg).
  std::vector<wire::Message> records;
  /// Why reading stopped.
  WalReadStatus status = WalReadStatus::kEnd;
  /// Byte offset of the end of the last clean record (== the consistent
  /// prefix length, including the 8-byte file header). A recovering writer
  /// truncates the file to this offset.
  std::uint64_t consistent_bytes = 0;
  /// Byte offset just past record i (record_ends[i]); recovery uses this to
  /// truncate to a *tick-boundary* cut rather than merely the last clean
  /// record.
  std::vector<std::uint64_t> record_ends;
};

/// Reads a WAL file front to back, stopping deterministically at the first
/// damaged record. Never throws on damaged *content*; throws
/// std::runtime_error only when the file cannot be opened or its 8-byte
/// header is missing/foreign (wrong magic or unsupported version).
[[nodiscard]] WalReadResult read_wal(const std::string& path);

/// Truncates `path` to `bytes` (used after recovery to drop a torn tail).
/// Returns false on failure.
bool truncate_wal(const std::string& path, std::uint64_t bytes);

/// The 8-byte mgrid-wal-v1 file header. Public for tests.
inline constexpr std::uint8_t kWalHeader[8] = {'M', 'G', 'W', 'L',
                                               1,   0,   0,   0};

}  // namespace mgrid::serve

#include "serve/snapshot.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "serve/wal.h"

namespace mgrid::serve {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

double get_f64(const std::uint8_t* p) {
  return std::bit_cast<double>(get_u64(p));
}

}  // namespace

bool encode_snapshot(const ShardedDirectory& directory,
                     std::uint64_t wal_records, double snap_time,
                     std::vector<std::uint8_t>& bytes) {
  bytes.clear();
  bytes.insert(bytes.end(), kSnapshotMagic, kSnapshotMagic + 4);
  bytes.push_back(kSnapshotVersion);
  bytes.push_back(0);
  bytes.push_back(0);
  bytes.push_back(0);
  put_u64(bytes, wal_records);
  put_f64(bytes, snap_time);
  const std::size_t count_offset = bytes.size();
  put_u32(bytes, 0);  // patched below

  std::uint32_t track_count = 0;
  bool capture_failed = false;
  std::vector<double> words;
  directory.for_each_track([&](const broker::MnTrack& track) {
    if (capture_failed) return;
    words.clear();
    if (!track.save_state(words)) {
      capture_failed = true;
      return;
    }
    put_u32(bytes, track.mn());
    put_u32(bytes, static_cast<std::uint32_t>(words.size()));
    for (double w : words) put_f64(bytes, w);
    ++track_count;
  });
  if (capture_failed) return false;

  bytes[count_offset] = static_cast<std::uint8_t>(track_count);
  bytes[count_offset + 1] = static_cast<std::uint8_t>(track_count >> 8);
  bytes[count_offset + 2] = static_cast<std::uint8_t>(track_count >> 16);
  bytes[count_offset + 3] = static_cast<std::uint8_t>(track_count >> 24);
  put_u32(bytes, crc32c(bytes.data(), bytes.size()));
  return true;
}

bool write_snapshot(const ShardedDirectory& directory, const std::string& dir,
                    std::uint64_t wal_records, double snap_time) {
  std::vector<std::uint8_t> bytes;
  if (!encode_snapshot(directory, wal_records, snap_time, bytes)) return false;

  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  const fs::path final_path =
      fs::path(dir) / ("snap-" + std::to_string(wal_records));
  const fs::path tmp_path = final_path.string() + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) return false;
  }
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    fs::remove(tmp_path, ec);
    return false;
  }
  return true;
}

bool decode_snapshot(const std::uint8_t* data, std::size_t size,
                     SnapshotData& out) {
  // Fixed part: magic(4) + version(1) + pad(3) + wal_records(8) +
  // snap_time(8) + track_count(4) + trailing crc(4).
  constexpr std::size_t kFixedBytes = 4 + 4 + 8 + 8 + 4 + 4;
  if (size < kFixedBytes) return false;
  if (std::memcmp(data, kSnapshotMagic, 4) != 0) return false;
  if (data[4] != kSnapshotVersion) return false;
  const std::uint32_t stored_crc = get_u32(data + size - 4);
  if (crc32c(data, size - 4) != stored_crc) return false;

  out.wal_records = get_u64(data + 8);
  out.snap_time = get_f64(data + 16);
  const std::uint32_t track_count = get_u32(data + 24);
  out.tracks.clear();
  out.tracks.reserve(track_count);
  std::size_t pos = 28;
  const std::size_t body_end = size - 4;
  for (std::uint32_t i = 0; i < track_count; ++i) {
    if (body_end - pos < 8) return false;
    SnapshotData::Track track;
    track.mn = get_u32(data + pos);
    const std::uint32_t word_count = get_u32(data + pos + 4);
    pos += 8;
    if ((body_end - pos) / 8 < word_count) return false;
    track.words.reserve(word_count);
    for (std::uint32_t w = 0; w < word_count; ++w) {
      track.words.push_back(get_f64(data + pos));
      pos += 8;
    }
    out.tracks.push_back(std::move(track));
  }
  return pos == body_end;
}

bool load_snapshot(const std::string& path, SnapshotData& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  return decode_snapshot(bytes.data(), bytes.size(), out);
}

std::size_t apply_snapshot(ShardedDirectory& directory,
                           const SnapshotData& snapshot) {
  std::size_t restored = 0;
  for (const SnapshotData::Track& track : snapshot.tracks) {
    const double* it = track.words.data();
    const double* end = it + track.words.size();
    // A valid track consumes exactly its word vector; leftovers mean the
    // state was written by a differently-configured estimator stack.
    if (directory.restore_track(track.mn, it, end) && it == end) {
      ++restored;
    }
  }
  return restored;
}

std::vector<std::string> list_snapshots(const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<std::pair<std::uint64_t, std::string>> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("snap-", 0) != 0) continue;
    const std::string tail = name.substr(5);
    if (tail.empty() ||
        tail.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    found.emplace_back(std::stoull(tail), entry.path().string());
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::string> paths;
  paths.reserve(found.size());
  for (auto& [n, path] : found) paths.push_back(std::move(path));
  return paths;
}

}  // namespace mgrid::serve

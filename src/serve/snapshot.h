// Directory snapshots (mgrid-snap-v1).
//
// A snapshot is a point-in-time serialization of every MnTrack in a
// ShardedDirectory — fixes, bounded history and estimator internals, all as
// raw IEEE-754 bit patterns — taken at a tick barrier so it corresponds to
// an exact WAL position. Recovery loads the newest valid snapshot and
// replays only the WAL records after `wal_records`, bounding restart time
// regardless of WAL length.
//
// File layout (little-endian):
//   magic   "MGSN" (4 bytes)
//   version u8 = 1, pad u8[3]
//   wal_records u64   — WAL records covered by this snapshot
//   snap_time f64     — sim-time of the covering tick barrier
//   track_count u32
//   per track: mn u32, word_count u32, f64[word_count] (MnTrack state)
//   crc u32           — crc32c over everything before it
//
// Snapshots are written atomically (tmp file + rename) and named
// "snap-<wal_records>" so the newest is discoverable by scanning the WAL
// directory. A damaged snapshot fails its CRC and recovery falls back to
// the next-older one.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/directory.h"

namespace mgrid::serve {

inline constexpr std::uint8_t kSnapshotMagic[4] = {'M', 'G', 'S', 'N'};
inline constexpr std::uint8_t kSnapshotVersion = 1;

/// Serializes `directory` to `<dir>/snap-<wal_records>` via tmp + rename.
/// Must be called at a tick barrier (no concurrent apply_batch /
/// advance_estimates), with `wal_records` = the WAL writer's record count
/// at that barrier. Returns false on I/O failure or when any track refuses
/// state capture (estimator without save_state support).
bool write_snapshot(const ShardedDirectory& directory, const std::string& dir,
                    std::uint64_t wal_records, double snap_time);

/// Serializes `directory` to an in-memory mgrid-snap-v1 image (the exact
/// bytes write_snapshot() would put on disk) — the cluster layer ships this
/// over the wire to bootstrap followers and hand off shards. Same barrier
/// requirement as write_snapshot(); returns false when any track refuses
/// state capture (`out` is then unspecified).
bool encode_snapshot(const ShardedDirectory& directory,
                     std::uint64_t wal_records, double snap_time,
                     std::vector<std::uint8_t>& out);

/// A parsed snapshot, not yet applied to a directory.
struct SnapshotData {
  std::uint64_t wal_records = 0;
  double snap_time = 0.0;
  struct Track {
    std::uint32_t mn = 0;
    std::vector<double> words;
  };
  std::vector<Track> tracks;
};

/// Loads and validates one snapshot file. Returns false (out unspecified)
/// on any damage: short file, foreign magic, unsupported version, CRC
/// mismatch or inconsistent counts. Never throws on damaged content.
[[nodiscard]] bool load_snapshot(const std::string& path, SnapshotData& out);

/// Parses an in-memory mgrid-snap-v1 image (load_snapshot() minus the
/// file read) — the receiving side of snapshot shipping. Same validation
/// and failure contract as load_snapshot().
[[nodiscard]] bool decode_snapshot(const std::uint8_t* data, std::size_t size,
                                   SnapshotData& out);

/// Applies a parsed snapshot to an *empty* directory. Returns the number of
/// tracks restored; tracks whose state fails validation are skipped (the
/// caller should treat restored < tracks.size() as a damaged snapshot).
std::size_t apply_snapshot(ShardedDirectory& directory,
                           const SnapshotData& snapshot);

/// Paths of "snap-<n>" files in `dir`, newest (largest n) first.
[[nodiscard]] std::vector<std::string> list_snapshots(const std::string& dir);

}  // namespace mgrid::serve

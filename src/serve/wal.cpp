#include "serve/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "obs/metrics.h"

namespace mgrid::serve {

namespace {

struct WalMetrics {
  obs::Counter records;
  obs::Counter bytes;
  obs::Counter syncs;

  explicit WalMetrics(obs::MetricsRegistry& registry) {
    records = registry.counter("mgrid_wal_records_total", {},
                               "Records appended to the write-ahead log");
    bytes = registry.counter("mgrid_wal_bytes_total", {},
                             "Bytes appended to the write-ahead log");
    syncs = registry.counter("mgrid_wal_syncs_total", {},
                             "fsync(2) calls issued by the WAL writer");
  }
};

WalMetrics& wal_metrics() { return obs::instruments<WalMetrics>(); }

// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
// same checksum used by iSCSI/ext4. Table generated once at startup; a
// software implementation keeps the WAL dependency-free.
std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<std::uint32_t, 256>& crc32c_table() {
  static const std::array<std::uint32_t, 256> table = make_crc32c_table();
  return table;
}

void put_u32_le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t get_u32_le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

bool write_all(int fd, const std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

std::uint32_t crc32c(const std::uint8_t* data, std::size_t len) {
  const auto& table = crc32c_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ data[i]) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

const char* to_string(FsyncPolicy policy) noexcept {
  switch (policy) {
    case FsyncPolicy::kNever:
      return "never";
    case FsyncPolicy::kEveryTick:
      return "every_tick";
    case FsyncPolicy::kEveryRecord:
      return "every_record";
  }
  return "unknown";
}

const char* to_string(WalReadStatus status) noexcept {
  switch (status) {
    case WalReadStatus::kEnd:
      return "end";
    case WalReadStatus::kTruncated:
      return "truncated";
    case WalReadStatus::kBadCrc:
      return "bad_crc";
    case WalReadStatus::kBadFrame:
      return "bad_frame";
  }
  return "unknown";
}

WalWriter::WalWriter(const std::string& path, FsyncPolicy policy)
    : path_(path), policy_(policy) {
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("WalWriter: cannot open " + path + ": " +
                             std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd_, &st) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("WalWriter: fstat failed for " + path);
  }
  if (st.st_size == 0) {
    if (!write_all(fd_, kWalHeader, sizeof(kWalHeader))) {
      ::close(fd_);
      fd_ = -1;
      throw std::runtime_error("WalWriter: cannot write header to " + path);
    }
  } else {
    // Appending to an existing file: verify it really is an mgrid-wal-v1
    // file so we never corrupt some unrelated file handed to us by mistake.
    std::ifstream in(path, std::ios::binary);
    std::array<char, sizeof(kWalHeader)> header{};
    in.read(header.data(), header.size());
    if (!in ||
        std::memcmp(header.data(), kWalHeader, 4) != 0 ||
        static_cast<std::uint8_t>(header[4]) != kWalHeader[4]) {
      ::close(fd_);
      fd_ = -1;
      throw std::runtime_error("WalWriter: " + path +
                               " is not an mgrid-wal-v1 file");
    }
  }
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
  }
}

bool WalWriter::append_frame_locked(const std::vector<std::uint8_t>& frame) {
  if (failed_ || fd_ < 0) return false;
  scratch_.clear();
  put_u32_le(scratch_, crc32c(frame.data(), frame.size()));
  scratch_.insert(scratch_.end(), frame.begin(), frame.end());
  if (!write_all(fd_, scratch_.data(), scratch_.size())) {
    failed_ = true;
    return false;
  }
  records_ += 1;
  bytes_ += scratch_.size();
  if (obs::enabled()) {
    WalMetrics& metrics = wal_metrics();
    metrics.records.inc();
    metrics.bytes.inc(scratch_.size());
  }
  if (policy_ == FsyncPolicy::kEveryRecord) return sync_locked();
  return true;
}

bool WalWriter::sync_locked() {
  if (failed_ || fd_ < 0) return false;
  if (::fsync(fd_) != 0) {
    failed_ = true;
    return false;
  }
  if (obs::enabled()) wal_metrics().syncs.inc();
  return true;
}

bool WalWriter::append(const wire::LuMsg& msg) {
  std::vector<std::uint8_t> frame;
  wire::encode(frame, msg);
  std::lock_guard<std::mutex> lock(mutex_);
  return append_frame_locked(frame);
}

bool WalWriter::append_tick(double t, std::uint64_t tick) {
  std::vector<std::uint8_t> frame;
  wire::encode(frame, wire::TickMsg{t, tick});
  std::lock_guard<std::mutex> lock(mutex_);
  if (!append_frame_locked(frame)) return false;
  if (policy_ == FsyncPolicy::kEveryTick) return sync_locked();
  return true;
}

bool WalWriter::sync() {
  std::lock_guard<std::mutex> lock(mutex_);
  return sync_locked();
}

std::uint64_t WalWriter::records_appended() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

std::uint64_t WalWriter::bytes_appended() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

bool WalWriter::failed() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return failed_;
}

WalReadResult read_wal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("read_wal: cannot open " + path);
  }
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  if (bytes.size() < sizeof(kWalHeader)) {
    throw std::runtime_error("read_wal: " + path +
                             " is too short to be a WAL file");
  }
  if (std::memcmp(bytes.data(), kWalHeader, 4) != 0) {
    throw std::runtime_error("read_wal: " + path + " has a foreign header");
  }
  if (bytes[4] != kWalHeader[4]) {
    throw std::runtime_error("read_wal: " + path +
                             " has unsupported WAL version " +
                             std::to_string(bytes[4]));
  }

  WalReadResult result;
  std::size_t pos = sizeof(kWalHeader);
  result.consistent_bytes = pos;
  while (pos < bytes.size()) {
    // [u32 crc][frame]: we need at least the CRC plus a frame header to
    // know the record length.
    if (bytes.size() - pos < 4 + wire::kHeaderBytes) {
      result.status = WalReadStatus::kTruncated;
      return result;
    }
    const std::uint32_t stored_crc = get_u32_le(bytes.data() + pos);
    const std::uint8_t* frame = bytes.data() + pos + 4;
    const std::size_t avail = bytes.size() - pos - 4;
    const wire::Decoded decoded =
        wire::decode_frame(std::span<const std::uint8_t>(frame, avail));
    if (decoded.status == wire::DecodeStatus::kNeedMoreData) {
      result.status = WalReadStatus::kTruncated;
      return result;
    }
    if (!decoded.ok()) {
      result.status = WalReadStatus::kBadFrame;
      return result;
    }
    if (crc32c(frame, decoded.consumed) != stored_crc) {
      result.status = WalReadStatus::kBadCrc;
      return result;
    }
    result.records.push_back(decoded.msg);
    pos += 4 + decoded.consumed;
    result.consistent_bytes = pos;
    result.record_ends.push_back(pos);
  }
  result.status = WalReadStatus::kEnd;
  return result;
}

bool truncate_wal(const std::string& path, std::uint64_t bytes) {
  return ::truncate(path.c_str(), static_cast<off_t>(bytes)) == 0;
}

}  // namespace mgrid::serve

#include "serve/admin.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string_view>
#include <thread>
#include <utility>

#include "obs/export.h"
#include "obs/prof.h"

namespace mgrid::serve {

namespace {

/// `name{k="v",...}` for /varz lines (labels are registry-sorted already).
std::string varz_series_name(const obs::MetricSample& sample) {
  if (sample.labels.empty()) return sample.name;
  std::string out = sample.name;
  out += '{';
  bool first = true;
  for (const auto& [key, value] : sample.labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    out += util::json_escape(value);
    out += '"';
  }
  out += '}';
  return out;
}

/// Value of `name` in a query string ("a=1&b=2"), "" when absent.
std::string query_param(std::string_view query, std::string_view name) {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t end = query.find('&', pos);
    if (end == std::string_view::npos) end = query.size();
    const std::string_view pair = query.substr(pos, end - pos);
    const std::size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == name) {
      return std::string(pair.substr(eq + 1));
    }
    pos = end + 1;
  }
  return {};
}

/// 64-bit trace ids travel as fixed-width hex strings: JSON numbers are
/// doubles and would silently corrupt ids above 2^53.
std::string hex_trace_id(std::uint64_t id) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(id));
  return buffer;
}

void write_span(util::JsonWriter& json, const obs::LuSpan& span) {
  json.begin_object();
  json.field("trace_id", hex_trace_id(span.trace_id));
  json.field("mn", static_cast<std::uint64_t>(span.mn));
  json.field("seq", static_cast<std::uint64_t>(span.seq));
  json.field("source", static_cast<std::uint64_t>(span.source));
  json.field("tid", static_cast<std::uint64_t>(span.tid));
  json.field("wall_us", span.wall_us);
  json.field("total_seconds", span.total_seconds);
  json.key("stages").begin_object();
  for (std::size_t i = 0; i < obs::kLuStageCount; ++i) {
    json.field(obs::lu_stage_name(static_cast<obs::LuStage>(i)),
               span.stage_seconds[i]);
  }
  json.end_object();
  json.end_object();
}

void write_window(util::JsonWriter& json, const char* name,
                  const obs::SloWindowStats& window,
                  const obs::SloObjective& objective) {
  json.key(name).begin_object();
  json.field("count", window.count);
  json.field("bad", window.bad);
  json.field("bad_fraction", window.bad_fraction());
  json.field("burn_rate", window.burn_rate(objective));
  json.field("p50", window.p50);
  json.field("p95", window.p95);
  json.field("p99", window.p99);
  json.field("max", window.max);
  json.end_object();
}

}  // namespace

AdminServer::AdminServer(AdminOptions options, AdminHooks hooks)
    : options_(std::move(options)),
      hooks_(std::move(hooks)),
      server_(options_.http, [this](const obs::http::Request& request) {
        return handle(request);
      }) {
  if (hooks_.registry == nullptr) {
    hooks_.registry = &obs::current_registry();
  }
}

AdminServer::~AdminServer() { stop(); }

void AdminServer::start() {
  started_ = std::chrono::steady_clock::now();
  server_.start();
}

void AdminServer::stop() { server_.stop(); }

void AdminServer::rebind(ShardedDirectory* directory, IngestPipeline* pipeline,
                         WalWriter* wal) {
  const std::lock_guard<std::mutex> lock(rebind_mutex_);
  hooks_.directory = directory;
  hooks_.pipeline = pipeline;
  hooks_.wal = wal;
}

std::uint16_t AdminServer::port() const noexcept { return server_.port(); }

bool AdminServer::running() const noexcept { return server_.running(); }

obs::http::ServerStats AdminServer::http_stats() const {
  return server_.stats();
}

obs::http::Response AdminServer::handle(const obs::http::Request& request) {
  if (request.method != "GET" && request.method != "HEAD") {
    return obs::http::Response::text(405, "method not allowed\n");
  }
  if (request.path == "/metrics") return metrics();
  if (request.path == "/healthz") {
    return obs::http::Response::text(200, "ok\n");
  }
  if (request.path == "/readyz") return readyz();
  if (request.path == "/statusz") return statusz();
  if (request.path == "/varz") return varz();
  if (request.path == "/tracez") return tracez(request);
  if (request.path == "/clusterz") {
    if (hooks_.clusterz) return hooks_.clusterz(request);
    return obs::http::Response::text(404, "no federation collector attached\n");
  }
  if (request.path == "/profilez") return profilez(request);
  if (request.path == "/quitz") {
    quit_requests_.fetch_add(1, std::memory_order_relaxed);
    if (hooks_.on_quit) hooks_.on_quit();
    return obs::http::Response::text(200, "shutting down\n");
  }
  if (request.path == "/") {
    return obs::http::Response::text(
        200,
        "mgrid admin\n"
        "  /metrics /healthz /readyz /statusz /varz /tracez /clusterz"
        " /profilez /quitz\n");
  }
  return obs::http::Response::not_found();
}

obs::http::Response AdminServer::metrics() const {
  return obs::http::Response::text(
      200, obs::to_prometheus(hooks_.registry->snapshot()));
}

obs::http::Response AdminServer::varz() const {
  const obs::MetricsSnapshot snapshot = hooks_.registry->snapshot();
  std::string body;
  for (const obs::MetricSample& sample : snapshot.samples) {
    body += varz_series_name(sample);
    body += ' ';
    if (sample.kind == obs::MetricKind::kHistogram) {
      body += "count=" + std::to_string(sample.count);
      body += " sum=" + std::to_string(sample.sum);
      body += " mean=" + std::to_string(sample.mean);
      body += " max=" + std::to_string(sample.max);
    } else {
      body += std::to_string(sample.value);
    }
    body += '\n';
  }
  return obs::http::Response::text(200, body);
}

bool AdminServer::is_ready(std::string* reason) const {
  IngestPipeline* pipeline = nullptr;
  {
    const std::lock_guard<std::mutex> lock(rebind_mutex_);
    pipeline = hooks_.pipeline;
  }
  if (pipeline != nullptr) {
    const std::uint64_t pending = pipeline->pending();
    if (pending > options_.ready_max_pending) {
      if (reason != nullptr) {
        *reason = "ingest backlog: " + std::to_string(pending) +
                  " pending > " + std::to_string(options_.ready_max_pending);
      }
      return false;
    }
  }
  if (hooks_.ready && !hooks_.ready(reason)) {
    if (reason != nullptr && reason->empty()) *reason = "driver not ready";
    return false;
  }
  return true;
}

obs::http::Response AdminServer::tracez(
    const obs::http::Request& request) const {
  if (hooks_.spans == nullptr) {
    return obs::http::Response::text(404, "no span tracer attached\n");
  }
  std::size_t top_k = hooks_.spans->options().top_k;
  const std::string k_param = query_param(request.query, "k");
  if (!k_param.empty()) {
    try {
      top_k = std::min<std::size_t>(top_k, std::stoul(k_param));
    } catch (...) {
      return obs::http::Response::text(400, "bad k parameter\n");
    }
  }

  const obs::SpanSnapshot spans = hooks_.spans->snapshot();
  // Join each SLI against its SLO objective when a monitor is attached, so
  // a /tracez page shows the threshold the slow traces violated.
  obs::SloReport slo_report;
  if (hooks_.slo != nullptr) slo_report = hooks_.slo->report();

  util::JsonWriter json;
  json.begin_object();
  json.field("schema", "mgrid-tracez-v1");
  json.field("enabled", hooks_.spans->enabled());
  json.field("sample_period", spans.sample_period);
  json.field("sampled", spans.sampled);
  json.field("dropped", spans.dropped);
  json.key("slis").begin_array();
  for (const obs::SliSpans& sli : spans.slis) {
    json.begin_object();
    json.field("name", sli.name);
    json.field("recorded", sli.recorded);
    json.field("lo", sli.lo);
    json.field("hi", sli.hi);
    json.field("buckets", static_cast<std::uint64_t>(sli.buckets));
    if (const obs::SloSliReport* objective = slo_report.find(sli.name)) {
      json.key("objective").begin_object();
      json.field("threshold", objective->objective.threshold);
      json.field("target_fraction", objective->objective.target_fraction);
      json.field("state", obs::slo_state_name(objective->state));
      json.end_object();
    }
    json.key("exemplars").begin_array();
    for (const obs::BucketExemplar& exemplar : sli.exemplars) {
      json.begin_object();
      json.field("bucket", static_cast<std::uint64_t>(exemplar.bucket));
      if (std::isinf(exemplar.le)) {
        json.field("le", "+Inf");
      } else {
        json.field("le", exemplar.le);
      }
      json.key("trace");
      write_span(json, exemplar.span);
      json.end_object();
    }
    json.end_array();
    json.key("slowest").begin_array();
    const std::size_t count = std::min(top_k, sli.slowest.size());
    for (std::size_t i = 0; i < count; ++i) {
      write_span(json, sli.slowest[i]);
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return obs::http::Response::json(200, json.str());
}

obs::http::Response AdminServer::profilez(
    const obs::http::Request& request) const {
  double seconds = 2.0;
  const std::string seconds_param = query_param(request.query, "seconds");
  if (!seconds_param.empty()) {
    try {
      seconds = std::stod(seconds_param);
    } catch (...) {
      return obs::http::Response::text(400, "bad seconds parameter\n");
    }
  }
  seconds = std::clamp(seconds, 0.1, 30.0);
  if (obs::CpuProfiler::running()) {
    return obs::http::Response::text(503, "profiler already running\n");
  }
  if (!obs::CpuProfiler::start()) {
    return obs::http::Response::text(503, "profiler unavailable\n");
  }
  // Deliberately synchronous: one HTTP worker sleeps for the window while
  // the process runs; the pool has another worker for health checks.
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  const obs::ProfileReport report = obs::CpuProfiler::stop();
  std::string body = "# mgrid cpu profile: ";
  body += std::to_string(report.samples) + " samples @ " +
          std::to_string(report.hz) + " Hz over " +
          std::to_string(report.duration_seconds) + "s, " +
          std::to_string(report.threads) + " threads, " +
          std::to_string(report.dropped) + " dropped\n";
  body += report.folded;
  return obs::http::Response::text(200, body);
}

obs::http::Response AdminServer::readyz() const {
  std::string reason;
  if (is_ready(&reason)) return obs::http::Response::text(200, "ready\n");
  return obs::http::Response::text(503, "not ready: " + reason + "\n");
}

obs::http::Response AdminServer::statusz() const {
  ShardedDirectory* directory = nullptr;
  IngestPipeline* pipeline = nullptr;
  WalWriter* wal = nullptr;
  {
    const std::lock_guard<std::mutex> lock(rebind_mutex_);
    directory = hooks_.directory;
    pipeline = hooks_.pipeline;
    wal = hooks_.wal;
  }
  util::JsonWriter json;
  json.begin_object();
  json.field("schema", "mgrid-statusz-v1");
  json.field("build", options_.build_info);
  json.field("role", obs::role());
  json.field("uptime_seconds",
             std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           started_)
                 .count());
  std::string not_ready_reason;
  const bool ready = is_ready(&not_ready_reason);
  json.field("ready", ready);
  if (!ready) json.field("not_ready_reason", not_ready_reason);
  json.field("quit_requests",
             quit_requests_.load(std::memory_order_relaxed));

  const obs::http::ServerStats http = server_.stats();
  json.key("http").begin_object();
  json.field("accepted", http.accepted);
  json.field("served", http.served);
  json.field("rejected_busy", http.rejected_busy);
  json.field("bad_requests", http.bad_requests);
  json.field("io_errors", http.io_errors);
  json.field("requests", http.requests);
  json.end_object();

  if (directory != nullptr) {
    json.key("directory").begin_object();
    json.field("size", static_cast<std::uint64_t>(directory->size()));
    json.field("shards",
               static_cast<std::uint64_t>(directory->shard_count()));
    json.field("degraded", directory->degraded());
    json.key("shard_sizes").begin_array();
    for (const std::size_t size : directory->shard_sizes()) {
      json.value(static_cast<std::uint64_t>(size));
    }
    json.end_array();
    if (hooks_.sim_now) {
      const ShardedDirectory::StalenessSummary staleness =
          directory->staleness_summary(hooks_.sim_now());
      json.key("staleness").begin_object();
      json.field("tracked", static_cast<std::uint64_t>(staleness.tracked));
      json.field("mean_seconds", staleness.mean_seconds);
      json.field("p99_seconds", staleness.p99_seconds);
      json.field("max_seconds", staleness.max_seconds);
      json.end_object();
    }
    json.end_object();
  }

  if (wal != nullptr) {
    json.key("wal").begin_object();
    json.field("path", wal->path());
    json.field("fsync", to_string(wal->policy()));
    json.field("records_appended", wal->records_appended());
    json.field("bytes_appended", wal->bytes_appended());
    json.field("failed", wal->failed());
    json.end_object();
  }

  if (pipeline != nullptr) {
    const IngestStats stats = pipeline->stats();
    json.key("ingest").begin_object();
    json.field("accepted", stats.accepted);
    json.field("applied", stats.applied);
    json.field("rejected_full", stats.rejected_full);
    json.field("rejected_stale", stats.rejected_stale);
    json.field("shed_low_info", stats.shed_low_info);
    json.field("batches", stats.batches);
    json.field("pending", pipeline->pending());
    json.field("workers",
               static_cast<std::uint64_t>(pipeline->worker_count()));
    json.key("queue_depths").begin_array();
    for (const std::size_t depth : pipeline->queue_depths()) {
      json.value(static_cast<std::uint64_t>(depth));
    }
    json.end_array();
    json.end_object();
  }

  if (hooks_.slo != nullptr) {
    const obs::SloReport report = hooks_.slo->report();
    json.key("slo").begin_object();
    json.field("now", report.now);
    json.field("epoch_seconds", report.epoch_seconds);
    json.field("epochs_filled",
               static_cast<std::uint64_t>(report.epochs_filled));
    json.field("overall", obs::slo_state_name(report.overall));
    json.key("slis").begin_array();
    for (const obs::SloSliReport& sli : report.slis) {
      json.begin_object();
      json.field("name", sli.name);
      json.field("state", obs::slo_state_name(sli.state));
      json.key("objective").begin_object();
      json.field("threshold", sli.objective.threshold);
      json.field("target_fraction", sli.objective.target_fraction);
      json.end_object();
      write_window(json, "short_window", sli.short_window, sli.objective);
      write_window(json, "long_window", sli.long_window, sli.objective);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }

  if (hooks_.spans != nullptr) {
    const obs::SpanSnapshot spans = hooks_.spans->snapshot();
    json.key("spans").begin_object();
    json.field("enabled", hooks_.spans->enabled());
    json.field("sample_period", spans.sample_period);
    json.field("sampled", spans.sampled);
    json.field("dropped", spans.dropped);
    json.end_object();
  }

  if (hooks_.cluster_status) {
    json.key("cluster").begin_object();
    hooks_.cluster_status(json);
    json.end_object();
  }

  if (hooks_.extra_status) {
    json.key("driver").begin_object();
    hooks_.extra_status(json);
    json.end_object();
  }

  json.end_object();
  return obs::http::Response::json(200, json.str());
}

}  // namespace mgrid::serve

// Crash recovery for the serving plane: newest valid snapshot + WAL tail.
//
// recover_directory() rebuilds a ShardedDirectory to the exact state the
// crashed process had at its last completed tick barrier:
//
//   1. Read the WAL, stopping at the first damaged record (torn tail).
//   2. Try snapshots newest-first; a snapshot that fails its CRC, claims
//      more WAL records than exist, or restores fewer tracks than it
//      carries is rejected and the next-older one is tried (each attempt
//      starts from a fresh directory, so a half-applied reject cannot
//      leak state).
//   3. Replay WAL records after the snapshot's covered count, serially:
//      LUs via ShardedDirectory::update, tick barriers via
//      advance_estimates — the same order the live pipeline guaranteed
//      per MN, so the result is bit-identical for any worker count.
//   4. Stop at the last complete tick record (the consistent cut); LUs
//      after it belong to an unfinished tick and are dropped. The report
//      carries the cut's byte offset so the caller can truncate the WAL
//      before appending (resume never duplicates or resurrects records).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "serve/directory.h"
#include "serve/wal.h"

namespace mgrid::serve {

struct RecoverOptions {
  /// Directory holding the WAL file and "snap-<n>" snapshot files.
  std::string wal_dir;
  /// WAL file name inside wal_dir.
  std::string wal_file = "wal.log";
  /// Replay only to the last complete tick barrier (the consistent cut).
  /// false replays every clean LU — useful for forensics, not for resume.
  bool to_tick_boundary = true;
};

struct RecoverReport {
  /// False when the WAL file does not exist (fresh start, empty directory).
  bool wal_found = false;
  bool snapshot_loaded = false;
  std::string snapshot_path;
  std::size_t snapshots_rejected = 0;

  std::uint64_t wal_records_total = 0;    ///< clean records in the file
  std::uint64_t wal_records_skipped = 0;  ///< covered by the snapshot
  std::uint64_t lus_applied = 0;
  std::uint64_t lus_rejected = 0;
  std::uint64_t ticks_replayed = 0;
  std::uint64_t trailing_lus_dropped = 0;  ///< after the last tick barrier

  /// Last completed tick barrier (valid when has_barrier).
  bool has_barrier = false;
  double last_tick_t = 0.0;
  std::uint64_t last_tick = 0;

  /// Consistent cut: records and bytes the recovered state corresponds to.
  /// Truncate the WAL to consistent_bytes before reopening it for append.
  std::uint64_t consistent_records = 0;
  std::uint64_t consistent_bytes = 0;
  WalReadStatus tail_status = WalReadStatus::kEnd;
};

/// Rebuilds a directory from `options.wal_dir`. `make_directory` must
/// produce an empty directory configured exactly like the crashed
/// process's (same options and estimator prototype); it may be called more
/// than once when snapshots are rejected. Returns the recovered directory
/// (empty on a fresh start) and fills `report`. Throws std::runtime_error
/// only when the WAL file exists but cannot be opened or has a foreign
/// header — damaged *content* is handled, a foreign *file* is a config
/// error.
std::unique_ptr<ShardedDirectory> recover_directory(
    const RecoverOptions& options,
    const std::function<std::unique_ptr<ShardedDirectory>()>& make_directory,
    RecoverReport& report);

}  // namespace mgrid::serve

// mgrid-lu-v1: the serving layer's versioned binary wire protocol.
//
// Every frame is an 8-byte header followed by a fixed-size payload whose
// length is determined by the message type:
//
//   offset  size  field
//   0       2     magic   0x4D47 ("MG", little-endian u16)
//   2       1     version (1)
//   3       1     type    (MsgType)
//   4       4     payload_len (little-endian u32; must match the type)
//
// Payloads (all integers little-endian, doubles as IEEE-754 bit patterns):
//
//   kLu (1), 56 bytes:          mn u32, seq u32, t f64, x f64, y f64,
//                               vx f64, vy f64, battery f64
//   kAck (2), 16 bytes:         mn u32, status u8, pad u8[3], t f64
//   kLookup (3), 16 bytes:      mn u32, pad u32, t f64
//   kLookupReply (4), 32 bytes: mn u32, found u8, estimated u8, pad u16,
//                               t f64, x f64, y f64
//   kRegionQuery (5), 32 bytes: x f64, y f64, radius f64, max_results u32,
//                               pad u32
//   kNearestQuery (6), 24 bytes: x f64, y f64, k u32, pad u32
//   kTick (7), 16 bytes:        t f64, tick u64
//
// Cluster extensions (same version — an old decoder rejects them as
// kBadType and drops the connection, which is the desired failure mode for
// a mixed-version cluster):
//
//   kNeighbor (8), 32 bytes:    mn u32, pad u32, distance f64, x f64, y f64
//                               (one spatial-query hit; a query's reply is a
//                               kNeighbor stream closed by kQueryDone)
//   kQueryDone (9), 16 bytes:   count u32, pad u32, t f64
//   kSubscribe (10), 16 bytes:  from_record u64, flags u64
//                               (follower -> primary: stream your per-MN LU
//                               substream; the primary bootstraps the
//                               follower with a snapshot first)
//   kSnapshotChunk (11), VARIABLE payload (<= kMaxChunkBytes): raw bytes of
//                               an mgrid-snap-v1 image, in order
//   kSnapshotDone (12), 16 bytes: total_bytes u64, wal_records u64
//
// Version-2 extension (trace propagation). kTracedLu is the only frame
// whose header carries version 2; every other frame stays version 1, so a
// v1 peer keeps decoding plain traffic unchanged and rejects a traced frame
// cleanly as kBadVersion at the header (it never misparses the payload).
// A v2 decoder accepts both versions; senders emit kTracedLu only for the
// sampled slice of LUs, so mixed-version clusters interoperate as long as
// tracing stays off toward old peers:
//
//   kTracedLu (13), 88 bytes:   the kLu payload (56 bytes, same layout),
//                               then trace_id u64, origin_us u64,
//                               send_us u64, parent_stage u32, pad u32
//
// decode_frame() never throws on hostile bytes: it returns a typed status
// (bad magic / version / type / length, or "need more data" for a prefix of
// a valid frame) so a network reader can resynchronise or disconnect.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <variant>
#include <vector>

namespace mgrid::serve::wire {

inline constexpr std::uint16_t kMagic = 0x4D47;  // "MG"
inline constexpr std::uint8_t kVersion = 1;
/// Header version carried only by kTracedLu frames: a v1 decoder rejects
/// them as kBadVersion without touching the payload, a v2 decoder accepts
/// both versions. See the "Version-2 extension" header note.
inline constexpr std::uint8_t kTracedVersion = 2;
inline constexpr std::size_t kHeaderBytes = 8;

enum class MsgType : std::uint8_t {
  kLu = 1,
  kAck = 2,
  kLookup = 3,
  kLookupReply = 4,
  kRegionQuery = 5,
  kNearestQuery = 6,
  /// Tick barrier: "every LU before this frame has been applied; the
  /// directory then advanced its estimates to t". Emitted by the serving
  /// layer's write-ahead log at each flush/advance boundary so recovery can
  /// replay to a consistent cut (see serve/wal.h).
  kTick = 7,
  /// One spatial-query hit (server -> client). A query's reply is a
  /// kNeighbor stream terminated by kQueryDone, so the router can merge
  /// shard replies without knowing result counts up front.
  kNeighbor = 8,
  /// Terminates a kNeighbor stream; `count` echoes the hits sent.
  kQueryDone = 9,
  /// Follower -> primary: subscribe to the primary's LU substream. The
  /// primary bootstraps the subscriber with a snapshot (kSnapshotChunk* +
  /// kSnapshotDone) taken at the next tick barrier, then streams every
  /// subsequent kLu/kTick in WAL order (see cluster/replication.h).
  kSubscribe = 10,
  /// One chunk of an mgrid-snap-v1 image. The only variable-length frame:
  /// payload_len is the chunk size (<= kMaxChunkBytes).
  kSnapshotChunk = 11,
  /// Ends a snapshot transfer; total_bytes lets the receiver verify no
  /// chunk went missing before parsing.
  kSnapshotDone = 12,
  /// A kLu plus its trace context (version-2 frame). Emitted only for the
  /// deterministically sampled LU slice so one sampled update carries its
  /// trace id and upstream timestamps router -> shard -> follower.
  kTracedLu = 13,
};

enum class AckStatus : std::uint8_t {
  kOk = 0,
  kRejected = 1,  ///< LU refused (e.g. timestamp regression).
  kOverload = 2,  ///< Ingestion queue full; sender should back off.
};

/// A location update on the wire. `seq` is a per-source sequence number the
/// receiver echoes in acks (0 when unused).
struct LuMsg {
  std::uint32_t mn = 0;
  std::uint32_t seq = 0;
  double t = 0.0;
  double x = 0.0;
  double y = 0.0;
  double vx = 0.0;
  double vy = 0.0;
  double battery = 1.0;
};

struct AckMsg {
  std::uint32_t mn = 0;
  AckStatus status = AckStatus::kOk;
  double t = 0.0;
};

struct LookupMsg {
  std::uint32_t mn = 0;
  /// Query time the caller wants the belief evaluated at.
  double t = 0.0;
};

struct LookupReplyMsg {
  std::uint32_t mn = 0;
  bool found = false;
  bool estimated = false;
  double t = 0.0;
  double x = 0.0;
  double y = 0.0;
};

struct RegionQueryMsg {
  double x = 0.0;
  double y = 0.0;
  double radius = 0.0;
  std::uint32_t max_results = 0;  ///< 0 = unlimited.
};

struct NearestQueryMsg {
  double x = 0.0;
  double y = 0.0;
  std::uint32_t k = 0;
};

/// A tick barrier (WAL only): all preceding LUs were applied, then the
/// directory advanced estimates to `t`. `tick` is the driver's tick index.
struct TickMsg {
  double t = 0.0;
  std::uint64_t tick = 0;
};

/// One spatial-query hit on the wire (mirrors serve::Neighbor).
struct NeighborMsg {
  std::uint32_t mn = 0;
  double distance = 0.0;
  double x = 0.0;
  double y = 0.0;
};

/// Terminates a kNeighbor stream.
struct QueryDoneMsg {
  std::uint32_t count = 0;
  double t = 0.0;
};

/// Follower subscription request. `from_record` is reserved for resuming a
/// broken stream at a WAL position (0 = bootstrap from snapshot); `flags`
/// is reserved and must be 0.
struct SubscribeMsg {
  std::uint64_t from_record = 0;
  std::uint64_t flags = 0;
};

/// One chunk of a snapshot image. The single variable-length message; an
/// encoder may send any chunk size up to kMaxChunkBytes.
struct SnapshotChunkMsg {
  std::vector<std::uint8_t> bytes;
};

/// Ends a snapshot transfer.
struct SnapshotDoneMsg {
  std::uint64_t total_bytes = 0;
  std::uint64_t wal_records = 0;
};

/// Trace context propagated alongside a sampled LU. Timestamps are
/// CLOCK_MONOTONIC microseconds (obs::SpanTracer-compatible): comparable
/// across processes on one machine, which is where stage attribution is
/// meaningful; 0 = "not stamped by the sender".
struct TraceContext {
  std::uint64_t trace_id = 0;
  /// When the originating router accepted the LU (before batching).
  std::uint64_t origin_us = 0;
  /// When the batch containing the LU was flushed to the socket.
  std::uint64_t send_us = 0;
  /// static_cast<u32>(obs::LuStage): the sender's last completed stage
  /// (kNet from a router, kVisible from a primary's replication stream).
  std::uint32_t parent_stage = 0;
};

/// A location update carrying its trace context (version-2 frame).
struct TracedLuMsg {
  LuMsg lu;
  TraceContext trace;
};

/// Ceiling on a kSnapshotChunk payload; larger declared lengths are
/// kBadLength so a hostile header cannot make a reader buffer gigabytes.
inline constexpr std::size_t kMaxChunkBytes = 1 << 20;

using Message =
    std::variant<std::monostate, LuMsg, AckMsg, LookupMsg, LookupReplyMsg,
                 RegionQueryMsg, NearestQueryMsg, TickMsg, NeighborMsg,
                 QueryDoneMsg, SubscribeMsg, SnapshotChunkMsg,
                 SnapshotDoneMsg, TracedLuMsg>;

enum class DecodeStatus : std::uint8_t {
  kOk = 0,
  /// The buffer is a proper prefix of a valid frame — read more bytes.
  kNeedMoreData,
  kBadMagic,
  kBadVersion,
  kBadType,
  /// payload_len does not match the fixed size for the type.
  kBadLength,
};

[[nodiscard]] std::string_view to_string(DecodeStatus status) noexcept;
[[nodiscard]] std::string_view to_string(MsgType type) noexcept;

struct Decoded {
  DecodeStatus status = DecodeStatus::kNeedMoreData;
  /// Bytes consumed from the buffer (header + payload) when status == kOk;
  /// 0 otherwise.
  std::size_t consumed = 0;
  Message msg;

  [[nodiscard]] bool ok() const noexcept {
    return status == DecodeStatus::kOk;
  }
};

/// Sentinel returned by payload_size() for the variable-length type
/// (kSnapshotChunk): the header's payload_len is authoritative, bounded by
/// kMaxChunkBytes.
inline constexpr std::size_t kVariablePayload =
    static_cast<std::size_t>(-1);

/// Fixed payload size for a message type; kVariablePayload for
/// kSnapshotChunk; 0 for an unknown type byte.
[[nodiscard]] std::size_t payload_size(MsgType type) noexcept;

/// Appends one encoded frame to `out`. Returns the frame size in bytes.
std::size_t encode(std::vector<std::uint8_t>& out, const LuMsg& msg);
std::size_t encode(std::vector<std::uint8_t>& out, const AckMsg& msg);
std::size_t encode(std::vector<std::uint8_t>& out, const LookupMsg& msg);
std::size_t encode(std::vector<std::uint8_t>& out, const LookupReplyMsg& msg);
std::size_t encode(std::vector<std::uint8_t>& out, const RegionQueryMsg& msg);
std::size_t encode(std::vector<std::uint8_t>& out, const NearestQueryMsg& msg);
std::size_t encode(std::vector<std::uint8_t>& out, const TickMsg& msg);
std::size_t encode(std::vector<std::uint8_t>& out, const NeighborMsg& msg);
std::size_t encode(std::vector<std::uint8_t>& out, const QueryDoneMsg& msg);
std::size_t encode(std::vector<std::uint8_t>& out, const SubscribeMsg& msg);
/// Fails (returns 0, appends nothing) when msg.bytes > kMaxChunkBytes.
std::size_t encode(std::vector<std::uint8_t>& out, const SnapshotChunkMsg& msg);
std::size_t encode(std::vector<std::uint8_t>& out, const SnapshotDoneMsg& msg);
std::size_t encode(std::vector<std::uint8_t>& out, const TracedLuMsg& msg);

/// Decodes the frame at the start of `buffer`. Never throws; malformed
/// bytes yield a non-kOk status with consumed == 0 so the caller decides
/// whether to resync or drop the connection.
[[nodiscard]] Decoded decode_frame(std::span<const std::uint8_t> buffer);

}  // namespace mgrid::serve::wire

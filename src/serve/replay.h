// mgrid-eventlog-v1 replay for the serving layer.
//
// Loads a per-LU decision log recorded by a federation run (see
// obs/eventlog.h) and re-drives the broker-received LU stream through a
// ShardedDirectory via an IngestPipeline, tick by tick:
//
//   cycles = llround(run.duration / run.sample_period)
//   an LU sampled at time t is applied at tick
//       k = llround(t / run.sample_period) + run.pipeline_depth
//   for k = 1..cycles:  submit tick-k LUs -> flush -> advance_estimates(k*dt)
//
// The federation grants times t0 + k*step multiplicatively, every broker_rx
// record was actually delivered, and estimators see only (t, position,
// velocity) observations — so a faithful replay reproduces the recording
// federation's final per-MN views exactly (the cross-check in
// examples/mgrid_serve asserts 1e-9). Each LU is round-tripped through the
// mgrid-lu-v1 wire codec on the way in, so the replay exercises the full
// serving path: decode -> ingest -> shard -> estimator.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "estimation/estimator.h"
#include "serve/directory.h"
#include "serve/ingest.h"

namespace mgrid::serve {

/// Header context of a loaded eventlog (the "run" object plus document
/// counters).
struct ReplayRunInfo {
  double duration = 0.0;
  double sample_period = 0.0;
  std::uint64_t seed = 0;
  std::string filter;
  std::string estimator;
  double estimator_alpha = 0.0;
  double forecast_horizon = 0.0;
  bool map_match = false;
  std::uint32_t pipeline_depth = 0;
  std::uint32_t sample_every = 1;
  std::uint64_t dropped = 0;
};

/// One broker-received LU extracted from the log.
struct ReplayLu {
  std::uint32_t mn = 0;
  double t = 0.0;  ///< Sample time (== the broker's sampled_at).
  double x = 0.0;
  double y = 0.0;
  double vx = 0.0;
  double vy = 0.0;
};

struct ReplayLog {
  ReplayRunInfo run;
  /// broker_rx records only, in the document's (t, mn) order.
  std::vector<ReplayLu> lus;
  /// Total records in the document (including non-delivered ones).
  std::uint64_t records = 0;
};

/// Parses an mgrid-eventlog-v1 JSONL file. Throws std::runtime_error on an
/// unreadable file and util::JsonParseError / std::runtime_error on a
/// malformed or wrong-schema document.
[[nodiscard]] ReplayLog load_eventlog(const std::string& path);

/// True when the log can reproduce the recording run's final positions:
/// every LU present (sample_every <= 1, nothing dropped at capacity) and no
/// map-matched estimator (snapping needs the campus map, which the log does
/// not carry). `why` (optional) receives the reason when not exact.
[[nodiscard]] bool replay_is_exact(const ReplayLog& log,
                                   std::string* why = nullptr);

/// Builds the estimator chain the recording run used, from the logged
/// (estimator, alpha, sample_period, forecast_horizon) — the same factory
/// path run_experiment takes. Returns nullptr when the run had no
/// estimator. Throws std::runtime_error for map-matched runs.
[[nodiscard]] std::unique_ptr<estimation::LocationEstimator>
make_replay_estimator(const ReplayRunInfo& run);

struct ReplayReport {
  std::uint64_t lus_submitted = 0;
  std::uint64_t lus_dropped_wire = 0;  ///< Frames the codec refused.
  std::uint64_t estimates = 0;
  std::size_t ticks = 0;
};

/// Replays `log` into `directory` through `pipeline` (which must wrap
/// `directory`), with a flush barrier and an advance_estimates() per tick.
ReplayReport replay_eventlog(const ReplayLog& log, ShardedDirectory& directory,
                             IngestPipeline& pipeline);

}  // namespace mgrid::serve

#include "serve/directory.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <stdexcept>

#include "obs/metrics.h"

namespace mgrid::serve {

namespace {

struct ServeMetrics {
  obs::Counter updates;
  obs::Counter rejected;
  obs::Counter lookups;
  obs::Counter region_queries;
  obs::Counter nearest_queries;
  obs::Counter estimates;
  obs::Counter degraded_lookups;
  obs::Gauge degraded;
  obs::HistogramMetric update_seconds;
  obs::HistogramMetric lookup_seconds;
  obs::HistogramMetric region_seconds;
  obs::HistogramMetric nearest_seconds;

  explicit ServeMetrics(obs::MetricsRegistry& registry) {
    updates = registry.counter("mgrid_serve_updates_total", {},
                               "LUs applied to the serving directory");
    rejected = registry.counter("mgrid_serve_updates_rejected_total", {},
                                "LUs rejected (timestamp regression)");
    lookups = registry.counter("mgrid_serve_lookups_total", {},
                               "Single-MN lookups served");
    region_queries = registry.counter("mgrid_serve_region_queries_total", {},
                                      "Region queries served");
    nearest_queries = registry.counter(
        "mgrid_serve_nearest_queries_total", {}, "k-nearest queries served");
    estimates = registry.counter(
        "mgrid_serve_estimates_total", {},
        "Estimator forecasts recorded by advance_estimates");
    degraded_lookups = registry.counter(
        "mgrid_serve_degraded_lookups_total", {},
        "Bounded lookups answered while the directory was degraded");
    degraded = registry.gauge(
        "mgrid_serve_degraded", {},
        "1 while the directory is in degraded (stale-read) mode");
    update_seconds =
        registry.histogram("mgrid_serve_update_seconds", 0.0, 1e-3, 50, {},
                           "Latency of one directory update");
    lookup_seconds =
        registry.histogram("mgrid_serve_lookup_seconds", 0.0, 1e-3, 50, {},
                           "Latency of one directory lookup");
    region_seconds =
        registry.histogram("mgrid_serve_region_seconds", 0.0, 1e-2, 50, {},
                           "Latency of one region query");
    nearest_seconds =
        registry.histogram("mgrid_serve_nearest_seconds", 0.0, 1e-2, 50, {},
                           "Latency of one k-nearest query");
  }
};

ServeMetrics& serve_metrics() { return obs::instruments<ServeMetrics>(); }

/// Latency scope: samples steady_clock only when telemetry is on.
class LatencyTimer {
 public:
  explicit LatencyTimer(bool enabled) : enabled_(enabled) {
    if (enabled_) start_ = std::chrono::steady_clock::now();
  }
  void record(obs::HistogramMetric& histogram) const {
    if (!enabled_) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    histogram.observe(std::chrono::duration<double>(elapsed).count());
  }

 private:
  bool enabled_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

ShardedDirectory::ShardedDirectory(
    DirectoryOptions options,
    std::unique_ptr<estimation::LocationEstimator> estimator_prototype)
    : options_(options), prototype_(std::move(estimator_prototype)) {
  if (options_.shards == 0) {
    throw std::invalid_argument("ShardedDirectory: shards must be >= 1");
  }
  if (options_.history_limit == 0) {
    throw std::invalid_argument(
        "ShardedDirectory: history_limit must be >= 1");
  }
  if (!(options_.cell_size > 0.0)) {
    throw std::invalid_argument("ShardedDirectory: cell_size must be > 0");
  }
  shards_.reserve(options_.shards);
  for (std::size_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::int64_t ShardedDirectory::cell_key(geo::Vec2 position) const noexcept {
  const auto cx =
      static_cast<std::int32_t>(std::floor(position.x / options_.cell_size));
  const auto cy =
      static_cast<std::int32_t>(std::floor(position.y / options_.cell_size));
  return (static_cast<std::int64_t>(cx) << 32) |
         static_cast<std::int64_t>(static_cast<std::uint32_t>(cy));
}

void ShardedDirectory::index_position(Shard& shard, std::uint32_t mn,
                                      geo::Vec2 position) {
  const std::int64_t key = cell_key(position);
  auto it = shard.cell_of.find(mn);
  if (it != shard.cell_of.end()) {
    if (it->second == key) return;
    std::vector<std::uint32_t>& old_cell = shard.cells[it->second];
    old_cell.erase(std::find(old_cell.begin(), old_cell.end(), mn));
    if (old_cell.empty()) shard.cells.erase(it->second);
    it->second = key;
  } else {
    shard.cell_of.emplace(mn, key);
  }
  shard.cells[key].push_back(mn);
  if (!shard.has_bounds) {
    shard.has_bounds = true;
    shard.min_x = shard.max_x = position.x;
    shard.min_y = shard.max_y = position.y;
  } else {
    shard.min_x = std::min(shard.min_x, position.x);
    shard.max_x = std::max(shard.max_x, position.x);
    shard.min_y = std::min(shard.min_y, position.y);
    shard.max_y = std::max(shard.max_y, position.y);
  }
}

bool ShardedDirectory::update(std::uint32_t mn, SimTime t, geo::Vec2 position,
                              geo::Vec2 velocity) {
  const bool telemetry = obs::enabled();
  const LatencyTimer timer(telemetry);
  bool applied = false;
  {
    Shard& shard = shard_for(mn);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.tracks.find(mn);
    if (it == shard.tracks.end()) {
      it = shard.tracks
               .emplace(mn, broker::MnTrack(
                                mn, options_.history_limit,
                                prototype_ != nullptr ? prototype_->clone()
                                                      : nullptr))
               .first;
    }
    applied = it->second.apply_update(t, position, velocity);
    if (applied) index_position(shard, mn, position);
  }
  if (telemetry) {
    ServeMetrics& metrics = serve_metrics();
    (applied ? metrics.updates : metrics.rejected).inc();
    timer.record(metrics.update_seconds);
  }
  return applied;
}

std::size_t ShardedDirectory::apply_batch(const std::vector<LuApply>& batch) {
  // Bucket indices by destination shard, then take each shard lock once.
  std::vector<std::vector<std::size_t>> buckets(shards_.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    buckets[batch[i].mn % shards_.size()].push_back(i);
  }
  std::size_t applied = 0;
  for (std::size_t s = 0; s < buckets.size(); ++s) {
    if (buckets[s].empty()) continue;
    Shard& shard = *shards_[s];
    const std::lock_guard<std::mutex> lock(shard.mutex);
    for (std::size_t i : buckets[s]) {
      const LuApply& lu = batch[i];
      auto it = shard.tracks.find(lu.mn);
      if (it == shard.tracks.end()) {
        it = shard.tracks
                 .emplace(lu.mn,
                          broker::MnTrack(lu.mn, options_.history_limit,
                                          prototype_ != nullptr
                                              ? prototype_->clone()
                                              : nullptr))
                 .first;
      }
      if (it->second.apply_update(lu.t, lu.position, lu.velocity)) {
        index_position(shard, lu.mn, lu.position);
        ++applied;
      }
    }
  }
  if (obs::enabled()) {
    ServeMetrics& metrics = serve_metrics();
    if (applied > 0) metrics.updates.inc(applied);
    if (applied < batch.size()) metrics.rejected.inc(batch.size() - applied);
  }
  return applied;
}

std::optional<DirectoryEntry> ShardedDirectory::lookup(
    std::uint32_t mn) const {
  const bool telemetry = obs::enabled();
  const LatencyTimer timer(telemetry);
  std::optional<DirectoryEntry> entry;
  {
    Shard& shard = shard_for(mn);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.tracks.find(mn);
    if (it != shard.tracks.end()) {
      const broker::LocationFix& view = it->second.record().current_view;
      entry = DirectoryEntry{mn, view.t, view.position, view.estimated};
    }
  }
  if (telemetry) {
    ServeMetrics& metrics = serve_metrics();
    metrics.lookups.inc();
    timer.record(metrics.lookup_seconds);
  }
  return entry;
}

std::optional<geo::Vec2> ShardedDirectory::belief_at(std::uint32_t mn,
                                                     SimTime t) const {
  Shard& shard = shard_for(mn);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.tracks.find(mn);
  if (it == shard.tracks.end()) return std::nullopt;
  return it->second.belief_at(t);
}

std::size_t ShardedDirectory::advance_estimates(SimTime t) {
  std::size_t made = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    for (auto& [mn, track] : shard->tracks) {
      const std::optional<geo::Vec2> estimate = track.advance(t);
      if (estimate) {
        index_position(*shard, mn, *estimate);
        ++made;
      }
    }
  }
  if (made > 0 && obs::enabled()) serve_metrics().estimates.inc(made);
  return made;
}

void ShardedDirectory::scan_cell(const Shard& shard, std::int64_t key,
                                 geo::Vec2 center, double radius_sq,
                                 std::vector<Neighbor>& out) const {
  auto cell = shard.cells.find(key);
  if (cell == shard.cells.end()) return;
  for (std::uint32_t mn : cell->second) {
    const geo::Vec2 position =
        shard.tracks.at(mn).record().current_view.position;
    const geo::Vec2 d = position - center;
    const double dist_sq = d.x * d.x + d.y * d.y;
    if (dist_sq <= radius_sq) {
      out.push_back({mn, std::sqrt(dist_sq), position});
    }
  }
}

std::vector<Neighbor> ShardedDirectory::query_region(
    geo::Vec2 center, double radius, std::size_t max_results) const {
  const bool telemetry = obs::enabled();
  const LatencyTimer timer(telemetry);
  std::vector<Neighbor> hits;
  if (radius >= 0.0) {
    const double cell = options_.cell_size;
    const auto lo_x = static_cast<std::int64_t>(
        std::floor((center.x - radius) / cell));
    const auto hi_x = static_cast<std::int64_t>(
        std::floor((center.x + radius) / cell));
    const auto lo_y = static_cast<std::int64_t>(
        std::floor((center.y - radius) / cell));
    const auto hi_y = static_cast<std::int64_t>(
        std::floor((center.y + radius) / cell));
    const double radius_sq = radius * radius;
    for (const std::unique_ptr<Shard>& shard : shards_) {
      const std::lock_guard<std::mutex> lock(shard->mutex);
      const auto range_cells = static_cast<std::uint64_t>(hi_x - lo_x + 1) *
                               static_cast<std::uint64_t>(hi_y - lo_y + 1);
      if (range_cells > shard->cells.size()) {
        // Fewer occupied cells than cells in range: walk the index instead.
        for (const auto& [key, mns] : shard->cells) {
          const auto cx = static_cast<std::int32_t>(key >> 32);
          const auto cy = static_cast<std::int32_t>(
              static_cast<std::uint32_t>(key & 0xFFFFFFFF));
          if (cx < lo_x || cx > hi_x || cy < lo_y || cy > hi_y) continue;
          scan_cell(*shard, key, center, radius_sq, hits);
        }
      } else {
        for (std::int64_t cx = lo_x; cx <= hi_x; ++cx) {
          for (std::int64_t cy = lo_y; cy <= hi_y; ++cy) {
            const std::int64_t key =
                (cx << 32) |
                static_cast<std::int64_t>(
                    static_cast<std::uint32_t>(static_cast<std::int32_t>(cy)));
            scan_cell(*shard, key, center, radius_sq, hits);
          }
        }
      }
    }
  }
  std::sort(hits.begin(), hits.end(), [](const Neighbor& a, const Neighbor& b) {
    return a.distance != b.distance ? a.distance < b.distance : a.mn < b.mn;
  });
  if (max_results > 0 && hits.size() > max_results) {
    hits.resize(max_results);
  }
  if (telemetry) {
    ServeMetrics& metrics = serve_metrics();
    metrics.region_queries.inc();
    timer.record(metrics.region_seconds);
  }
  return hits;
}

std::vector<Neighbor> ShardedDirectory::k_nearest(geo::Vec2 center,
                                                  std::size_t k) const {
  const bool telemetry = obs::enabled();
  const LatencyTimer timer(telemetry);
  std::vector<Neighbor> merged;
  if (k > 0) {
    const double cell = options_.cell_size;
    const auto center_cx =
        static_cast<std::int64_t>(std::floor(center.x / cell));
    const auto center_cy =
        static_cast<std::int64_t>(std::floor(center.y / cell));
    for (const std::unique_ptr<Shard>& shard : shards_) {
      const std::lock_guard<std::mutex> lock(shard->mutex);
      if (!shard->has_bounds) continue;
      // Rings of cells at Chebyshev distance d from the centre cell. Every
      // point in ring d is at least (d-1)*cell away, so once we hold k hits
      // within that bound the shard is exhausted. The grown bounding box
      // caps the expansion for under-filled shards.
      const std::int64_t box_lo_x =
          static_cast<std::int64_t>(std::floor(shard->min_x / cell));
      const std::int64_t box_hi_x =
          static_cast<std::int64_t>(std::floor(shard->max_x / cell));
      const std::int64_t box_lo_y =
          static_cast<std::int64_t>(std::floor(shard->min_y / cell));
      const std::int64_t box_hi_y =
          static_cast<std::int64_t>(std::floor(shard->max_y / cell));
      const std::int64_t max_ring = std::max(
          std::max(std::abs(center_cx - box_lo_x),
                   std::abs(center_cx - box_hi_x)),
          std::max(std::abs(center_cy - box_lo_y),
                   std::abs(center_cy - box_hi_y)));
      std::vector<Neighbor> shard_hits;
      const double unlimited = std::numeric_limits<double>::infinity();
      for (std::int64_t ring = 0; ring <= max_ring; ++ring) {
        const double kth =
            shard_hits.size() >= k ? shard_hits[k - 1].distance : unlimited;
        if (static_cast<double>(ring - 1) * cell > kth) break;
        for (std::int64_t cx = center_cx - ring; cx <= center_cx + ring;
             ++cx) {
          for (std::int64_t cy = center_cy - ring; cy <= center_cy + ring;
               ++cy) {
            if (std::max(std::abs(cx - center_cx), std::abs(cy - center_cy)) !=
                ring) {
              continue;  // interior cells were scanned by smaller rings
            }
            const std::int64_t key =
                (cx << 32) |
                static_cast<std::int64_t>(
                    static_cast<std::uint32_t>(static_cast<std::int32_t>(cy)));
            scan_cell(*shard, key, center, unlimited, shard_hits);
          }
        }
        std::sort(shard_hits.begin(), shard_hits.end(),
                  [](const Neighbor& a, const Neighbor& b) {
                    return a.distance != b.distance ? a.distance < b.distance
                                                    : a.mn < b.mn;
                  });
        if (shard_hits.size() > k) shard_hits.resize(k);
      }
      merged.insert(merged.end(), shard_hits.begin(), shard_hits.end());
    }
    std::sort(merged.begin(), merged.end(),
              [](const Neighbor& a, const Neighbor& b) {
                return a.distance != b.distance ? a.distance < b.distance
                                                : a.mn < b.mn;
              });
    if (merged.size() > k) merged.resize(k);
  }
  if (telemetry) {
    ServeMetrics& metrics = serve_metrics();
    metrics.nearest_queries.inc();
    timer.record(metrics.nearest_seconds);
  }
  return merged;
}

std::vector<DirectoryEntry> ShardedDirectory::snapshot() const {
  std::vector<DirectoryEntry> out;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    for (const auto& [mn, track] : shard->tracks) {
      const broker::LocationFix& view = track.record().current_view;
      out.push_back({mn, view.t, view.position, view.estimated});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const DirectoryEntry& a, const DirectoryEntry& b) {
              return a.mn < b.mn;
            });
  return out;
}

std::size_t ShardedDirectory::size() const {
  std::size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->tracks.size();
  }
  return total;
}

std::vector<std::size_t> ShardedDirectory::shard_sizes() const {
  std::vector<std::size_t> sizes;
  sizes.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    sizes.push_back(shard->tracks.size());
  }
  return sizes;
}

void ShardedDirectory::set_degraded(bool degraded) noexcept {
  const bool was = degraded_.exchange(degraded, std::memory_order_relaxed);
  if (was != degraded && obs::enabled()) {
    serve_metrics().degraded.set(degraded ? 1.0 : 0.0);
  }
}

bool ShardedDirectory::degraded() const noexcept {
  return degraded_.load(std::memory_order_relaxed);
}

std::optional<ShardedDirectory::BoundedBelief> ShardedDirectory::lookup_bounded(
    std::uint32_t mn, SimTime now, double max_staleness) const {
  std::optional<BoundedBelief> belief;
  {
    Shard& shard = shard_for(mn);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.tracks.find(mn);
    if (it != shard.tracks.end()) {
      const broker::LocationFix& view = it->second.record().current_view;
      BoundedBelief b;
      b.entry = DirectoryEntry{mn, view.t, view.position, view.estimated};
      b.age_seconds = std::max(0.0, now - view.t);
      b.degraded = degraded();
      b.within_bound = b.age_seconds <= max_staleness;
      belief = b;
    }
  }
  if (belief && belief->degraded && obs::enabled()) {
    serve_metrics().degraded_lookups.inc();
  }
  return belief;
}

void ShardedDirectory::for_each_track(
    const std::function<void(const broker::MnTrack&)>& fn) const {
  std::vector<const broker::MnTrack*> sorted;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    sorted.clear();
    sorted.reserve(shard->tracks.size());
    for (const auto& [mn, track] : shard->tracks) sorted.push_back(&track);
    std::sort(sorted.begin(), sorted.end(),
              [](const broker::MnTrack* a, const broker::MnTrack* b) {
                return a->mn() < b->mn();
              });
    for (const broker::MnTrack* track : sorted) fn(*track);
  }
}

bool ShardedDirectory::restore_track(std::uint32_t mn, const double*& it,
                                     const double* end) {
  Shard& shard = shard_for(mn);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.tracks.count(mn) != 0) return false;
  broker::MnTrack track(mn, options_.history_limit,
                        prototype_ != nullptr ? prototype_->clone() : nullptr);
  if (!track.load_state(it, end)) return false;
  const bool indexable = track.has_report();
  const geo::Vec2 position = track.record().current_view.position;
  shard.tracks.emplace(mn, std::move(track));
  if (indexable) index_position(shard, mn, position);
  return true;
}

ShardedDirectory::StalenessSummary ShardedDirectory::staleness_summary(
    SimTime now) const {
  // One pass per shard under its lock collecting ages; the aggregation
  // (sum / p99 / max) happens lock-free afterwards. O(n) but called at
  // scrape/tick rate, not per operation.
  std::vector<double> ages;
  ages.reserve(64);
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    for (const auto& [mn, track] : shard->tracks) {
      if (!track.has_report()) continue;
      ages.push_back(std::max(0.0, now - track.last_reported_time()));
    }
  }
  StalenessSummary summary;
  summary.tracked = ages.size();
  if (ages.empty()) return summary;
  double sum = 0.0;
  for (double age : ages) {
    sum += age;
    summary.max_seconds = std::max(summary.max_seconds, age);
  }
  summary.mean_seconds = sum / static_cast<double>(ages.size());
  const std::size_t rank = std::min(
      ages.size() - 1,
      static_cast<std::size_t>(
          std::ceil(0.99 * static_cast<double>(ages.size())) - 1));
  std::nth_element(ages.begin(),
                   ages.begin() + static_cast<std::ptrdiff_t>(rank),
                   ages.end());
  summary.p99_seconds = ages[rank];
  return summary;
}

}  // namespace mgrid::serve

// Sharded online location directory — the serving-layer face of the grid
// broker's location DB.
//
// MN tracks are partitioned across N lock-striped shards (mn % shards);
// each shard owns its tracks (broker::MnTrack — the exact single-MN
// apply/estimate core the federation broker uses), a region index (uniform
// grid of cells over current-view positions) and a monotonically-grown
// bounding box used to terminate k-nearest ring expansion. All public
// operations are safe to call concurrently from any thread; an operation
// locks exactly the shards it touches, so updates and lookups for MNs on
// different shards never contend.
//
// Per-op latency histograms and op counters are recorded through the
// calling thread's obs::MetricsRegistry (see obs/metrics.h) when telemetry
// is enabled.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "broker/location_core.h"
#include "estimation/estimator.h"
#include "geo/vec2.h"
#include "util/types.h"

namespace mgrid::serve {

struct DirectoryOptions {
  /// Lock stripes (>= 1). Tracks live on shard mn % shards.
  std::size_t shards = 8;
  /// Fixes retained per MN (>= 1). The serving layer keeps a short history;
  /// the federation default (128) is tuned for offline diagnostics.
  std::size_t history_limit = 8;
  /// Region-index cell edge, metres (> 0).
  double cell_size = 50.0;
};

/// One MN's current view, copied out under the shard lock.
struct DirectoryEntry {
  std::uint32_t mn = 0;
  SimTime t = 0.0;
  geo::Vec2 position;
  /// True when the view is an estimator forecast rather than a received LU.
  bool estimated = false;
};

/// One spatial-query hit.
struct Neighbor {
  std::uint32_t mn = 0;
  double distance = 0.0;
  geo::Vec2 position;
};

class ShardedDirectory {
 public:
  /// `estimator_prototype` (may be nullptr: estimation disabled) is cloned
  /// per MN on first update, exactly like broker::LocationDb.
  explicit ShardedDirectory(
      DirectoryOptions options,
      std::unique_ptr<estimation::LocationEstimator> estimator_prototype =
          nullptr);

  /// Applies one LU. Returns false when the update is rejected (timestamp
  /// regression for the MN — see broker::MnTrack::apply_update).
  bool update(std::uint32_t mn, SimTime t, geo::Vec2 position,
              geo::Vec2 velocity);

  /// One LU of a batch apply.
  struct LuApply {
    std::uint32_t mn = 0;
    SimTime t = 0.0;
    geo::Vec2 position;
    geo::Vec2 velocity;
  };

  /// Applies a batch, grouped by destination shard so each touched shard is
  /// locked once (the ingestion pipeline's fast path). Per-MN submission
  /// order within the batch is preserved. Returns the number applied
  /// (rejected = batch size - applied).
  std::size_t apply_batch(const std::vector<LuApply>& batch);

  /// Current view of one MN (received fix or last recorded estimate).
  [[nodiscard]] std::optional<DirectoryEntry> lookup(std::uint32_t mn) const;

  /// Best belief about the MN's position *at time t* (estimator forecast
  /// when the last received fix is older than t; the fix otherwise).
  [[nodiscard]] std::optional<geo::Vec2> belief_at(std::uint32_t mn,
                                                   SimTime t) const;

  /// Refreshes every stale track's view with its estimator forecast at `t`
  /// (mirrors broker::LocationDb::advance_estimates) and moves the tracks
  /// in the region index. Returns the number of estimates recorded.
  std::size_t advance_estimates(SimTime t);

  /// All MNs whose current-view position lies within `radius` of `center`,
  /// sorted by (distance, mn). `max_results` 0 = unlimited.
  [[nodiscard]] std::vector<Neighbor> query_region(
      geo::Vec2 center, double radius, std::size_t max_results = 0) const;

  /// The k MNs nearest to `center` by current-view position, sorted by
  /// (distance, mn).
  [[nodiscard]] std::vector<Neighbor> k_nearest(geo::Vec2 center,
                                                std::size_t k) const;

  /// Every track's current view, sorted by MN id — the serving layer's
  /// analogue of the federation's final-position report.
  [[nodiscard]] std::vector<DirectoryEntry> snapshot() const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

  /// Track count per shard (occupancy view for the admin /statusz).
  [[nodiscard]] std::vector<std::size_t> shard_sizes() const;

  /// Location-staleness aggregate: sim-time since the last *received* LU
  /// per tracked MN, evaluated at `now`. This is the freshness SLI the SLO
  /// monitor tracks — estimator forecasts do not reset it, only applied
  /// LUs do. Negative ages (now earlier than a fix) clamp to 0.
  struct StalenessSummary {
    std::size_t tracked = 0;    ///< MNs with at least one received fix.
    double mean_seconds = 0.0;
    double p99_seconds = 0.0;   ///< Nearest-rank p99 across MNs.
    double max_seconds = 0.0;
  };
  [[nodiscard]] StalenessSummary staleness_summary(SimTime now) const;

  // --- Degraded read mode (overload / recovery) ---------------------------

  /// Flips the directory into (or out of) degraded mode. Set by the ingest
  /// pipeline when admission control starts shedding, and by recovery while
  /// the directory is being rebuilt. Reads keep working; callers that use
  /// lookup_bounded() learn the belief may be stale.
  void set_degraded(bool degraded) noexcept;
  [[nodiscard]] bool degraded() const noexcept;

  /// A lookup that reports *how stale* the answer is instead of pretending
  /// freshness. `within_bound` is false when the current view is older than
  /// `max_staleness` seconds at `now` — the caller decides whether a
  /// stale-but-bounded belief is still useful.
  struct BoundedBelief {
    DirectoryEntry entry;
    double age_seconds = 0.0;
    bool degraded = false;     ///< directory was degraded at lookup time
    bool within_bound = true;  ///< age_seconds <= max_staleness
  };
  [[nodiscard]] std::optional<BoundedBelief> lookup_bounded(
      std::uint32_t mn, SimTime now, double max_staleness) const;

  // --- Snapshot support (serve/snapshot.h) --------------------------------

  /// Visits every track shard by shard, sorted by MN id within each shard,
  /// under the shard lock. The callback must not call back into the
  /// directory (it would self-deadlock on the shard mutex).
  void for_each_track(
      const std::function<void(const broker::MnTrack&)>& fn) const;

  /// Re-creates one track from snapshot state: constructs it with this
  /// directory's configuration (history limit, estimator prototype clone),
  /// loads the serialized words and indexes the restored current view.
  /// Returns false (track not inserted) on malformed state or when the MN
  /// already exists.
  bool restore_track(std::uint32_t mn, const double*& it, const double* end);

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::uint32_t, broker::MnTrack> tracks;
    /// Region index: cell key -> MNs whose current view lies in the cell.
    std::unordered_map<std::int64_t, std::vector<std::uint32_t>> cells;
    /// Current cell of each indexed MN.
    std::unordered_map<std::uint32_t, std::int64_t> cell_of;
    /// Monotonically grown bounds of every position ever indexed; used only
    /// to stop k-nearest ring expansion, so over-approximation is safe.
    bool has_bounds = false;
    double min_x = 0.0, min_y = 0.0, max_x = 0.0, max_y = 0.0;
  };

  [[nodiscard]] Shard& shard_for(std::uint32_t mn) const noexcept {
    return *shards_[mn % shards_.size()];
  }
  [[nodiscard]] std::int64_t cell_key(geo::Vec2 position) const noexcept;
  /// Moves `mn` to the cell of `position` (caller holds the shard lock).
  void index_position(Shard& shard, std::uint32_t mn, geo::Vec2 position);
  /// Collects in-radius hits from one cell (caller holds the shard lock).
  void scan_cell(const Shard& shard, std::int64_t key, geo::Vec2 center,
                 double radius_sq, std::vector<Neighbor>& out) const;

  DirectoryOptions options_;
  std::unique_ptr<estimation::LocationEstimator> prototype_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> degraded_{false};
};

}  // namespace mgrid::serve

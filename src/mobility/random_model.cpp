#include "mobility/random_model.h"

#include <numbers>
#include <stdexcept>

namespace mgrid::mobility {

RandomMovementModel::RandomMovementModel(geo::Vec2 start, geo::Rect bounds,
                                         Params params, util::RngStream& rng)
    : position_(start), bounds_(bounds), params_(params) {
  if (!params.speed.valid()) {
    throw std::invalid_argument("RandomMovementModel: invalid speed range");
  }
  if (!(params.mean_heading_interval > 0.0) ||
      !(params.mean_speed_interval > 0.0)) {
    throw std::invalid_argument(
        "RandomMovementModel: change intervals must be > 0");
  }
  if (!bounds.contains(start)) {
    throw std::invalid_argument("RandomMovementModel: start outside bounds");
  }
  redraw_heading(rng);
  redraw_speed(rng);
}

geo::Vec2 RandomMovementModel::velocity() const noexcept {
  return geo::from_polar(heading_, speed_);
}

void RandomMovementModel::redraw_heading(util::RngStream& rng) {
  heading_ = rng.uniform(-std::numbers::pi, std::numbers::pi);
  next_heading_change_ = rng.exponential(1.0 / params_.mean_heading_interval);
}

void RandomMovementModel::redraw_speed(util::RngStream& rng) {
  speed_ = params_.speed.sample(rng);
  next_speed_change_ = rng.exponential(1.0 / params_.mean_speed_interval);
}

void RandomMovementModel::step(Duration dt, util::RngStream& rng) {
  if (!(dt > 0.0)) {
    throw std::invalid_argument("RandomMovementModel::step: dt <= 0");
  }
  next_heading_change_ -= dt;
  if (next_heading_change_ <= 0.0) redraw_heading(rng);
  next_speed_change_ -= dt;
  if (next_speed_change_ <= 0.0) redraw_speed(rng);

  geo::Vec2 next = position_ + geo::from_polar(heading_, speed_ * dt);
  // Reflect off the walls: flip the offending velocity component and mirror
  // the overshoot back inside.
  const geo::Vec2 lo = bounds_.min();
  const geo::Vec2 hi = bounds_.max();
  bool bounced = false;
  if (next.x < lo.x) {
    next.x = lo.x + (lo.x - next.x);
    bounced = true;
  } else if (next.x > hi.x) {
    next.x = hi.x - (next.x - hi.x);
    bounced = true;
  }
  if (next.y < lo.y) {
    next.y = lo.y + (lo.y - next.y);
    bounced = true;
  } else if (next.y > hi.y) {
    next.y = hi.y - (next.y - hi.y);
    bounced = true;
  }
  // A reflection changes the travel direction; keep the heading consistent
  // with the actual displacement so observers see the true motion.
  if (bounced) {
    next = bounds_.clamp(next);  // guard: huge dt could overshoot twice
    heading_ = (next - position_).heading();
  }
  position_ = next;
}

}  // namespace mgrid::mobility

#include "mobility/trace.h"

#include <ostream>
#include <stdexcept>

namespace mgrid::mobility {

void TraceRecorder::record(SimTime t, geo::Vec2 position, double speed) {
  if (!samples_.empty() && t < samples_.back().t) {
    throw std::invalid_argument("TraceRecorder: time went backwards");
  }
  samples_.push_back(TraceSample{t, position, speed});
}

double TraceRecorder::total_distance() const noexcept {
  double total = 0.0;
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    total += geo::distance(samples_[i - 1].position, samples_[i].position);
  }
  return total;
}

double TraceRecorder::net_displacement() const noexcept {
  if (samples_.size() < 2) return 0.0;
  return geo::distance(samples_.front().position, samples_.back().position);
}

stats::RunningStats TraceRecorder::speed_stats() const noexcept {
  stats::RunningStats out;
  for (const TraceSample& s : samples_) out.add(s.speed);
  return out;
}

double TraceRecorder::mean_path_speed() const noexcept {
  if (samples_.size() < 2) return 0.0;
  const double elapsed = samples_.back().t - samples_.front().t;
  if (elapsed <= 0.0) return 0.0;
  return total_distance() / elapsed;
}

void TraceRecorder::write_csv(std::ostream& out) const {
  out << "t,x,y,speed\n";
  for (const TraceSample& s : samples_) {
    out << s.t << ',' << s.position.x << ',' << s.position.y << ',' << s.speed
        << '\n';
  }
}

}  // namespace mgrid::mobility

// Trajectory trace recording.
//
// Records (t, position, speed) samples for a node; used by examples to dump
// trajectories, by tests to assert kinematic invariants (max speed, region
// containment), and by the workload validator to report realised velocity
// ranges against Table 1.
#pragma once

#include <iosfwd>
#include <vector>

#include "geo/vec2.h"
#include "stats/running_stats.h"
#include "util/types.h"

namespace mgrid::mobility {

struct TraceSample {
  SimTime t = 0.0;
  geo::Vec2 position;
  double speed = 0.0;
};

class TraceRecorder {
 public:
  void record(SimTime t, geo::Vec2 position, double speed);

  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] const std::vector<TraceSample>& samples() const noexcept {
    return samples_;
  }
  [[nodiscard]] const TraceSample& front() const { return samples_.front(); }
  [[nodiscard]] const TraceSample& back() const { return samples_.back(); }

  /// Path length implied by consecutive samples.
  [[nodiscard]] double total_distance() const noexcept;
  /// Straight-line displacement between first and last sample.
  [[nodiscard]] double net_displacement() const noexcept;
  /// Stats over the recorded instantaneous speeds.
  [[nodiscard]] stats::RunningStats speed_stats() const noexcept;
  /// Mean speed implied by distance/elapsed (0 for < 2 samples).
  [[nodiscard]] double mean_path_speed() const noexcept;

  /// Writes `t,x,y,speed` CSV rows (with header).
  void write_csv(std::ostream& out) const;

  void clear() noexcept { samples_.clear(); }

 private:
  std::vector<TraceSample> samples_;
};

}  // namespace mgrid::mobility

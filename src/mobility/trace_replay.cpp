#include "mobility/trace_replay.h"

#include <cmath>
#include <istream>
#include <stdexcept>
#include <string>

#include "util/string_util.h"

namespace mgrid::mobility {

std::vector<TraceSample> read_trace_csv(std::istream& in) {
  std::vector<TraceSample> samples;
  std::string line;
  bool first = true;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view trimmed = util::trim(line);
    if (trimmed.empty()) continue;
    if (first) {
      first = false;
      if (trimmed == "t,x,y,speed") continue;  // header
    }
    const std::vector<std::string> fields = util::split_trimmed(trimmed, ',');
    if (fields.size() != 4) {
      throw std::invalid_argument("trace CSV line " + std::to_string(line_no) +
                                  ": expected 4 fields");
    }
    const auto t = util::parse_double(fields[0]);
    const auto x = util::parse_double(fields[1]);
    const auto y = util::parse_double(fields[2]);
    const auto speed = util::parse_double(fields[3]);
    if (!t || !x || !y || !speed) {
      throw std::invalid_argument("trace CSV line " + std::to_string(line_no) +
                                  ": non-numeric field");
    }
    if (!samples.empty() && *t < samples.back().t) {
      throw std::invalid_argument("trace CSV line " + std::to_string(line_no) +
                                  ": time went backwards");
    }
    samples.push_back(TraceSample{*t, {*x, *y}, *speed});
  }
  return samples;
}

TraceReplayModel::TraceReplayModel(std::vector<TraceSample> samples, bool loop)
    : samples_(std::move(samples)), loop_(loop) {
  if (samples_.empty()) {
    throw std::invalid_argument("TraceReplayModel: empty trace");
  }
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    if (samples_[i].t < samples_[i - 1].t) {
      throw std::invalid_argument("TraceReplayModel: unsorted trace");
    }
  }
}

Duration TraceReplayModel::trace_duration() const noexcept {
  return samples_.back().t - samples_.front().t;
}

bool TraceReplayModel::finished() const noexcept {
  return !loop_ && elapsed_ >= trace_duration();
}

void TraceReplayModel::refresh_cursor() noexcept {
  const SimTime now = samples_.front().t + elapsed_;
  while (cursor_ + 1 < samples_.size() && samples_[cursor_ + 1].t <= now) {
    ++cursor_;
  }
}

void TraceReplayModel::step(Duration dt, util::RngStream& /*rng*/) {
  if (!(dt > 0.0)) {
    throw std::invalid_argument("TraceReplayModel::step: dt <= 0");
  }
  elapsed_ += dt;
  const Duration total = trace_duration();
  if (loop_ && total > 0.0 && elapsed_ >= total) {
    elapsed_ = std::fmod(elapsed_, total);
    cursor_ = 0;
  }
  refresh_cursor();
}

geo::Vec2 TraceReplayModel::position() const noexcept {
  const SimTime now = samples_.front().t + elapsed_;
  if (cursor_ + 1 >= samples_.size()) return samples_.back().position;
  const TraceSample& a = samples_[cursor_];
  const TraceSample& b = samples_[cursor_ + 1];
  const Duration span = b.t - a.t;
  if (span <= 0.0 || now <= a.t) return a.position;
  if (now >= b.t) return b.position;
  return geo::lerp(a.position, b.position, (now - a.t) / span);
}

geo::Vec2 TraceReplayModel::velocity() const noexcept {
  const SimTime now = samples_.front().t + elapsed_;
  if (cursor_ + 1 >= samples_.size()) return {};
  const TraceSample& a = samples_[cursor_];
  const TraceSample& b = samples_[cursor_ + 1];
  const Duration span = b.t - a.t;
  if (span <= 0.0 || now >= b.t) return {};
  return (b.position - a.position) / span;
}

MobilityPattern TraceReplayModel::pattern() const noexcept {
  return velocity().norm() > 1e-9 ? MobilityPattern::kLinear
                                  : MobilityPattern::kStop;
}

}  // namespace mgrid::mobility

#include "mobility/path_provider.h"

#include <stdexcept>

namespace mgrid::mobility {

GraphPathProvider::GraphPathProvider(const geo::WaypointGraph& graph,
                                     bool allow_entrances)
    : graph_(graph) {
  for (geo::NodeIndex i = 0; i < graph.node_count(); ++i) {
    const geo::GraphNode& node = graph.node(i);
    if (node.kind == geo::NodeKind::kEntrance && !allow_entrances) continue;
    destinations_.push_back(i);
  }
  if (destinations_.size() < 2) {
    throw std::invalid_argument(
        "GraphPathProvider: graph has fewer than 2 usable destinations");
  }
}

std::vector<geo::Vec2> GraphPathProvider::next_path(geo::Vec2 from,
                                                    util::RngStream& rng) {
  const geo::NodeIndex start = graph_.nearest_node(from);
  // Draw a destination different from the start node.
  geo::NodeIndex target = start;
  for (int attempt = 0; attempt < 16 && target == start; ++attempt) {
    target = destinations_[rng.index(destinations_.size())];
  }
  if (target == start) {
    // Degenerate graph (start is the only destination): stay in place.
    return {graph_.node(start).position};
  }
  std::vector<geo::NodeIndex> node_path = graph_.shortest_path(start, target);
  if (node_path.empty()) {
    // Unreachable target (disconnected graph): walk straight to it.
    return {graph_.node(target).position};
  }
  return graph_.path_points(node_path);
}

RectPathProvider::RectPathProvider(geo::Rect bounds, double min_leg)
    : bounds_(bounds), min_leg_(min_leg) {
  if (min_leg < 0.0) {
    throw std::invalid_argument("RectPathProvider: min_leg must be >= 0");
  }
}

std::vector<geo::Vec2> RectPathProvider::next_path(geo::Vec2 from,
                                                   util::RngStream& rng) {
  geo::Vec2 target = bounds_.sample(rng);
  for (int attempt = 0;
       attempt < 8 && geo::distance(from, target) < min_leg_; ++attempt) {
    target = bounds_.sample(rng);
  }
  return {target};
}

LoopPathProvider::LoopPathProvider(std::vector<geo::Vec2> circuit)
    : circuit_(std::move(circuit)) {
  if (circuit_.size() < 2) {
    throw std::invalid_argument("LoopPathProvider: needs >= 2 waypoints");
  }
}

std::vector<geo::Vec2> LoopPathProvider::next_path(geo::Vec2 /*from*/,
                                                   util::RngStream& /*rng*/) {
  const geo::Vec2 target = circuit_[next_index_];
  next_index_ = (next_index_ + 1) % circuit_.size();
  return {target};
}

}  // namespace mgrid::mobility

// Linear Movement State (LMS): destination-directed movement.
//
// Walks/drives a waypoint path at a per-leg speed drawn from a range, with
// optional dwell pauses at destinations (during which the ground-truth
// pattern is kStop — a walker who has arrived is a stopper). Covers both
// LMS flavours from the paper: constant velocity/direction journeys, and
// journeys with direction changes at intersections (the path's interior
// waypoints).
#pragma once

#include <memory>
#include <vector>

#include "mobility/mobility_model.h"
#include "mobility/path_provider.h"

namespace mgrid::mobility {

class LinearMovementModel final : public MobilityModel {
 public:
  struct Params {
    SpeedRange speed{0.5, 1.5};
    /// Dwell at each destination, seconds (lo == hi == 0 disables dwell).
    SpeedRange dwell{0.0, 0.0};
    /// Per-step fractional speed jitter stddev (0 = perfectly constant legs).
    double speed_jitter = 0.0;
    /// Redraw the travel speed from `speed` every this many seconds while
    /// walking (0 = one draw per journey leg). Models Table 1's
    /// velocity-*range* semantics: a node labelled "1~4 m/s" wanders within
    /// that band rather than picking one speed forever.
    Duration speed_resample_interval = 0.0;
  };

  /// Takes ownership of the provider; `rng` is used to draw the first leg.
  LinearMovementModel(geo::Vec2 start, Params params,
                      std::unique_ptr<PathProvider> provider,
                      util::RngStream& rng);

  void step(Duration dt, util::RngStream& rng) override;
  [[nodiscard]] geo::Vec2 position() const noexcept override {
    return position_;
  }
  [[nodiscard]] geo::Vec2 velocity() const noexcept override;
  [[nodiscard]] MobilityPattern pattern() const noexcept override;

  /// True while dwelling at a destination.
  [[nodiscard]] bool dwelling() const noexcept { return dwell_remaining_ > 0.0; }
  /// The waypoint currently being walked toward (position when dwelling).
  [[nodiscard]] geo::Vec2 current_target() const noexcept;

 private:
  void begin_new_path(util::RngStream& rng);
  void arrive(util::RngStream& rng);

  geo::Vec2 position_;
  Params params_;
  std::unique_ptr<PathProvider> provider_;
  std::vector<geo::Vec2> path_;
  std::size_t next_waypoint_ = 0;
  double leg_speed_ = 0.0;
  double current_speed_ = 0.0;  // leg speed with jitter applied
  double dwell_remaining_ = 0.0;
  double resample_countdown_ = 0.0;
};

}  // namespace mgrid::mobility

#include "mobility/mobile_node.h"

#include <stdexcept>

namespace mgrid::mobility {

MobileNode::MobileNode(MnSpec spec, std::unique_ptr<MobilityModel> model,
                       util::RngStream rng)
    : spec_(std::move(spec)), model_(std::move(model)), rng_(rng) {
  if (!model_) throw std::invalid_argument("MobileNode: null mobility model");
  if (!spec_.id.valid()) throw std::invalid_argument("MobileNode: invalid id");
}

void MobileNode::step(Duration dt) {
  const geo::Vec2 before = model_->position();
  model_->step(dt, rng_);
  odometer_ += geo::distance(before, model_->position());
}

}  // namespace mgrid::mobility

// Path providers: strategies that hand a LinearMovementModel its next
// journey (a polyline of waypoints).
//
//  * GraphPathProvider  — routes between random destinations on the campus
//                         waypoint graph (pedestrians use every node,
//                         vehicles only road/gate nodes).
//  * RectPathProvider   — straight legs between random points of a building
//                         interior (hallway walking, paper case 9).
//  * LoopPathProvider   — a fixed circuit (campus shuttle, patrols).
#pragma once

#include <memory>
#include <vector>

#include "geo/campus.h"
#include "geo/graph.h"
#include "geo/shapes.h"
#include "geo/vec2.h"
#include "mobility/mobility_model.h"

namespace mgrid::mobility {

class PathProvider {
 public:
  virtual ~PathProvider() = default;
  /// Returns the next journey starting from `from` (the returned path does
  /// not need to include `from`; the mover walks to its first point). Must
  /// return at least one point.
  [[nodiscard]] virtual std::vector<geo::Vec2> next_path(
      geo::Vec2 from, util::RngStream& rng) = 0;
};

/// Random destinations routed over the campus graph.
class GraphPathProvider final : public PathProvider {
 public:
  /// `allow_entrances` false restricts destinations to road/gate nodes
  /// (vehicle traffic). The graph reference must outlive the provider.
  GraphPathProvider(const geo::WaypointGraph& graph, bool allow_entrances);

  [[nodiscard]] std::vector<geo::Vec2> next_path(geo::Vec2 from,
                                                 util::RngStream& rng) override;

 private:
  const geo::WaypointGraph& graph_;
  std::vector<geo::NodeIndex> destinations_;
};

/// Straight hallway legs inside a rectangle.
class RectPathProvider final : public PathProvider {
 public:
  /// `min_leg` metres: destinations closer than this to the current position
  /// are re-drawn (a few times) to avoid degenerate zero-length journeys.
  explicit RectPathProvider(geo::Rect bounds, double min_leg = 5.0);

  [[nodiscard]] std::vector<geo::Vec2> next_path(geo::Vec2 from,
                                                 util::RngStream& rng) override;

 private:
  geo::Rect bounds_;
  double min_leg_;
};

/// A fixed waypoint circuit, traversed repeatedly.
class LoopPathProvider final : public PathProvider {
 public:
  /// Throws std::invalid_argument with fewer than 2 waypoints.
  explicit LoopPathProvider(std::vector<geo::Vec2> circuit);

  [[nodiscard]] std::vector<geo::Vec2> next_path(geo::Vec2 from,
                                                 util::RngStream& rng) override;

 private:
  std::vector<geo::Vec2> circuit_;
  std::size_t next_index_ = 0;
};

}  // namespace mgrid::mobility

// A mobile grid node: identity + device + mobility.
//
// Owns its mobility model and its private RNG stream, so stepping node A
// never perturbs node B's trajectory — experiments stay reproducible when
// the node population changes.
#pragma once

#include <memory>
#include <string>

#include "mobility/mobility_model.h"
#include "util/rng.h"
#include "util/types.h"

namespace mgrid::mobility {

/// Static description of a node (who it is, not where it is).
struct MnSpec {
  MnId id;
  std::string name;
  MnType type = MnType::kHuman;
  DeviceType device = DeviceType::kCellPhone;
  /// Region the node was placed in at workload-construction time.
  RegionId home_region;
  /// Ground-truth pattern the workload assigned (Table 1 column MP).
  MobilityPattern assigned_pattern = MobilityPattern::kStop;
  /// Velocity range the workload assigned (Table 1 column VR).
  SpeedRange assigned_speed{0.0, 0.0};
};

class MobileNode {
 public:
  /// Throws std::invalid_argument on a null model or invalid id.
  MobileNode(MnSpec spec, std::unique_ptr<MobilityModel> model,
             util::RngStream rng);

  MobileNode(MobileNode&&) noexcept = default;
  MobileNode& operator=(MobileNode&&) noexcept = default;

  [[nodiscard]] const MnSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] MnId id() const noexcept { return spec_.id; }

  /// Advances the node's true position by dt seconds.
  void step(Duration dt);

  [[nodiscard]] geo::Vec2 position() const noexcept {
    return model_->position();
  }
  [[nodiscard]] geo::Vec2 velocity() const noexcept {
    return model_->velocity();
  }
  [[nodiscard]] double speed() const noexcept { return model_->speed(); }
  [[nodiscard]] MobilityPattern ground_truth_pattern() const noexcept {
    return model_->pattern();
  }

  /// Total distance travelled since construction.
  [[nodiscard]] double odometer() const noexcept { return odometer_; }

  [[nodiscard]] MobilityModel& model() noexcept { return *model_; }
  [[nodiscard]] const MobilityModel& model() const noexcept { return *model_; }

 private:
  MnSpec spec_;
  std::unique_ptr<MobilityModel> model_;
  util::RngStream rng_;
  double odometer_ = 0.0;
};

}  // namespace mgrid::mobility

// Stop State (SS): the node does not move (paper: a student sitting in the
// library for an hour). An optional position jitter models a device resting
// on a desk being nudged — disabled by default so SS nodes are exactly
// stationary, as in the paper's Table 1 (0 m/s).
#pragma once

#include "mobility/mobility_model.h"

namespace mgrid::mobility {

class StopModel final : public MobilityModel {
 public:
  /// `jitter_stddev` metres of per-step Gaussian jitter (>= 0; default 0).
  explicit StopModel(geo::Vec2 position, double jitter_stddev = 0.0);

  void step(Duration dt, util::RngStream& rng) override;
  [[nodiscard]] geo::Vec2 position() const noexcept override {
    return position_;
  }
  [[nodiscard]] geo::Vec2 velocity() const noexcept override { return {}; }
  [[nodiscard]] MobilityPattern pattern() const noexcept override {
    return MobilityPattern::kStop;
  }

 private:
  geo::Vec2 position_;
  geo::Vec2 anchor_;
  double jitter_stddev_;
};

}  // namespace mgrid::mobility

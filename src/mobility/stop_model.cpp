#include "mobility/stop_model.h"

#include <stdexcept>

namespace mgrid::mobility {

StopModel::StopModel(geo::Vec2 position, double jitter_stddev)
    : position_(position), anchor_(position), jitter_stddev_(jitter_stddev) {
  if (jitter_stddev < 0.0) {
    throw std::invalid_argument("StopModel: jitter_stddev must be >= 0");
  }
}

void StopModel::step(Duration dt, util::RngStream& rng) {
  if (!(dt > 0.0)) throw std::invalid_argument("StopModel::step: dt <= 0");
  if (jitter_stddev_ == 0.0) return;
  // Mean-reverting jitter around the anchor, so a jittering device never
  // wanders away from its desk.
  position_.x = anchor_.x + rng.normal(0.0, jitter_stddev_);
  position_.y = anchor_.y + rng.normal(0.0, jitter_stddev_);
}

}  // namespace mgrid::mobility

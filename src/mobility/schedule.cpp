#include "mobility/schedule.h"

#include <numbers>
#include <stdexcept>

namespace mgrid::mobility {

ScheduledMobilityModel::ScheduledMobilityModel(geo::Vec2 start,
                                               SchedulePlan plan,
                                               util::RngStream& rng)
    : position_(start), plan_(std::move(plan)) {
  if (plan_.phases.empty()) {
    throw std::invalid_argument("ScheduledMobilityModel: empty plan");
  }
  for (const SchedulePhase& phase : plan_.phases) {
    if (const auto* move = std::get_if<MoveToPhase>(&phase)) {
      if (move->waypoints.empty()) {
        throw std::invalid_argument(
            "ScheduledMobilityModel: MoveToPhase without waypoints");
      }
      if (!move->speed.valid() || !(move->speed.hi > 0.0)) {
        throw std::invalid_argument(
            "ScheduledMobilityModel: MoveToPhase with invalid speed");
      }
    } else if (const auto* wander = std::get_if<WanderPhase>(&phase)) {
      if (!wander->speed.valid()) {
        throw std::invalid_argument(
            "ScheduledMobilityModel: WanderPhase with invalid speed");
      }
      if (!(wander->mean_heading_interval > 0.0)) {
        throw std::invalid_argument(
            "ScheduledMobilityModel: WanderPhase heading interval <= 0");
      }
    }
  }
  enter_phase(rng);
}

void ScheduledMobilityModel::enter_phase(util::RngStream& rng) {
  current_velocity_ = {};
  if (finished()) return;
  const SchedulePhase& phase = plan_.phases[phase_];
  if (const auto* move = std::get_if<MoveToPhase>(&phase)) {
    next_waypoint_ = 0;
    move_speed_ = move->speed.sample(rng);
    if (move_speed_ <= 0.0) move_speed_ = move->speed.hi;
  } else if (const auto* stay = std::get_if<StayPhase>(&phase)) {
    phase_remaining_ = stay->duration;
  } else if (const auto* wander = std::get_if<WanderPhase>(&phase)) {
    phase_remaining_ = wander->duration;
    // Ensure we start inside the wander area (teleport-free: clamp).
    position_ = wander->area.clamp(position_);
    wander_heading_ = rng.uniform(-std::numbers::pi, std::numbers::pi);
    wander_speed_ = wander->speed.sample(rng);
    wander_heading_countdown_ =
        rng.exponential(1.0 / wander->mean_heading_interval);
  }
}

void ScheduledMobilityModel::advance_phase(util::RngStream& rng) {
  ++phase_;
  if (finished() && plan_.repeat) phase_ = 0;
  enter_phase(rng);
}

geo::Vec2 ScheduledMobilityModel::velocity() const noexcept {
  return current_velocity_;
}

MobilityPattern ScheduledMobilityModel::pattern() const noexcept {
  if (finished()) return MobilityPattern::kStop;
  const SchedulePhase& phase = plan_.phases[phase_];
  if (std::holds_alternative<MoveToPhase>(phase)) {
    return MobilityPattern::kLinear;
  }
  if (std::holds_alternative<WanderPhase>(phase)) {
    return MobilityPattern::kRandom;
  }
  return MobilityPattern::kStop;
}

std::string_view ScheduledMobilityModel::phase_label() const noexcept {
  if (finished()) return {};
  const SchedulePhase& phase = plan_.phases[phase_];
  if (const auto* move = std::get_if<MoveToPhase>(&phase)) return move->label;
  if (const auto* stay = std::get_if<StayPhase>(&phase)) return stay->label;
  return std::get<WanderPhase>(phase).label;
}

void ScheduledMobilityModel::step(Duration dt, util::RngStream& rng) {
  if (!(dt > 0.0)) {
    throw std::invalid_argument("ScheduledMobilityModel::step: dt <= 0");
  }
  if (finished()) {
    current_velocity_ = {};
    return;
  }
  const SchedulePhase& phase = plan_.phases[phase_];

  if (const auto* move = std::get_if<MoveToPhase>(&phase)) {
    double budget = move_speed_ * dt;
    const geo::Vec2 before = position_;
    while (budget > 0.0 && next_waypoint_ < move->waypoints.size()) {
      const geo::Vec2 target = move->waypoints[next_waypoint_];
      const double dist = geo::distance(position_, target);
      if (dist <= budget) {
        position_ = target;
        budget -= dist;
        ++next_waypoint_;
      } else {
        position_ = position_ + (target - position_) * (budget / dist);
        budget = 0.0;
      }
    }
    current_velocity_ = (position_ - before) / dt;
    if (next_waypoint_ >= move->waypoints.size()) advance_phase(rng);
    return;
  }

  if (std::get_if<StayPhase>(&phase) != nullptr) {
    current_velocity_ = {};
    phase_remaining_ -= dt;
    if (phase_remaining_ <= 0.0) advance_phase(rng);
    return;
  }

  const auto& wander = std::get<WanderPhase>(phase);
  wander_heading_countdown_ -= dt;
  if (wander_heading_countdown_ <= 0.0) {
    wander_heading_ = rng.uniform(-std::numbers::pi, std::numbers::pi);
    wander_speed_ = wander.speed.sample(rng);
    wander_heading_countdown_ =
        rng.exponential(1.0 / wander.mean_heading_interval);
  }
  geo::Vec2 next =
      position_ + geo::from_polar(wander_heading_, wander_speed_ * dt);
  if (!wander.area.contains(next)) {
    next = wander.area.clamp(next);
    wander_heading_ = rng.uniform(-std::numbers::pi, std::numbers::pi);
  }
  current_velocity_ = (next - position_) / dt;
  position_ = next;
  phase_remaining_ -= dt;
  if (phase_remaining_ <= 0.0) advance_phase(rng);
}

SchedulePlan make_toms_day(const TomsDayInputs& inputs, double time_scale) {
  if (!(time_scale > 0.0)) {
    throw std::invalid_argument("make_toms_day: time_scale must be > 0");
  }
  auto scaled = [time_scale](double seconds) { return seconds * time_scale; };
  const SpeedRange walk{1.0, 1.5};

  SchedulePlan plan;
  // (1) bus stop -> library via gate B and R2.
  plan.phases.push_back(MoveToPhase{inputs.to_library, walk, "to library"});
  // (2) study 1 h.
  plan.phases.push_back(StayPhase{scaled(3600.0), "study in library"});
  // (3) library -> lecture hall B6 via R5.
  plan.phases.push_back(MoveToPhase{inputs.to_lecture, walk, "to lecture"});
  // (4) class, 2 h.
  plan.phases.push_back(StayPhase{scaled(7200.0), "attend class"});
  // (5) back to the library via R5.
  plan.phases.push_back(
      MoveToPhase{inputs.back_to_library, walk, "back to library"});
  // (6) study 90 min.
  plan.phases.push_back(StayPhase{scaled(5400.0), "study again"});
  // (7) 30 min coffee break, moving slowly and randomly.
  plan.phases.push_back(WanderPhase{scaled(1800.0), inputs.cafe_area,
                                    SpeedRange{0.0, 0.8}, 2.0,
                                    "coffee break"});
  // (8) library -> chemistry lab B3 via R2, R1, R3 (direction changes at the
  // two intersections are interior waypoints of `to_lab`).
  plan.phases.push_back(MoveToPhase{inputs.to_lab, walk, "to lab"});
  // (9) hallway walk inside B3.
  plan.phases.push_back(
      MoveToPhase{inputs.lab_hallway, SpeedRange{0.8, 1.2}, "lab hallway"});
  // (10) 3 h experiment, moving around the equipment.
  plan.phases.push_back(WanderPhase{scaled(10800.0), inputs.lab_area,
                                    SpeedRange{0.0, 1.0}, 3.0, "experiment"});
  // (11) lab -> bus stop via R4 and gate A.
  plan.phases.push_back(MoveToPhase{inputs.to_bus, walk, "to bus"});
  return plan;
}

}  // namespace mgrid::mobility

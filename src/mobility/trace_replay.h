// Trace replay: drive a mobile node from a recorded trajectory.
//
// Closes the loop with TraceRecorder: a trajectory captured from a live
// model (or converted from an external data set) can be replayed as a
// MobilityModel, giving reproducible regression workloads and a migration
// path to real traces — the paper's experiments are synthetic, but the ADF
// itself is trace-agnostic.
#pragma once

#include <iosfwd>
#include <vector>

#include "mobility/mobility_model.h"
#include "mobility/trace.h"

namespace mgrid::mobility {

/// Parses a `t,x,y,speed` CSV (as written by TraceRecorder::write_csv).
/// Throws std::invalid_argument on malformed input or unsorted times.
[[nodiscard]] std::vector<TraceSample> read_trace_csv(std::istream& in);

class TraceReplayModel final : public MobilityModel {
 public:
  /// Replays `samples` (time-sorted, >= 1 sample). With `loop` true the
  /// trace restarts after its last sample (time re-based); otherwise the
  /// node parks at the final position.
  explicit TraceReplayModel(std::vector<TraceSample> samples,
                            bool loop = false);

  void step(Duration dt, util::RngStream& rng) override;
  [[nodiscard]] geo::Vec2 position() const noexcept override;
  [[nodiscard]] geo::Vec2 velocity() const noexcept override;
  /// kStop while parked between/after samples; kLinear while interpolating
  /// a moving segment.
  [[nodiscard]] MobilityPattern pattern() const noexcept override;

  /// Local replay clock (seconds since the first sample).
  [[nodiscard]] Duration elapsed() const noexcept { return elapsed_; }
  [[nodiscard]] bool finished() const noexcept;
  [[nodiscard]] Duration trace_duration() const noexcept;

 private:
  /// Index of the segment containing the current elapsed time.
  void refresh_cursor() noexcept;

  std::vector<TraceSample> samples_;
  bool loop_;
  Duration elapsed_ = 0.0;
  std::size_t cursor_ = 0;  // samples_[cursor_] <= now < samples_[cursor_+1]
};

}  // namespace mgrid::mobility

#include "mobility/linear_model.h"

#include <algorithm>
#include <stdexcept>

namespace mgrid::mobility {

LinearMovementModel::LinearMovementModel(
    geo::Vec2 start, Params params, std::unique_ptr<PathProvider> provider,
    util::RngStream& rng)
    : position_(start), params_(params), provider_(std::move(provider)) {
  if (!params.speed.valid() || !(params.speed.hi > 0.0)) {
    throw std::invalid_argument("LinearMovementModel: invalid speed range");
  }
  if (!params.dwell.valid()) {
    throw std::invalid_argument("LinearMovementModel: invalid dwell range");
  }
  if (params.speed_jitter < 0.0) {
    throw std::invalid_argument("LinearMovementModel: negative speed jitter");
  }
  if (!provider_) {
    throw std::invalid_argument("LinearMovementModel: null path provider");
  }
  begin_new_path(rng);
}

void LinearMovementModel::begin_new_path(util::RngStream& rng) {
  path_ = provider_->next_path(position_, rng);
  if (path_.empty()) {
    throw std::logic_error("LinearMovementModel: provider returned no path");
  }
  next_waypoint_ = 0;
  leg_speed_ = params_.speed.sample(rng);
  if (leg_speed_ <= 0.0) leg_speed_ = params_.speed.hi;
  current_speed_ = leg_speed_;
}

void LinearMovementModel::arrive(util::RngStream& rng) {
  dwell_remaining_ = params_.dwell.sample(rng);
  if (dwell_remaining_ <= 0.0) {
    begin_new_path(rng);
  }
}

geo::Vec2 LinearMovementModel::current_target() const noexcept {
  if (next_waypoint_ >= path_.size()) return position_;
  return path_[next_waypoint_];
}

geo::Vec2 LinearMovementModel::velocity() const noexcept {
  if (dwelling() || next_waypoint_ >= path_.size()) return {};
  const geo::Vec2 to_target = path_[next_waypoint_] - position_;
  const double dist = to_target.norm();
  if (dist == 0.0) return {};
  return to_target * (current_speed_ / dist);
}

MobilityPattern LinearMovementModel::pattern() const noexcept {
  return dwelling() ? MobilityPattern::kStop : MobilityPattern::kLinear;
}

void LinearMovementModel::step(Duration dt, util::RngStream& rng) {
  if (!(dt > 0.0)) {
    throw std::invalid_argument("LinearMovementModel::step: dt <= 0");
  }
  if (dwelling()) {
    dwell_remaining_ -= dt;
    if (dwell_remaining_ <= 0.0) {
      dwell_remaining_ = 0.0;
      begin_new_path(rng);
    }
    return;
  }
  if (params_.speed_resample_interval > 0.0) {
    resample_countdown_ -= dt;
    if (resample_countdown_ <= 0.0) {
      leg_speed_ = params_.speed.sample(rng);
      current_speed_ = leg_speed_;
      resample_countdown_ = params_.speed_resample_interval;
    }
  }
  if (params_.speed_jitter > 0.0) {
    current_speed_ = std::max(
        0.0, leg_speed_ * (1.0 + rng.normal(0.0, params_.speed_jitter)));
  }
  double budget = current_speed_ * dt;  // distance to cover this step
  // Safety valve: a degenerate provider that keeps returning the current
  // position would otherwise spin forever consuming zero budget.
  int zero_progress_paths = 0;
  while (budget > 0.0 && zero_progress_paths < 4) {
    if (next_waypoint_ >= path_.size()) {
      arrive(rng);
      if (dwelling()) return;
      // New path started; keep walking with the remaining budget.
      ++zero_progress_paths;
      continue;
    }
    const geo::Vec2 target = path_[next_waypoint_];
    const double dist = geo::distance(position_, target);
    if (dist <= budget) {
      position_ = target;
      budget -= dist;
      ++next_waypoint_;
    } else {
      position_ = position_ + (target - position_) * (budget / dist);
      budget = 0.0;
    }
  }
}

}  // namespace mgrid::mobility

#include "mobility/mobility_model.h"

namespace mgrid::mobility {

std::string_view to_string(MobilityPattern pattern) noexcept {
  switch (pattern) {
    case MobilityPattern::kStop:
      return "SS";
    case MobilityPattern::kRandom:
      return "RMS";
    case MobilityPattern::kLinear:
      return "LMS";
  }
  return "unknown";
}

std::string_view to_string(MnType type) noexcept {
  switch (type) {
    case MnType::kHuman:
      return "human";
    case MnType::kVehicle:
      return "vehicle";
  }
  return "unknown";
}

std::string_view to_string(DeviceType device) noexcept {
  switch (device) {
    case DeviceType::kLaptop:
      return "laptop";
    case DeviceType::kPda:
      return "PDA";
    case DeviceType::kCellPhone:
      return "cellphone";
  }
  return "unknown";
}

}  // namespace mgrid::mobility

// Mobility model interface and MN taxonomy.
//
// The paper distils campus movement into three ground-truth mobility
// patterns (§3.1): Stop State (SS), Random Movement State (RMS) and Linear
// Movement State (LMS), carried by human or vehicle nodes equipped with
// laptops, PDAs or cell phones. A MobilityModel advances a position with a
// (usually sub-second) integration step; the ADF only ever observes sampled
// positions, never the model's internals.
#pragma once

#include <string_view>

#include "geo/vec2.h"
#include "util/rng.h"
#include "util/types.h"

namespace mgrid::mobility {

/// Ground-truth mobility pattern (what the node is actually doing — the
/// classifier's job is to recover this from observed positions).
enum class MobilityPattern { kStop, kRandom, kLinear };

enum class MnType { kHuman, kVehicle };

enum class DeviceType { kLaptop, kPda, kCellPhone };

[[nodiscard]] std::string_view to_string(MobilityPattern pattern) noexcept;
[[nodiscard]] std::string_view to_string(MnType type) noexcept;
[[nodiscard]] std::string_view to_string(DeviceType device) noexcept;

/// Inclusive speed range in m/s.
struct SpeedRange {
  double lo = 0.0;
  double hi = 0.0;

  [[nodiscard]] bool valid() const noexcept { return 0.0 <= lo && lo <= hi; }
  [[nodiscard]] double sample(util::RngStream& rng) const {
    return rng.uniform(lo, hi);
  }
  [[nodiscard]] double mid() const noexcept { return 0.5 * (lo + hi); }
};

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  /// Advances the node by `dt` seconds (dt > 0). `rng` is the node's own
  /// deterministic stream.
  virtual void step(Duration dt, util::RngStream& rng) = 0;

  /// Current true position.
  [[nodiscard]] virtual geo::Vec2 position() const noexcept = 0;
  /// Current true velocity vector (m/s).
  [[nodiscard]] virtual geo::Vec2 velocity() const noexcept = 0;
  /// Current ground-truth pattern (a linear mover dwelling at its
  /// destination reports kStop for the dwell).
  [[nodiscard]] virtual MobilityPattern pattern() const noexcept = 0;

  [[nodiscard]] double speed() const noexcept { return velocity().norm(); }
  [[nodiscard]] double heading() const noexcept {
    return velocity().heading();
  }
};

}  // namespace mgrid::mobility

// Random Movement State (RMS): bounded random walk.
//
// Models a student milling around a lab or chatting over coffee (paper
// cases 7 and 10): speed drawn from a range, heading redrawn at random
// exponentially-distributed intervals, reflected off the region walls.
// Because heading changes happen at sub-second granularity, the *net*
// displacement over a 1 s sampling period is below speed x 1 s — exactly the
// property that makes buildings more filterable than roads in Fig. 6.
#pragma once

#include "geo/shapes.h"
#include "mobility/mobility_model.h"

namespace mgrid::mobility {

class RandomMovementModel final : public MobilityModel {
 public:
  struct Params {
    SpeedRange speed{0.0, 1.0};
    /// Mean seconds between heading redraws (exponential). Must be > 0.
    double mean_heading_interval = 2.0;
    /// Mean seconds between speed redraws (exponential). Must be > 0.
    double mean_speed_interval = 5.0;
  };

  /// `start` must lie inside `bounds`.
  RandomMovementModel(geo::Vec2 start, geo::Rect bounds, Params params,
                      util::RngStream& rng);

  void step(Duration dt, util::RngStream& rng) override;
  [[nodiscard]] geo::Vec2 position() const noexcept override {
    return position_;
  }
  [[nodiscard]] geo::Vec2 velocity() const noexcept override;
  [[nodiscard]] MobilityPattern pattern() const noexcept override {
    return MobilityPattern::kRandom;
  }

  [[nodiscard]] const geo::Rect& bounds() const noexcept { return bounds_; }

 private:
  void redraw_heading(util::RngStream& rng);
  void redraw_speed(util::RngStream& rng);

  geo::Vec2 position_;
  geo::Rect bounds_;
  Params params_;
  double speed_ = 0.0;
  double heading_ = 0.0;
  double next_heading_change_ = 0.0;  // countdown in seconds
  double next_speed_change_ = 0.0;
};

}  // namespace mgrid::mobility

// Scripted day plans (the paper's "Tom" scenario, §3.1).
//
// A SchedulePlan is an ordered list of phases — move somewhere along given
// waypoints, stay put for a while, or wander a room — and
// ScheduledMobilityModel replays it. Used by the campus_day example to
// reproduce Tom's 11-leg day and by tests as a deterministic mixed-pattern
// source.
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "geo/shapes.h"
#include "mobility/mobility_model.h"

namespace mgrid::mobility {

/// Walk through `waypoints` (in order) at a speed drawn from `speed`.
struct MoveToPhase {
  std::vector<geo::Vec2> waypoints;
  SpeedRange speed{0.5, 1.5};
  std::string label;
};

/// Remain stationary for `duration` seconds.
struct StayPhase {
  Duration duration = 0.0;
  std::string label;
};

/// Random-walk inside `area` for `duration` seconds.
struct WanderPhase {
  Duration duration = 0.0;
  geo::Rect area;
  SpeedRange speed{0.0, 1.0};
  /// Mean seconds between heading changes.
  double mean_heading_interval = 2.0;
  std::string label;
};

using SchedulePhase = std::variant<MoveToPhase, StayPhase, WanderPhase>;

struct SchedulePlan {
  std::vector<SchedulePhase> phases;
  /// Restart from the first phase after the last completes (otherwise the
  /// node stops forever at its final position).
  bool repeat = false;
};

class ScheduledMobilityModel final : public MobilityModel {
 public:
  /// Throws std::invalid_argument on an empty plan or a MoveToPhase without
  /// waypoints.
  ScheduledMobilityModel(geo::Vec2 start, SchedulePlan plan,
                         util::RngStream& rng);

  void step(Duration dt, util::RngStream& rng) override;
  [[nodiscard]] geo::Vec2 position() const noexcept override {
    return position_;
  }
  [[nodiscard]] geo::Vec2 velocity() const noexcept override;
  [[nodiscard]] MobilityPattern pattern() const noexcept override;

  /// Index of the active phase (== phases.size() when the plan finished).
  [[nodiscard]] std::size_t phase_index() const noexcept { return phase_; }
  [[nodiscard]] bool finished() const noexcept {
    return phase_ >= plan_.phases.size();
  }
  /// Label of the active phase ("" when finished or unlabeled).
  [[nodiscard]] std::string_view phase_label() const noexcept;

 private:
  void enter_phase(util::RngStream& rng);
  void advance_phase(util::RngStream& rng);

  geo::Vec2 position_;
  SchedulePlan plan_;
  std::size_t phase_ = 0;

  // Per-phase execution state.
  Duration phase_remaining_ = 0.0;      // Stay / Wander countdown
  std::size_t next_waypoint_ = 0;       // MoveTo progress
  double move_speed_ = 0.0;             // MoveTo leg speed
  double wander_heading_ = 0.0;         // Wander state
  double wander_speed_ = 0.0;
  double wander_heading_countdown_ = 0.0;
  geo::Vec2 current_velocity_{};
};

/// Builds Tom's day from the paper §3.1 on the given campus-like waypoint
/// positions. Exposed so the example and tests share one source of truth.
/// `scale` compresses the durations (the real day spans ~8 h; the default
/// scale of 1/16 fits it into a 1800 s simulation).
struct TomsDayInputs {
  geo::Vec2 bus_stop;        // between gates A and B
  std::vector<geo::Vec2> to_library;    // (1) via gate B and R2
  geo::Vec2 library_seat;               // B4
  std::vector<geo::Vec2> to_lecture;    // (3) via R5 to B6
  geo::Vec2 lecture_seat;
  std::vector<geo::Vec2> back_to_library;  // (5)
  geo::Rect cafe_area;                  // (7) coffee corner in B4
  std::vector<geo::Vec2> to_lab;        // (8) via R2,R1,R3 to B3
  std::vector<geo::Vec2> lab_hallway;   // (9) hallway waypoints in B3
  geo::Rect lab_area;                   // (10)
  std::vector<geo::Vec2> to_bus;        // (11) via R4 and gate A
};
[[nodiscard]] SchedulePlan make_toms_day(const TomsDayInputs& inputs,
                                         double time_scale = 1.0 / 16.0);

}  // namespace mgrid::mobility

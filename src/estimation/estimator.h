// Location estimator interface (paper §3.3).
//
// The grid broker holds one estimator per MN. Every *received* LU is fed via
// observe(); when an LU was filtered, the broker asks estimate(t) for the
// node's most likely position. Estimators must tolerate irregular
// observation intervals — that is precisely what filtering produces.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "geo/vec2.h"
#include "util/types.h"

namespace mgrid::estimation {

class LocationEstimator {
 public:
  virtual ~LocationEstimator() = default;

  /// Feeds a received location update. `velocity_hint` is the velocity the
  /// MN reported in the LU (estimators may use or ignore it). Observations
  /// must not go backwards in time; equal times replace the last fix.
  virtual void observe(SimTime t, geo::Vec2 position,
                       std::optional<geo::Vec2> velocity_hint = {}) = 0;

  /// Best position estimate at time t (>= time of last observation). Before
  /// any observation the estimate is the origin — the broker never queries
  /// an estimator it has not fed.
  [[nodiscard]] virtual geo::Vec2 estimate(SimTime t) const = 0;

  /// Forgets all state.
  virtual void reset() = 0;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  [[nodiscard]] virtual std::unique_ptr<LocationEstimator> clone() const = 0;

  /// Appends the estimator's mutable numeric state to `out` (booleans and
  /// counters as exact small integers in doubles) so a snapshot can later
  /// restore an identically-configured estimator to a bit-identical state.
  /// Configuration (alpha, order, horizon, ...) is NOT captured: load_state
  /// requires an estimator built from the same configuration, which is what
  /// the serving layer's snapshot/recovery path guarantees (the estimator
  /// chain is reconstructed from the recorded name/alpha/period). Returns
  /// false when the estimator cannot capture its state; the snapshot writer
  /// then refuses to snapshot rather than persist a lossy image.
  [[nodiscard]] virtual bool save_state(std::vector<double>& out) const {
    (void)out;
    return false;
  }

  /// Restores state written by save_state() on an identically-configured
  /// estimator, advancing `it` past the consumed words. Returns false on
  /// malformed/short input (the estimator state is then unspecified).
  [[nodiscard]] virtual bool load_state(const double*& it, const double* end) {
    (void)it;
    (void)end;
    return false;
  }
};

/// Factory: "last_known" | "dead_reckoning" | "brown_polar" |
/// "brown_cartesian" | "ses" | "ar". Throws std::invalid_argument for an
/// unknown name.
[[nodiscard]] std::unique_ptr<LocationEstimator> make_estimator(
    std::string_view name);

/// Like make_estimator(name), but with `alpha` > 0 the smoothing-based
/// estimators ("brown_polar", "brown_cartesian", "ses") are built with that
/// smoothing factor and `nominal_period` (the expected observation spacing)
/// instead of their defaults. Both the experiment runner and the serving
/// layer's replay build broker estimators through this one entry point so a
/// recorded (name, alpha, period) triple reconstructs the identical chain.
[[nodiscard]] std::unique_ptr<LocationEstimator> make_estimator(
    std::string_view name, double alpha, double nominal_period);

}  // namespace mgrid::estimation

#include <stdexcept>
#include <string>

#include "estimation/ar_estimator.h"
#include "estimation/basic_estimators.h"
#include "estimation/brown_estimator.h"
#include "estimation/estimator.h"

namespace mgrid::estimation {

std::unique_ptr<LocationEstimator> make_estimator(std::string_view name) {
  if (name == "last_known") return std::make_unique<LastKnownEstimator>();
  if (name == "dead_reckoning") {
    return std::make_unique<DeadReckoningEstimator>();
  }
  if (name == "brown_polar") return std::make_unique<BrownPolarEstimator>();
  if (name == "brown_cartesian") {
    return std::make_unique<BrownCartesianEstimator>();
  }
  if (name == "ses") return std::make_unique<SesEstimator>();
  if (name == "ar") return std::make_unique<ArEstimator>();
  throw std::invalid_argument("make_estimator: unknown estimator '" +
                              std::string(name) + "'");
}

std::unique_ptr<LocationEstimator> make_estimator(std::string_view name,
                                                  double alpha,
                                                  double nominal_period) {
  if (alpha > 0.0) {
    BrownParams params;
    params.alpha = alpha;
    params.nominal_period = nominal_period;
    if (name == "brown_polar") {
      return std::make_unique<BrownPolarEstimator>(params);
    }
    if (name == "brown_cartesian") {
      return std::make_unique<BrownCartesianEstimator>(params);
    }
    if (name == "ses") {
      return std::make_unique<SesEstimator>(alpha, nominal_period);
    }
  }
  return make_estimator(name);
}

}  // namespace mgrid::estimation

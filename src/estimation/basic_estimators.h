// Baseline estimators: last-known position and dead reckoning.
//
//  * LastKnownEstimator — the broker without any LE (the paper's "RMSE
//    without LE" lines): the estimate is simply the last received fix.
//  * DeadReckoningEstimator — projects the last fix forward with the last
//    reported (or derived) velocity; no smoothing.
#pragma once

#include "estimation/estimator.h"

namespace mgrid::estimation {

class LastKnownEstimator final : public LocationEstimator {
 public:
  void observe(SimTime t, geo::Vec2 position,
               std::optional<geo::Vec2> velocity_hint = {}) override;
  [[nodiscard]] geo::Vec2 estimate(SimTime t) const override;
  void reset() override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "last_known";
  }
  [[nodiscard]] std::unique_ptr<LocationEstimator> clone() const override {
    return std::make_unique<LastKnownEstimator>(*this);
  }
  [[nodiscard]] bool save_state(std::vector<double>& out) const override;
  [[nodiscard]] bool load_state(const double*& it,
                                const double* end) override;

 private:
  geo::Vec2 last_position_{};
};

class DeadReckoningEstimator final : public LocationEstimator {
 public:
  void observe(SimTime t, geo::Vec2 position,
               std::optional<geo::Vec2> velocity_hint = {}) override;
  [[nodiscard]] geo::Vec2 estimate(SimTime t) const override;
  void reset() override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "dead_reckoning";
  }
  [[nodiscard]] std::unique_ptr<LocationEstimator> clone() const override {
    return std::make_unique<DeadReckoningEstimator>(*this);
  }
  [[nodiscard]] bool save_state(std::vector<double>& out) const override;
  [[nodiscard]] bool load_state(const double*& it,
                                const double* end) override;

 private:
  bool has_fix_ = false;
  SimTime last_time_ = 0.0;
  geo::Vec2 last_position_{};
  geo::Vec2 last_velocity_{};
};

}  // namespace mgrid::estimation

// Forecast-horizon clamping (extension).
//
// Linear forecasts are only trustworthy for a few steps: across a long
// outage (a bursty channel's deep fade, paper §1 "frequent
// disconnectivity") an extrapolation keeps marching while the real node has
// long turned, stopped or bounced off a wall — and ends up *worse* than the
// stale fix it replaced. Production trackers therefore clamp the forecast
// horizon. This decorator forwards estimates for gaps up to `horizon`
// seconds and freezes the forecast beyond that, giving short-gap gains
// without long-gap blowups.
#pragma once

#include <memory>
#include <string>

#include "estimation/estimator.h"

namespace mgrid::estimation {

class HorizonClampedEstimator final : public LocationEstimator {
 public:
  /// `horizon` seconds (> 0): estimates beyond last-observation + horizon
  /// are evaluated at the horizon.
  HorizonClampedEstimator(std::unique_ptr<LocationEstimator> inner,
                          Duration horizon);

  void observe(SimTime t, geo::Vec2 position,
               std::optional<geo::Vec2> velocity_hint = {}) override;
  [[nodiscard]] geo::Vec2 estimate(SimTime t) const override;
  void reset() override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return name_;
  }
  [[nodiscard]] std::unique_ptr<LocationEstimator> clone() const override;
  [[nodiscard]] bool save_state(std::vector<double>& out) const override;
  [[nodiscard]] bool load_state(const double*& it,
                                const double* end) override;

  [[nodiscard]] Duration horizon() const noexcept { return horizon_; }

 private:
  std::unique_ptr<LocationEstimator> inner_;
  Duration horizon_;
  std::string name_;
  bool has_fix_ = false;
  SimTime last_time_ = 0.0;
};

}  // namespace mgrid::estimation

#include "estimation/ar_estimator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mgrid::estimation {

std::vector<double> autocovariance(const std::vector<double>& series,
                                   std::size_t max_lag) {
  const std::size_t n = series.size();
  if (n == 0) return {};
  double mean = 0.0;
  for (double x : series) mean += x;
  mean /= static_cast<double>(n);
  std::vector<double> r(max_lag + 1, 0.0);
  for (std::size_t lag = 0; lag <= max_lag && lag < n; ++lag) {
    double sum = 0.0;
    for (std::size_t i = lag; i < n; ++i) {
      sum += (series[i] - mean) * (series[i - lag] - mean);
    }
    r[lag] = sum / static_cast<double>(n);  // biased estimator
  }
  return r;
}

std::vector<double> levinson_durbin(
    const std::vector<double>& autocov) {
  if (autocov.size() < 2) return {};
  const std::size_t p = autocov.size() - 1;
  if (!(autocov[0] > 0.0)) return {};  // degenerate (constant) series
  std::vector<double> a(p, 0.0);       // current coefficients
  std::vector<double> prev(p, 0.0);
  double error = autocov[0];
  for (std::size_t k = 0; k < p; ++k) {
    double acc = autocov[k + 1];
    for (std::size_t j = 0; j < k; ++j) acc -= prev[j] * autocov[k - j];
    const double reflection = acc / error;
    a[k] = reflection;
    for (std::size_t j = 0; j < k; ++j) {
      a[j] = prev[j] - reflection * prev[k - 1 - j];
    }
    error *= (1.0 - reflection * reflection);
    if (!(error > 1e-12)) {
      // Model fits (near-)perfectly at order k+1; higher coefficients are 0.
      std::fill(a.begin() + static_cast<std::ptrdiff_t>(k) + 1, a.end(), 0.0);
      return a;
    }
    prev = a;
  }
  return a;
}

ArEstimator::ArEstimator(ArParams params) : params_(params) {
  if (params.order < 1) {
    throw std::invalid_argument("ArEstimator: order must be >= 1");
  }
  if (params.window <= params.order + 1) {
    throw std::invalid_argument("ArEstimator: window must exceed order + 1");
  }
  if (!(params.nominal_period > 0.0)) {
    throw std::invalid_argument("ArEstimator: nominal_period must be > 0");
  }
}

void ArEstimator::observe(SimTime t, geo::Vec2 position,
                          std::optional<geo::Vec2> velocity_hint) {
  if (!has_fix_) {
    has_fix_ = true;
    last_time_ = t;
    last_position_ = position;
    if (velocity_hint) last_velocity_ = *velocity_hint;
    return;
  }
  if (t < last_time_) {
    throw std::invalid_argument("ArEstimator: time went backwards");
  }
  const Duration dt = t - last_time_;
  if (dt > 0.0) {
    const geo::Vec2 velocity = (position - last_position_) / dt;
    last_velocity_ = velocity;
    vx_window_.push_back(velocity.x);
    vy_window_.push_back(velocity.y);
    while (vx_window_.size() > params_.window) {
      vx_window_.pop_front();
      vy_window_.pop_front();
    }
  }
  last_time_ = t;
  last_position_ = position;
}

double ArEstimator::forecast_axis(const std::deque<double>& window,
                                  double steps) const {
  std::vector<double> series(window.begin(), window.end());
  double mean = 0.0;
  for (double x : series) mean += x;
  mean /= static_cast<double>(series.size());

  const std::vector<double> r = autocovariance(series, params_.order);
  const std::vector<double> coeffs = levinson_durbin(r);
  if (coeffs.empty()) return mean;  // constant series: forecast its mean

  // Recursive multi-step forecast on the mean-removed series.
  std::vector<double> history;
  history.reserve(series.size());
  for (double x : series) history.push_back(x - mean);
  const auto horizon = static_cast<std::size_t>(
      std::max(1.0, std::ceil(steps)));
  double accumulated = 0.0;
  for (std::size_t step = 0; step < horizon; ++step) {
    double prediction = 0.0;
    for (std::size_t k = 0; k < coeffs.size(); ++k) {
      const std::size_t idx = history.size() - 1 - k;
      prediction += coeffs[k] * history[idx];
    }
    history.push_back(prediction);
    accumulated += prediction + mean;
  }
  // Mean predicted velocity over the gap.
  return accumulated / static_cast<double>(horizon);
}

geo::Vec2 ArEstimator::estimate(SimTime t) const {
  if (!has_fix_) return {};
  const Duration gap = t - last_time_;
  if (gap <= 0.0) return last_position_;
  if (!model_ready()) {
    // Not enough data: dead-reckon (the paper's criticism of ARIMA).
    return last_position_ + last_velocity_ * gap;
  }
  const double steps = gap / params_.nominal_period;
  const geo::Vec2 mean_velocity{forecast_axis(vx_window_, steps),
                                forecast_axis(vy_window_, steps)};
  return last_position_ + mean_velocity * gap;
}

void ArEstimator::reset() {
  vx_window_.clear();
  vy_window_.clear();
  has_fix_ = false;
  last_time_ = 0.0;
  last_position_ = {};
  last_velocity_ = {};
}

bool ArEstimator::save_state(std::vector<double>& out) const {
  out.push_back(static_cast<double>(vx_window_.size()));
  for (double x : vx_window_) out.push_back(x);
  out.push_back(static_cast<double>(vy_window_.size()));
  for (double y : vy_window_) out.push_back(y);
  out.push_back(has_fix_ ? 1.0 : 0.0);
  out.push_back(last_time_);
  out.push_back(last_position_.x);
  out.push_back(last_position_.y);
  out.push_back(last_velocity_.x);
  out.push_back(last_velocity_.y);
  return true;
}

bool ArEstimator::load_state(const double*& it, const double* end) {
  const auto read_window = [&](std::deque<double>& window) {
    if (it == end) return false;
    const double raw_count = *it++;
    // Hostile-input guard: the count must be an exact small integer no
    // larger than the configured window, or the snapshot is corrupt.
    if (!(raw_count >= 0.0) ||
        raw_count > static_cast<double>(params_.window) ||
        raw_count != std::floor(raw_count)) {
      return false;
    }
    const auto count = static_cast<std::size_t>(raw_count);
    if (static_cast<std::size_t>(end - it) < count) return false;
    window.clear();
    for (std::size_t i = 0; i < count; ++i) window.push_back(*it++);
    return true;
  };
  if (!read_window(vx_window_) || !read_window(vy_window_)) return false;
  if (end - it < 6) return false;
  has_fix_ = *it++ != 0.0;
  last_time_ = *it++;
  last_position_.x = *it++;
  last_position_.y = *it++;
  last_velocity_.x = *it++;
  last_velocity_.y = *it++;
  return true;
}

}  // namespace mgrid::estimation

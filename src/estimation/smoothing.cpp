#include "estimation/smoothing.h"

#include <stdexcept>

namespace mgrid::estimation {

SingleExponentialSmoother::SingleExponentialSmoother(double alpha)
    : alpha_(alpha) {
  if (!(alpha > 0.0) || alpha > 1.0) {
    throw std::invalid_argument(
        "SingleExponentialSmoother: alpha must be in (0, 1]");
  }
}

void SingleExponentialSmoother::add(double x) noexcept {
  if (count_ == 0) {
    s_ = x;
  } else {
    s_ = alpha_ * x + (1.0 - alpha_) * s_;
  }
  ++count_;
}

void SingleExponentialSmoother::reset() noexcept {
  s_ = 0.0;
  count_ = 0;
}

BrownDoubleSmoother::BrownDoubleSmoother(double alpha) : alpha_(alpha) {
  if (!(alpha > 0.0) || !(alpha < 1.0)) {
    throw std::invalid_argument(
        "BrownDoubleSmoother: alpha must be in (0, 1)");
  }
}

void BrownDoubleSmoother::add(double x) noexcept {
  if (count_ == 0) {
    // Standard initialisation: both smoothed series start at the first
    // observation, giving zero initial trend.
    s1_ = x;
    s2_ = x;
  } else {
    s1_ = alpha_ * x + (1.0 - alpha_) * s1_;
    s2_ = alpha_ * s1_ + (1.0 - alpha_) * s2_;
  }
  ++count_;
}

void BrownDoubleSmoother::reset() noexcept {
  s1_ = 0.0;
  s2_ = 0.0;
  count_ = 0;
}

double BrownDoubleSmoother::level() const noexcept { return 2.0 * s1_ - s2_; }

double BrownDoubleSmoother::trend() const noexcept {
  return alpha_ / (1.0 - alpha_) * (s1_ - s2_);
}

double BrownDoubleSmoother::forecast(double m) const noexcept {
  return level() + trend() * m;
}

}  // namespace mgrid::estimation

// Scalar exponential smoothing primitives.
//
//  * SingleExponentialSmoother — level only (flat forecast).
//  * BrownDoubleSmoother — Brown's linear (double) exponential smoothing
//    (McClave/Benson/Sincich): S'_t = a x_t + (1-a) S'_{t-1},
//    S''_t = a S'_t + (1-a) S''_{t-1}; level = 2S' - S'',
//    trend = a/(1-a) (S' - S''), forecast(m) = level + trend * m.
#pragma once

#include <cstddef>
#include <vector>

namespace mgrid::estimation {

class SingleExponentialSmoother {
 public:
  /// alpha in (0, 1].
  explicit SingleExponentialSmoother(double alpha);

  void add(double x) noexcept;
  void reset() noexcept;

  [[nodiscard]] bool ready() const noexcept { return count_ > 0; }
  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  /// Smoothed level (0 before the first sample).
  [[nodiscard]] double level() const noexcept { return s_; }
  /// SES forecasts are flat: forecast(m) == level() for all m.
  [[nodiscard]] double forecast(double /*m*/) const noexcept { return s_; }
  [[nodiscard]] double alpha() const noexcept { return alpha_; }

  /// State capture for snapshot/recovery (alpha is configuration, not state).
  void save_state(std::vector<double>& out) const {
    out.push_back(s_);
    out.push_back(static_cast<double>(count_));
  }
  [[nodiscard]] bool load_state(const double*& it, const double* end) {
    if (end - it < 2) return false;
    s_ = *it++;
    count_ = static_cast<std::size_t>(*it++);
    return true;
  }

 private:
  double alpha_;
  double s_ = 0.0;
  std::size_t count_ = 0;
};

class BrownDoubleSmoother {
 public:
  /// alpha in (0, 1) — the trend term divides by (1 - alpha).
  explicit BrownDoubleSmoother(double alpha);

  void add(double x) noexcept;
  void reset() noexcept;

  [[nodiscard]] bool ready() const noexcept { return count_ > 0; }
  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  /// Current level estimate a_t = 2 S' - S''.
  [[nodiscard]] double level() const noexcept;
  /// Current per-step trend b_t = alpha / (1 - alpha) * (S' - S'').
  [[nodiscard]] double trend() const noexcept;
  /// m-step-ahead forecast: level + trend * m.
  [[nodiscard]] double forecast(double m) const noexcept;
  [[nodiscard]] double alpha() const noexcept { return alpha_; }

  /// State capture for snapshot/recovery (alpha is configuration, not state).
  void save_state(std::vector<double>& out) const {
    out.push_back(s1_);
    out.push_back(s2_);
    out.push_back(static_cast<double>(count_));
  }
  [[nodiscard]] bool load_state(const double*& it, const double* end) {
    if (end - it < 3) return false;
    s1_ = *it++;
    s2_ = *it++;
    count_ = static_cast<std::size_t>(*it++);
    return true;
  }

 private:
  double alpha_;
  double s1_ = 0.0;
  double s2_ = 0.0;
  std::size_t count_ = 0;
};

}  // namespace mgrid::estimation

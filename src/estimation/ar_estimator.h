// AR(p) location estimator — the "ARIMA" comparator the paper mentions but
// rejects for its data appetite and parameter-update cost (§3.3).
//
// Fits an autoregressive model of order p to the recent per-axis velocity
// series with the Yule-Walker equations solved by Levinson-Durbin, then
// forecasts velocity recursively and integrates. Falls back to dead
// reckoning until the window holds enough samples — which is exactly the
// weakness the paper calls out.
#pragma once

#include <deque>
#include <vector>

#include "estimation/estimator.h"

namespace mgrid::estimation {

struct ArParams {
  /// Model order (>= 1).
  std::size_t order = 4;
  /// Sliding window length (> order + 1).
  std::size_t window = 64;
  /// Nominal observation period, seconds (> 0).
  Duration nominal_period = 1.0;
};

/// Solves the Yule-Walker system for AR coefficients from autocovariances
/// r[0..p] via Levinson-Durbin. Returns p coefficients (empty when r[0] is
/// not positive). Exposed for direct testing.
[[nodiscard]] std::vector<double> levinson_durbin(
    const std::vector<double>& autocovariance);

/// Sample autocovariance of `series` at lags 0..max_lag (biased estimator,
/// mean removed). Exposed for direct testing.
[[nodiscard]] std::vector<double> autocovariance(
    const std::vector<double>& series, std::size_t max_lag);

class ArEstimator final : public LocationEstimator {
 public:
  explicit ArEstimator(ArParams params = {});

  void observe(SimTime t, geo::Vec2 position,
               std::optional<geo::Vec2> velocity_hint = {}) override;
  [[nodiscard]] geo::Vec2 estimate(SimTime t) const override;
  void reset() override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "ar";
  }
  [[nodiscard]] std::unique_ptr<LocationEstimator> clone() const override {
    return std::make_unique<ArEstimator>(*this);
  }
  [[nodiscard]] bool save_state(std::vector<double>& out) const override;
  [[nodiscard]] bool load_state(const double*& it,
                                const double* end) override;

  /// Number of velocity samples currently in the window.
  [[nodiscard]] std::size_t window_fill() const noexcept {
    return vx_window_.size();
  }
  /// True once the estimator has enough data to fit the AR model.
  [[nodiscard]] bool model_ready() const noexcept {
    return vx_window_.size() >= params_.order + 2;
  }

 private:
  /// One-axis forecast: fit AR(p) on `window`, recursively predict `steps`
  /// values ahead, return the *average* predicted value over the gap (the
  /// projected displacement uses mean velocity x gap).
  [[nodiscard]] double forecast_axis(const std::deque<double>& window,
                                     double steps) const;

  ArParams params_;
  std::deque<double> vx_window_;
  std::deque<double> vy_window_;
  bool has_fix_ = false;
  SimTime last_time_ = 0.0;
  geo::Vec2 last_position_{};
  geo::Vec2 last_velocity_{};
};

}  // namespace mgrid::estimation

// Map-matched location estimation (extension beyond the paper).
//
// Brown's DES — like any linear extrapolator — overshoots a vehicle that
// turns at an intersection: the forecast sails off the road. A mobile grid
// broker knows the campus map, so it can snap forecasts for road-bound
// nodes back onto the road network. This decorator wraps any inner
// LocationEstimator and projects its estimate onto the nearest road
// centreline when (a) the node's last received fix was on a road and
// (b) the projection is within `snap_radius` of the raw estimate.
#pragma once

#include <memory>
#include <string>

#include "estimation/estimator.h"
#include "geo/campus.h"

namespace mgrid::estimation {

struct MapMatchParams {
  /// Raw estimates farther than this from every road are left unsnapped
  /// (the node probably walked into a building). Must be > 0.
  double snap_radius = 50.0;
};

class MapMatchedEstimator final : public LocationEstimator {
 public:
  /// `campus` must outlive the estimator (and all its clones).
  MapMatchedEstimator(std::unique_ptr<LocationEstimator> inner,
                      const geo::CampusMap& campus, MapMatchParams params = {});

  void observe(SimTime t, geo::Vec2 position,
               std::optional<geo::Vec2> velocity_hint = {}) override;
  [[nodiscard]] geo::Vec2 estimate(SimTime t) const override;
  void reset() override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return name_;
  }
  [[nodiscard]] std::unique_ptr<LocationEstimator> clone() const override;
  [[nodiscard]] bool save_state(std::vector<double>& out) const override;
  [[nodiscard]] bool load_state(const double*& it,
                                const double* end) override;

  /// Whether the last observation put the node on a road (and estimates are
  /// therefore being snapped).
  [[nodiscard]] bool snapping() const noexcept { return last_fix_on_road_; }

 private:
  /// Closest point on any road centreline; nullopt when the campus has no
  /// roads.
  [[nodiscard]] std::optional<geo::Vec2> nearest_road_point(geo::Vec2 p) const;

  std::unique_ptr<LocationEstimator> inner_;
  const geo::CampusMap& campus_;
  MapMatchParams params_;
  std::string name_;
  bool last_fix_on_road_ = false;
};

}  // namespace mgrid::estimation

#include "estimation/brown_estimator.h"

#include <algorithm>
#include <stdexcept>

namespace mgrid::estimation {

namespace {
void validate(const BrownParams& params) {
  if (!(params.alpha > 0.0) || !(params.alpha < 1.0)) {
    throw std::invalid_argument("BrownParams: alpha must be in (0, 1)");
  }
  if (!(params.nominal_period > 0.0)) {
    throw std::invalid_argument("BrownParams: nominal_period must be > 0");
  }
  if (params.min_heading_displacement < 0.0) {
    throw std::invalid_argument(
        "BrownParams: min_heading_displacement must be >= 0");
  }
}
}  // namespace

BrownPolarEstimator::BrownPolarEstimator(BrownParams params)
    : params_(params), speed_(params.alpha), heading_(params.alpha) {
  validate(params);
}

void BrownPolarEstimator::observe(SimTime t, geo::Vec2 position,
                                  std::optional<geo::Vec2> velocity_hint) {
  if (!has_fix_) {
    has_fix_ = true;
    last_time_ = t;
    last_position_ = position;
    // Seed the smoothers from the reported velocity when available, so the
    // very first filtered gap already has a usable forecast.
    if (velocity_hint) {
      const double v = velocity_hint->norm();
      speed_.add(v);
      if (v > 0.0) {
        last_unwrapped_heading_ = velocity_hint->heading();
        heading_.add(last_unwrapped_heading_);
      }
    }
    return;
  }
  if (t < last_time_) {
    throw std::invalid_argument("BrownPolarEstimator: time went backwards");
  }
  const Duration dt = t - last_time_;
  if (dt > 0.0) {
    const geo::Vec2 displacement = position - last_position_;
    const double dist = displacement.norm();
    speed_.add(dist / dt);
    if (dist >= params_.min_heading_displacement) {
      // Unwrap toward the previous heading so the smoother works on a
      // continuous series.
      last_unwrapped_heading_ =
          geo::unwrap_toward(displacement.heading(), last_unwrapped_heading_);
      heading_.add(last_unwrapped_heading_);
    }
  }
  last_time_ = t;
  last_position_ = position;
}

double BrownPolarEstimator::speed_forecast(double m) const noexcept {
  if (!speed_.ready()) return 0.0;
  return std::max(0.0, speed_.forecast(m));
}

double BrownPolarEstimator::heading_forecast(double m) const noexcept {
  if (!heading_.ready()) return last_unwrapped_heading_;
  return heading_.forecast(m);
}

geo::Vec2 BrownPolarEstimator::estimate(SimTime t) const {
  if (!has_fix_) return {};
  const Duration gap = t - last_time_;
  if (gap <= 0.0) return last_position_;
  const double steps = gap / params_.nominal_period;
  const double v = speed_forecast(steps);
  const double theta = heading_forecast(steps);
  // The paper's projection: next = last + v * dt * (cos, sin).
  return last_position_ + geo::from_polar(theta, v * gap);
}

void BrownPolarEstimator::reset() {
  speed_.reset();
  heading_.reset();
  has_fix_ = false;
  last_time_ = 0.0;
  last_position_ = {};
  last_unwrapped_heading_ = 0.0;
}

bool BrownPolarEstimator::save_state(std::vector<double>& out) const {
  speed_.save_state(out);
  heading_.save_state(out);
  out.push_back(has_fix_ ? 1.0 : 0.0);
  out.push_back(last_time_);
  out.push_back(last_position_.x);
  out.push_back(last_position_.y);
  out.push_back(last_unwrapped_heading_);
  return true;
}

bool BrownPolarEstimator::load_state(const double*& it, const double* end) {
  if (!speed_.load_state(it, end) || !heading_.load_state(it, end)) {
    return false;
  }
  if (end - it < 5) return false;
  has_fix_ = *it++ != 0.0;
  last_time_ = *it++;
  last_position_.x = *it++;
  last_position_.y = *it++;
  last_unwrapped_heading_ = *it++;
  return true;
}

BrownCartesianEstimator::BrownCartesianEstimator(BrownParams params)
    : params_(params), vx_(params.alpha), vy_(params.alpha) {
  validate(params);
}

void BrownCartesianEstimator::observe(SimTime t, geo::Vec2 position,
                                      std::optional<geo::Vec2> velocity_hint) {
  if (!has_fix_) {
    has_fix_ = true;
    last_time_ = t;
    last_position_ = position;
    if (velocity_hint) {
      vx_.add(velocity_hint->x);
      vy_.add(velocity_hint->y);
    }
    return;
  }
  if (t < last_time_) {
    throw std::invalid_argument(
        "BrownCartesianEstimator: time went backwards");
  }
  const Duration dt = t - last_time_;
  if (dt > 0.0) {
    const geo::Vec2 velocity = (position - last_position_) / dt;
    vx_.add(velocity.x);
    vy_.add(velocity.y);
  }
  last_time_ = t;
  last_position_ = position;
}

geo::Vec2 BrownCartesianEstimator::estimate(SimTime t) const {
  if (!has_fix_) return {};
  const Duration gap = t - last_time_;
  if (gap <= 0.0) return last_position_;
  if (!vx_.ready()) return last_position_;
  const double steps = gap / params_.nominal_period;
  return last_position_ +
         geo::Vec2{vx_.forecast(steps), vy_.forecast(steps)} * gap;
}

void BrownCartesianEstimator::reset() {
  vx_.reset();
  vy_.reset();
  has_fix_ = false;
  last_time_ = 0.0;
  last_position_ = {};
}

bool BrownCartesianEstimator::save_state(std::vector<double>& out) const {
  vx_.save_state(out);
  vy_.save_state(out);
  out.push_back(has_fix_ ? 1.0 : 0.0);
  out.push_back(last_time_);
  out.push_back(last_position_.x);
  out.push_back(last_position_.y);
  return true;
}

bool BrownCartesianEstimator::load_state(const double*& it, const double* end) {
  if (!vx_.load_state(it, end) || !vy_.load_state(it, end)) return false;
  if (end - it < 4) return false;
  has_fix_ = *it++ != 0.0;
  last_time_ = *it++;
  last_position_.x = *it++;
  last_position_.y = *it++;
  return true;
}

SesEstimator::SesEstimator(double alpha, Duration nominal_period)
    : nominal_period_(nominal_period), vx_(alpha), vy_(alpha) {
  if (!(nominal_period > 0.0)) {
    throw std::invalid_argument("SesEstimator: nominal_period must be > 0");
  }
}

void SesEstimator::observe(SimTime t, geo::Vec2 position,
                           std::optional<geo::Vec2> velocity_hint) {
  if (!has_fix_) {
    has_fix_ = true;
    last_time_ = t;
    last_position_ = position;
    if (velocity_hint) {
      vx_.add(velocity_hint->x);
      vy_.add(velocity_hint->y);
    }
    return;
  }
  if (t < last_time_) {
    throw std::invalid_argument("SesEstimator: time went backwards");
  }
  const Duration dt = t - last_time_;
  if (dt > 0.0) {
    const geo::Vec2 velocity = (position - last_position_) / dt;
    vx_.add(velocity.x);
    vy_.add(velocity.y);
  }
  last_time_ = t;
  last_position_ = position;
}

geo::Vec2 SesEstimator::estimate(SimTime t) const {
  if (!has_fix_) return {};
  const Duration gap = t - last_time_;
  if (gap <= 0.0 || !vx_.ready()) return last_position_;
  return last_position_ + geo::Vec2{vx_.level(), vy_.level()} * gap;
}

void SesEstimator::reset() {
  vx_.reset();
  vy_.reset();
  has_fix_ = false;
  last_time_ = 0.0;
  last_position_ = {};
}

bool SesEstimator::save_state(std::vector<double>& out) const {
  vx_.save_state(out);
  vy_.save_state(out);
  out.push_back(has_fix_ ? 1.0 : 0.0);
  out.push_back(last_time_);
  out.push_back(last_position_.x);
  out.push_back(last_position_.y);
  return true;
}

bool SesEstimator::load_state(const double*& it, const double* end) {
  if (!vx_.load_state(it, end) || !vy_.load_state(it, end)) return false;
  if (end - it < 4) return false;
  has_fix_ = *it++ != 0.0;
  last_time_ = *it++;
  last_position_.x = *it++;
  last_position_.y = *it++;
  return true;
}

}  // namespace mgrid::estimation

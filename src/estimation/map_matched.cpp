#include "estimation/map_matched.h"

#include <limits>
#include <stdexcept>

#include "obs/eventlog.h"

namespace mgrid::estimation {

MapMatchedEstimator::MapMatchedEstimator(
    std::unique_ptr<LocationEstimator> inner, const geo::CampusMap& campus,
    MapMatchParams params)
    : inner_(std::move(inner)), campus_(campus), params_(params) {
  if (!inner_) {
    throw std::invalid_argument("MapMatchedEstimator: null inner estimator");
  }
  if (!(params.snap_radius > 0.0)) {
    throw std::invalid_argument(
        "MapMatchedEstimator: snap_radius must be > 0");
  }
  name_ = "map_matched(" + std::string(inner_->name()) + ")";
}

void MapMatchedEstimator::observe(SimTime t, geo::Vec2 position,
                                  std::optional<geo::Vec2> velocity_hint) {
  const std::optional<RegionId> region = campus_.locate(position);
  last_fix_on_road_ = region && campus_.region(*region).is_road();
  inner_->observe(t, position, velocity_hint);
}

std::optional<geo::Vec2> MapMatchedEstimator::nearest_road_point(
    geo::Vec2 p) const {
  std::optional<geo::Vec2> best;
  double best_d = std::numeric_limits<double>::infinity();
  for (const geo::Region& region : campus_.regions()) {
    const geo::Polyline* line = region.centreline();
    if (line == nullptr) continue;
    const geo::Vec2 candidate = line->closest_point(p);
    const double d = geo::distance(candidate, p);
    if (d < best_d) {
      best_d = d;
      best = candidate;
    }
  }
  return best;
}

geo::Vec2 MapMatchedEstimator::estimate(SimTime t) const {
  const geo::Vec2 raw = inner_->estimate(t);
  if (!last_fix_on_road_) return raw;
  const std::optional<geo::Vec2> snapped = nearest_road_point(raw);
  if (!snapped) return raw;
  if (geo::distance(*snapped, raw) > params_.snap_radius) return raw;
  if (obs::eventlog_enabled()) obs::evt::estimate_snapped();
  return *snapped;
}

void MapMatchedEstimator::reset() {
  inner_->reset();
  last_fix_on_road_ = false;
}

std::unique_ptr<LocationEstimator> MapMatchedEstimator::clone() const {
  auto copy = std::make_unique<MapMatchedEstimator>(inner_->clone(), campus_,
                                                    params_);
  copy->last_fix_on_road_ = last_fix_on_road_;
  return copy;
}

bool MapMatchedEstimator::save_state(std::vector<double>& out) const {
  out.push_back(last_fix_on_road_ ? 1.0 : 0.0);
  return inner_->save_state(out);
}

bool MapMatchedEstimator::load_state(const double*& it, const double* end) {
  if (it == end) return false;
  last_fix_on_road_ = *it++ != 0.0;
  return inner_->load_state(it, end);
}

}  // namespace mgrid::estimation

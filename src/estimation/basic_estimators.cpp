#include "estimation/basic_estimators.h"

namespace mgrid::estimation {

void LastKnownEstimator::observe(SimTime /*t*/, geo::Vec2 position,
                                 std::optional<geo::Vec2> /*velocity_hint*/) {
  last_position_ = position;
}

geo::Vec2 LastKnownEstimator::estimate(SimTime /*t*/) const {
  return last_position_;
}

void LastKnownEstimator::reset() { last_position_ = {}; }

bool LastKnownEstimator::save_state(std::vector<double>& out) const {
  out.push_back(last_position_.x);
  out.push_back(last_position_.y);
  return true;
}

bool LastKnownEstimator::load_state(const double*& it, const double* end) {
  if (end - it < 2) return false;
  last_position_.x = *it++;
  last_position_.y = *it++;
  return true;
}

void DeadReckoningEstimator::observe(SimTime t, geo::Vec2 position,
                                     std::optional<geo::Vec2> velocity_hint) {
  if (velocity_hint) {
    last_velocity_ = *velocity_hint;
  } else if (has_fix_ && t > last_time_) {
    last_velocity_ = (position - last_position_) / (t - last_time_);
  }
  last_position_ = position;
  last_time_ = t;
  has_fix_ = true;
}

geo::Vec2 DeadReckoningEstimator::estimate(SimTime t) const {
  if (!has_fix_) return {};
  const Duration gap = t - last_time_;
  if (gap <= 0.0) return last_position_;
  return last_position_ + last_velocity_ * gap;
}

void DeadReckoningEstimator::reset() {
  has_fix_ = false;
  last_time_ = 0.0;
  last_position_ = {};
  last_velocity_ = {};
}

bool DeadReckoningEstimator::save_state(std::vector<double>& out) const {
  out.push_back(has_fix_ ? 1.0 : 0.0);
  out.push_back(last_time_);
  out.push_back(last_position_.x);
  out.push_back(last_position_.y);
  out.push_back(last_velocity_.x);
  out.push_back(last_velocity_.y);
  return true;
}

bool DeadReckoningEstimator::load_state(const double*& it, const double* end) {
  if (end - it < 6) return false;
  has_fix_ = *it++ != 0.0;
  last_time_ = *it++;
  last_position_.x = *it++;
  last_position_.y = *it++;
  last_velocity_.x = *it++;
  last_velocity_.y = *it++;
  return true;
}

}  // namespace mgrid::estimation

// Brown double-exponential-smoothing location estimators (paper §3.3).
//
// The paper smooths the MN's velocity and direction with Brown's DES and
// projects the next coordinates with the trigonometric identity
//   x' = x + v * dt * cos(theta),  y' = y + v * dt * sin(theta).
// BrownPolarEstimator implements exactly that (with heading unwrapping so
// the smoother never sees a +pi -> -pi discontinuity). BrownCartesianEstimator
// smooths the velocity components instead — an ablation variant that avoids
// the polar singularity at v = 0.
#pragma once

#include "estimation/estimator.h"
#include "estimation/smoothing.h"

namespace mgrid::estimation {

struct BrownParams {
  /// Smoothing coefficient in (0, 1).
  double alpha = 0.4;
  /// Nominal observation period in seconds: DES forecasts in "steps", this
  /// converts a time gap into a step count. Must be > 0.
  Duration nominal_period = 1.0;
  /// Displacements shorter than this (m) do not update the heading (the
  /// direction of a sub-centimetre wiggle is noise).
  double min_heading_displacement = 1e-3;
};

class BrownPolarEstimator final : public LocationEstimator {
 public:
  explicit BrownPolarEstimator(BrownParams params = {});

  void observe(SimTime t, geo::Vec2 position,
               std::optional<geo::Vec2> velocity_hint = {}) override;
  [[nodiscard]] geo::Vec2 estimate(SimTime t) const override;
  void reset() override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "brown_polar";
  }
  [[nodiscard]] std::unique_ptr<LocationEstimator> clone() const override {
    return std::make_unique<BrownPolarEstimator>(*this);
  }

  [[nodiscard]] bool save_state(std::vector<double>& out) const override;
  [[nodiscard]] bool load_state(const double*& it,
                                const double* end) override;

  /// Smoothed speed forecast m steps ahead, clamped at >= 0.
  [[nodiscard]] double speed_forecast(double m) const noexcept;
  /// Smoothed (unwrapped) heading forecast m steps ahead.
  [[nodiscard]] double heading_forecast(double m) const noexcept;

 private:
  BrownParams params_;
  BrownDoubleSmoother speed_;
  BrownDoubleSmoother heading_;
  bool has_fix_ = false;
  SimTime last_time_ = 0.0;
  geo::Vec2 last_position_{};
  double last_unwrapped_heading_ = 0.0;
};

class BrownCartesianEstimator final : public LocationEstimator {
 public:
  explicit BrownCartesianEstimator(BrownParams params = {});

  void observe(SimTime t, geo::Vec2 position,
               std::optional<geo::Vec2> velocity_hint = {}) override;
  [[nodiscard]] geo::Vec2 estimate(SimTime t) const override;
  void reset() override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "brown_cartesian";
  }
  [[nodiscard]] std::unique_ptr<LocationEstimator> clone() const override {
    return std::make_unique<BrownCartesianEstimator>(*this);
  }
  [[nodiscard]] bool save_state(std::vector<double>& out) const override;
  [[nodiscard]] bool load_state(const double*& it,
                                const double* end) override;

 private:
  BrownParams params_;
  BrownDoubleSmoother vx_;
  BrownDoubleSmoother vy_;
  bool has_fix_ = false;
  SimTime last_time_ = 0.0;
  geo::Vec2 last_position_{};
};

/// Single-exponential-smoothing variant (flat velocity forecast) — the
/// estimator shoot-out baseline showing why the paper picked *double*
/// smoothing.
class SesEstimator final : public LocationEstimator {
 public:
  explicit SesEstimator(double alpha = 0.4, Duration nominal_period = 1.0);

  void observe(SimTime t, geo::Vec2 position,
               std::optional<geo::Vec2> velocity_hint = {}) override;
  [[nodiscard]] geo::Vec2 estimate(SimTime t) const override;
  void reset() override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "ses";
  }
  [[nodiscard]] std::unique_ptr<LocationEstimator> clone() const override {
    return std::make_unique<SesEstimator>(*this);
  }
  [[nodiscard]] bool save_state(std::vector<double>& out) const override;
  [[nodiscard]] bool load_state(const double*& it,
                                const double* end) override;

 private:
  Duration nominal_period_;
  SingleExponentialSmoother vx_;
  SingleExponentialSmoother vy_;
  bool has_fix_ = false;
  SimTime last_time_ = 0.0;
  geo::Vec2 last_position_{};
};

}  // namespace mgrid::estimation

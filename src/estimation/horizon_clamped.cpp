#include "estimation/horizon_clamped.h"

#include <algorithm>
#include <stdexcept>

#include "obs/eventlog.h"

namespace mgrid::estimation {

HorizonClampedEstimator::HorizonClampedEstimator(
    std::unique_ptr<LocationEstimator> inner, Duration horizon)
    : inner_(std::move(inner)), horizon_(horizon) {
  if (!inner_) {
    throw std::invalid_argument("HorizonClampedEstimator: null inner");
  }
  if (!(horizon > 0.0)) {
    throw std::invalid_argument(
        "HorizonClampedEstimator: horizon must be > 0");
  }
  name_ = "horizon(" + std::string(inner_->name()) + ")";
}

void HorizonClampedEstimator::observe(SimTime t, geo::Vec2 position,
                                      std::optional<geo::Vec2> velocity_hint) {
  inner_->observe(t, position, velocity_hint);
  has_fix_ = true;
  last_time_ = t;
}

geo::Vec2 HorizonClampedEstimator::estimate(SimTime t) const {
  if (!has_fix_) return inner_->estimate(t);
  const SimTime clamped = std::min(t, last_time_ + horizon_);
  if (clamped < t && obs::eventlog_enabled()) obs::evt::estimate_clamped();
  return inner_->estimate(clamped);
}

void HorizonClampedEstimator::reset() {
  inner_->reset();
  has_fix_ = false;
  last_time_ = 0.0;
}

std::unique_ptr<LocationEstimator> HorizonClampedEstimator::clone() const {
  auto copy = std::make_unique<HorizonClampedEstimator>(inner_->clone(),
                                                        horizon_);
  copy->has_fix_ = has_fix_;
  copy->last_time_ = last_time_;
  return copy;
}

bool HorizonClampedEstimator::save_state(std::vector<double>& out) const {
  out.push_back(has_fix_ ? 1.0 : 0.0);
  out.push_back(last_time_);
  return inner_->save_state(out);
}

bool HorizonClampedEstimator::load_state(const double*& it,
                                         const double* end) {
  if (end - it < 2) return false;
  has_fix_ = *it++ != 0.0;
  last_time_ = *it++;
  return inner_->load_state(it, end);
}

}  // namespace mgrid::estimation

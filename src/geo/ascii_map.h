// ASCII rendering of a campus and node positions.
//
// Terminal-friendly situational display used by the examples: roads are
// drawn as '.', buildings as '#' outlines with their name, gates as 'G',
// and caller-supplied markers (node positions, estimates) on top. Purely a
// presentation aid — no simulation logic depends on it.
#pragma once

#include <string>
#include <vector>

#include "geo/campus.h"

namespace mgrid::geo {

struct MapMarker {
  Vec2 position;
  char glyph = 'o';
};

class AsciiMapRenderer {
 public:
  /// `columns` character cells across (>= 20); rows follow from the campus
  /// aspect ratio (terminal cells are ~2x taller than wide, compensated).
  explicit AsciiMapRenderer(const CampusMap& campus, std::size_t columns = 96);

  /// Renders the base map plus markers (later markers overwrite earlier
  /// ones on collision).
  [[nodiscard]] std::string render(
      const std::vector<MapMarker>& markers = {}) const;

  [[nodiscard]] std::size_t columns() const noexcept { return columns_; }
  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }

 private:
  struct Cell {
    std::size_t col;
    std::size_t row;
    bool on_canvas;
  };
  [[nodiscard]] Cell to_cell(Vec2 p) const noexcept;

  const CampusMap& campus_;
  std::size_t columns_;
  std::size_t rows_;
  Rect bounds_;
  double scale_x_;
  double scale_y_;
};

}  // namespace mgrid::geo

#include "geo/region.h"

#include <stdexcept>

namespace mgrid::geo {

std::string_view to_string(RegionKind kind) noexcept {
  switch (kind) {
    case RegionKind::kRoad:
      return "road";
    case RegionKind::kBuilding:
      return "building";
    case RegionKind::kGate:
      return "gate";
  }
  return "unknown";
}

Region::Region(RegionId id, std::string name, RegionKind kind, Rect bounds)
    : id_(id), name_(std::move(name)), kind_(kind), shape_(bounds) {
  if (kind == RegionKind::kRoad) {
    throw std::invalid_argument("Region: a road needs a centreline + width");
  }
}

Region::Region(RegionId id, std::string name, RegionKind kind,
               Polyline centreline, double width)
    : id_(id),
      name_(std::move(name)),
      kind_(kind),
      shape_(std::move(centreline)),
      width_(width) {
  if (kind != RegionKind::kRoad) {
    throw std::invalid_argument(
        "Region: only roads are polyline-shaped");
  }
  if (!(width > 0.0)) {
    throw std::invalid_argument("Region: road width must be > 0");
  }
}

bool Region::contains(Vec2 p) const noexcept {
  if (const Rect* r = std::get_if<Rect>(&shape_)) return r->contains(p);
  const Polyline& line = std::get<Polyline>(shape_);
  return line.distance_to(p) <= width_ * 0.5;
}

double Region::distance_to(Vec2 p) const noexcept {
  if (const Rect* r = std::get_if<Rect>(&shape_)) return r->distance_to(p);
  const Polyline& line = std::get<Polyline>(shape_);
  const double d = line.distance_to(p) - width_ * 0.5;
  return d > 0.0 ? d : 0.0;
}

Vec2 Region::representative_point() const noexcept {
  if (const Rect* r = std::get_if<Rect>(&shape_)) return r->center();
  const Polyline& line = std::get<Polyline>(shape_);
  return line.point_at_length(line.length() * 0.5);
}

Vec2 Region::sample(util::RngStream& rng) const {
  if (const Rect* r = std::get_if<Rect>(&shape_)) return r->sample(rng);
  const Polyline& line = std::get<Polyline>(shape_);
  const Vec2 on_line = line.point_at_length(rng.uniform(0.0, line.length()));
  // Lateral offset perpendicular-ish via a small random jitter box; precise
  // perpendicularity is not needed for workload placement.
  const double half = width_ * 0.5;
  Vec2 jittered{on_line.x + rng.uniform(-half, half),
                on_line.y + rng.uniform(-half, half)};
  // Project back into the corridor if the jitter escaped near a bend.
  if (line.distance_to(jittered) > half) {
    jittered = line.closest_point(jittered);
  }
  return jittered;
}

const Rect* Region::rect() const noexcept { return std::get_if<Rect>(&shape_); }

const Polyline* Region::centreline() const noexcept {
  return std::get_if<Polyline>(&shape_);
}

}  // namespace mgrid::geo

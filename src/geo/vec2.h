// 2D vector and angle arithmetic.
//
// Positions are metres in a local campus frame; headings are radians in
// (-pi, pi], measured counter-clockwise from +x. Heading continuity helpers
// (wrap/diff/unwrap) are what the direction-smoothing estimator relies on.
#pragma once

#include <cmath>
#include <numbers>

namespace mgrid::geo {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) noexcept {
    return {a.x + b.x, a.y + b.y};
  }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) noexcept {
    return {a.x - b.x, a.y - b.y};
  }
  friend constexpr Vec2 operator*(Vec2 v, double s) noexcept {
    return {v.x * s, v.y * s};
  }
  friend constexpr Vec2 operator*(double s, Vec2 v) noexcept { return v * s; }
  friend constexpr Vec2 operator/(Vec2 v, double s) noexcept {
    return {v.x / s, v.y / s};
  }
  constexpr Vec2& operator+=(Vec2 o) noexcept {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr Vec2& operator-=(Vec2 o) noexcept {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  friend constexpr bool operator==(Vec2, Vec2) noexcept = default;

  [[nodiscard]] constexpr double dot(Vec2 o) const noexcept {
    return x * o.x + y * o.y;
  }
  /// z component of the 3D cross product (signed parallelogram area).
  [[nodiscard]] constexpr double cross(Vec2 o) const noexcept {
    return x * o.y - y * o.x;
  }
  [[nodiscard]] constexpr double norm_squared() const noexcept {
    return x * x + y * y;
  }
  [[nodiscard]] double norm() const noexcept { return std::sqrt(norm_squared()); }
  /// Unit vector; returns {0,0} for the zero vector.
  [[nodiscard]] Vec2 normalized() const noexcept {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }
  /// Heading of this vector in radians; 0 for the zero vector.
  [[nodiscard]] double heading() const noexcept {
    if (x == 0.0 && y == 0.0) return 0.0;
    return std::atan2(y, x);
  }
};

[[nodiscard]] inline double distance(Vec2 a, Vec2 b) noexcept {
  return (a - b).norm();
}

[[nodiscard]] inline double distance_squared(Vec2 a, Vec2 b) noexcept {
  return (a - b).norm_squared();
}

/// Point at parameter t on segment ab (t in [0,1] interpolates; values
/// outside extrapolate).
[[nodiscard]] inline Vec2 lerp(Vec2 a, Vec2 b, double t) noexcept {
  return a + (b - a) * t;
}

/// Unit vector with the given heading.
[[nodiscard]] inline Vec2 from_polar(double heading, double magnitude = 1.0) noexcept {
  return {magnitude * std::cos(heading), magnitude * std::sin(heading)};
}

/// Wraps an angle into (-pi, pi].
[[nodiscard]] inline double wrap_angle(double a) noexcept {
  constexpr double kTwoPi = 2.0 * std::numbers::pi;
  a = std::fmod(a, kTwoPi);
  if (a <= -std::numbers::pi) a += kTwoPi;
  if (a > std::numbers::pi) a -= kTwoPi;
  return a;
}

/// Smallest signed rotation taking `from` to `to`, in (-pi, pi].
[[nodiscard]] inline double angle_diff(double to, double from) noexcept {
  return wrap_angle(to - from);
}

/// Returns the representative of `next` closest to `reference` on the real
/// line (next + 2*pi*k). This is how heading streams are unwrapped before
/// smoothing, so a node circling an atrium does not see +pi -> -pi jumps.
[[nodiscard]] inline double unwrap_toward(double next, double reference) noexcept {
  return reference + angle_diff(next, reference);
}

}  // namespace mgrid::geo

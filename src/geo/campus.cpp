#include "geo/campus.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace mgrid::geo {

RegionId CampusMap::add_region(Region region) {
  const RegionId expected{static_cast<RegionId::value_type>(regions_.size())};
  if (region.id() != expected) {
    throw std::invalid_argument(
        "CampusMap::add_region: region ids must be dense and in order");
  }
  regions_.push_back(std::move(region));
  return expected;
}

const Region& CampusMap::region(RegionId id) const {
  if (!id.valid() || id.value() >= regions_.size()) {
    throw std::out_of_range("CampusMap::region: bad region id");
  }
  return regions_[id.value()];
}

const Region* CampusMap::find_region(std::string_view name) const noexcept {
  for (const Region& r : regions_) {
    if (r.name() == name) return &r;
  }
  return nullptr;
}

std::vector<RegionId> CampusMap::regions_of_kind(RegionKind kind) const {
  std::vector<RegionId> out;
  for (const Region& r : regions_) {
    if (r.kind() == kind) out.push_back(r.id());
  }
  return out;
}

std::optional<RegionId> CampusMap::locate(Vec2 p) const noexcept {
  // Buildings first (an entrance belongs to its building), then roads,
  // then gates.
  for (RegionKind kind :
       {RegionKind::kBuilding, RegionKind::kRoad, RegionKind::kGate}) {
    for (const Region& r : regions_) {
      if (r.kind() == kind && r.contains(p)) return r.id();
    }
  }
  return std::nullopt;
}

RegionId CampusMap::nearest_region(Vec2 p) const {
  if (regions_.empty()) {
    throw std::logic_error("CampusMap::nearest_region: no regions");
  }
  RegionId best = regions_.front().id();
  double best_d = std::numeric_limits<double>::infinity();
  for (const Region& r : regions_) {
    const double d = r.distance_to(p);
    if (d < best_d) {
      best_d = d;
      best = r.id();
    }
  }
  return best;
}

NodeIndex CampusMap::entrance_of(RegionId building) const noexcept {
  for (NodeIndex i = 0; i < graph_.node_count(); ++i) {
    const GraphNode& node = graph_.node(i);
    if (node.kind == NodeKind::kEntrance && node.region == building) return i;
  }
  return kInvalidNode;
}

Rect CampusMap::bounds() const {
  if (regions_.empty()) return Rect({0, 0}, {0, 0});
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = min_x;
  double max_x = -min_x;
  double max_y = -min_x;
  auto absorb = [&](Vec2 p) {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  };
  for (const Region& r : regions_) {
    if (const Rect* rect = r.rect()) {
      absorb(rect->min());
      absorb(rect->max());
    } else if (const Polyline* line = r.centreline()) {
      for (Vec2 p : line->points()) absorb(p);
    }
  }
  return Rect({min_x, min_y}, {max_x, max_y}).inflated(10.0);
}

CampusMap CampusMap::grid_campus(std::size_t blocks_x, std::size_t blocks_y,
                                 double block_size, double road_width) {
  if (blocks_x == 0 || blocks_y == 0) {
    throw std::invalid_argument("grid_campus: needs at least 1x1 blocks");
  }
  if (!(block_size > 0.0) || !(road_width > 0.0) ||
      road_width >= block_size) {
    throw std::invalid_argument("grid_campus: invalid sizes");
  }
  CampusMap campus;
  auto next_id = [&campus] {
    return RegionId{static_cast<RegionId::value_type>(campus.region_count())};
  };
  const double width = static_cast<double>(blocks_x) * block_size;
  const double height = static_cast<double>(blocks_y) * block_size;

  // Roads: vertical RVi at x = i*block, horizontal RHj at y = j*block.
  std::vector<RegionId> vertical_roads;
  for (std::size_t i = 0; i <= blocks_x; ++i) {
    const double x = static_cast<double>(i) * block_size;
    vertical_roads.push_back(campus.add_region(Region(
        next_id(), "RV" + std::to_string(i), RegionKind::kRoad,
        Polyline({{x, 0.0}, {x, height}}), road_width)));
  }
  for (std::size_t j = 0; j <= blocks_y; ++j) {
    const double y = static_cast<double>(j) * block_size;
    campus.add_region(Region(next_id(), "RH" + std::to_string(j),
                             RegionKind::kRoad,
                             Polyline({{0.0, y}, {width, y}}), road_width));
  }

  // Buildings: one per block interior, inset far enough that the building
  // clears the road corridors.
  const double margin = std::max(road_width, block_size * 0.2);
  std::vector<std::vector<RegionId>> buildings(
      blocks_x, std::vector<RegionId>(blocks_y));
  for (std::size_t i = 0; i < blocks_x; ++i) {
    for (std::size_t j = 0; j < blocks_y; ++j) {
      const double x0 = static_cast<double>(i) * block_size + margin;
      const double y0 = static_cast<double>(j) * block_size + margin;
      buildings[i][j] = campus.add_region(Region(
          next_id(),
          "B" + std::to_string(i) + "_" + std::to_string(j),
          RegionKind::kBuilding,
          Rect({x0, y0}, {x0 + block_size - 2.0 * margin,
                          y0 + block_size - 2.0 * margin})));
    }
  }

  // Gates on the south edge (SW and SE corners).
  const RegionId gate_a = campus.add_region(
      Region(next_id(), "GateA", RegionKind::kGate,
             Rect({-10.0, -10.0}, {10.0, 10.0})));
  const RegionId gate_b = campus.add_region(
      Region(next_id(), "GateB", RegionKind::kGate,
             Rect({width - 10.0, -10.0}, {width + 10.0, 10.0})));

  // Graph: intersections, per-block mid nodes on vertical roads (entrance
  // anchors), entrances, gates.
  WaypointGraph& g = campus.graph();
  std::vector<std::vector<NodeIndex>> intersections(
      blocks_x + 1, std::vector<NodeIndex>(blocks_y + 1));
  for (std::size_t i = 0; i <= blocks_x; ++i) {
    for (std::size_t j = 0; j <= blocks_y; ++j) {
      const geo::Vec2 p{static_cast<double>(i) * block_size,
                        static_cast<double>(j) * block_size};
      NodeKind kind = NodeKind::kRoad;
      RegionId region;
      if (i == 0 && j == 0) {
        kind = NodeKind::kGate;
        region = gate_a;
      } else if (i == blocks_x && j == 0) {
        kind = NodeKind::kGate;
        region = gate_b;
      }
      intersections[i][j] = g.add_node(
          {p, kind, "X" + std::to_string(i) + "_" + std::to_string(j),
           region});
    }
  }
  // Horizontal edges.
  for (std::size_t i = 0; i < blocks_x; ++i) {
    for (std::size_t j = 0; j <= blocks_y; ++j) {
      g.add_edge(intersections[i][j], intersections[i + 1][j]);
    }
  }
  // Vertical roads carry a mid node per block row (the entrance anchor).
  for (std::size_t i = 0; i <= blocks_x; ++i) {
    for (std::size_t j = 0; j < blocks_y; ++j) {
      const double x = static_cast<double>(i) * block_size;
      const double y_mid = (static_cast<double>(j) + 0.5) * block_size;
      const NodeIndex mid = g.add_node(
          {{x, y_mid}, NodeKind::kRoad,
           "M" + std::to_string(i) + "_" + std::to_string(j),
           vertical_roads[i]});
      g.add_edge(intersections[i][j], mid);
      g.add_edge(mid, intersections[i][j + 1]);
      // The building east of this road (if any) gets its entrance here.
      if (i < blocks_x) {
        const Rect* rect = campus.region(buildings[i][j]).rect();
        const NodeIndex door = g.add_node(
            {{rect->min().x, y_mid}, NodeKind::kEntrance,
             "B" + std::to_string(i) + "_" + std::to_string(j) + ".door",
             buildings[i][j]});
        g.add_edge(mid, door);
      }
    }
  }
  return campus;
}

CampusMap CampusMap::default_campus() {
  CampusMap campus;
  auto next_id = [&campus] {
    return RegionId{static_cast<RegionId::value_type>(campus.region_count())};
  };

  constexpr double kRoadWidth = 10.0;

  // --- Roads -------------------------------------------------------------
  // R1: east-west main road; R2/R4: south gate approaches; R3/R5: north
  // spurs toward the lab / lecture buildings.
  const RegionId r1 = campus.add_region(Region(
      next_id(), "R1", RegionKind::kRoad,
      Polyline({{120.0, 220.0}, {450.0, 220.0}}), kRoadWidth));
  const RegionId r2 = campus.add_region(Region(
      next_id(), "R2", RegionKind::kRoad,
      Polyline({{300.0, 0.0}, {300.0, 220.0}}), kRoadWidth));
  const RegionId r3 = campus.add_region(Region(
      next_id(), "R3", RegionKind::kRoad,
      Polyline({{450.0, 220.0}, {450.0, 400.0}}), kRoadWidth));
  const RegionId r4 = campus.add_region(Region(
      next_id(), "R4", RegionKind::kRoad,
      Polyline({{120.0, 0.0}, {120.0, 220.0}}), kRoadWidth));
  const RegionId r5 = campus.add_region(Region(
      next_id(), "R5", RegionKind::kRoad,
      Polyline({{300.0, 220.0}, {300.0, 400.0}}), kRoadWidth));
  (void)r1;
  (void)r3;
  (void)r4;
  (void)r2;
  (void)r5;

  // --- Buildings ----------------------------------------------------------
  const RegionId b1 = campus.add_region(Region(
      next_id(), "B1", RegionKind::kBuilding,
      Rect({55.0, 260.0}, {140.0, 320.0})));
  const RegionId b2 = campus.add_region(Region(
      next_id(), "B2", RegionKind::kBuilding,
      Rect({180.0, 40.0}, {260.0, 100.0})));
  const RegionId b3 = campus.add_region(Region(
      next_id(), "B3", RegionKind::kBuilding,
      Rect({480.0, 240.0}, {560.0, 300.0})));
  const RegionId b4 = campus.add_region(Region(
      next_id(), "B4", RegionKind::kBuilding,  // the library
      Rect({200.0, 240.0}, {280.0, 300.0})));
  const RegionId b5 = campus.add_region(Region(
      next_id(), "B5", RegionKind::kBuilding,
      Rect({340.0, 60.0}, {420.0, 120.0})));
  const RegionId b6 = campus.add_region(Region(
      next_id(), "B6", RegionKind::kBuilding,  // lecture hall
      Rect({320.0, 330.0}, {400.0, 390.0})));

  // --- Gates ----------------------------------------------------------------
  const RegionId gate_a = campus.add_region(Region(
      next_id(), "GateA", RegionKind::kGate,
      Rect({110.0, -10.0}, {130.0, 10.0})));
  const RegionId gate_b = campus.add_region(Region(
      next_id(), "GateB", RegionKind::kGate,
      Rect({290.0, -10.0}, {310.0, 10.0})));

  // --- Routing graph --------------------------------------------------------
  WaypointGraph& g = campus.graph();
  const NodeIndex nA =
      g.add_node({{120.0, 0.0}, NodeKind::kGate, "gateA", gate_a});
  const NodeIndex nB =
      g.add_node({{300.0, 0.0}, NodeKind::kGate, "gateB", gate_b});
  const NodeIndex i1 =
      g.add_node({{120.0, 220.0}, NodeKind::kRoad, "R4xR1"});
  const NodeIndex i2 =
      g.add_node({{300.0, 220.0}, NodeKind::kRoad, "R2xR1xR5"});
  const NodeIndex i3 =
      g.add_node({{450.0, 220.0}, NodeKind::kRoad, "R1xR3"});
  const NodeIndex n5 = g.add_node({{300.0, 400.0}, NodeKind::kRoad, "R5end"});
  const NodeIndex n3 = g.add_node({{450.0, 400.0}, NodeKind::kRoad, "R3end"});
  // Road waypoints that anchor building entrances.
  const NodeIndex r2a = g.add_node({{300.0, 70.0}, NodeKind::kRoad, "R2a"});
  const NodeIndex r2b = g.add_node({{300.0, 90.0}, NodeKind::kRoad, "R2b"});
  const NodeIndex r3a = g.add_node({{450.0, 270.0}, NodeKind::kRoad, "R3a"});
  const NodeIndex r5a = g.add_node({{300.0, 270.0}, NodeKind::kRoad, "R5a"});
  const NodeIndex r5b = g.add_node({{300.0, 360.0}, NodeKind::kRoad, "R5b"});
  // Building entrances (positioned on the building edge facing the road).
  const NodeIndex e1 =
      g.add_node({{120.0, 260.0}, NodeKind::kEntrance, "B1.door", b1});
  const NodeIndex e2 =
      g.add_node({{260.0, 70.0}, NodeKind::kEntrance, "B2.door", b2});
  const NodeIndex e3 =
      g.add_node({{480.0, 270.0}, NodeKind::kEntrance, "B3.door", b3});
  const NodeIndex e4 =
      g.add_node({{280.0, 270.0}, NodeKind::kEntrance, "B4.door", b4});
  const NodeIndex e5 =
      g.add_node({{340.0, 90.0}, NodeKind::kEntrance, "B5.door", b5});
  const NodeIndex e6 =
      g.add_node({{320.0, 360.0}, NodeKind::kEntrance, "B6.door", b6});

  // R4: gate A north to the main road; B1 hangs off the intersection.
  g.add_edge(nA, i1);
  g.add_edge(i1, e1);
  // R2: gate B north past B2/B5 anchors to the central intersection.
  g.add_edge(nB, r2a);
  g.add_edge(r2a, r2b);
  g.add_edge(r2b, i2);
  g.add_edge(r2a, e2);
  g.add_edge(r2b, e5);
  // R1: main road.
  g.add_edge(i1, i2);
  g.add_edge(i2, i3);
  // R5: north spur past the library (B4) and lecture hall (B6).
  g.add_edge(i2, r5a);
  g.add_edge(r5a, r5b);
  g.add_edge(r5b, n5);
  g.add_edge(r5a, e4);
  g.add_edge(r5b, e6);
  // R3: north spur past the lab (B3).
  g.add_edge(i3, r3a);
  g.add_edge(r3a, n3);
  g.add_edge(r3a, e3);

  return campus;
}

}  // namespace mgrid::geo

// Geometric primitives used by the campus model: axis-aligned rectangles,
// segments and polylines (road centrelines).
#pragma once

#include <cstddef>
#include <vector>

#include "geo/vec2.h"
#include "util/rng.h"

namespace mgrid::geo {

/// Axis-aligned rectangle [min.x, max.x] x [min.y, max.y].
class Rect {
 public:
  Rect() = default;
  /// Throws std::invalid_argument unless min <= max componentwise.
  Rect(Vec2 min, Vec2 max);

  [[nodiscard]] Vec2 min() const noexcept { return min_; }
  [[nodiscard]] Vec2 max() const noexcept { return max_; }
  [[nodiscard]] Vec2 center() const noexcept {
    return (min_ + max_) * 0.5;
  }
  [[nodiscard]] double width() const noexcept { return max_.x - min_.x; }
  [[nodiscard]] double height() const noexcept { return max_.y - min_.y; }
  [[nodiscard]] double area() const noexcept { return width() * height(); }

  [[nodiscard]] bool contains(Vec2 p) const noexcept;
  /// Closest point of the rectangle to p (p itself when inside).
  [[nodiscard]] Vec2 clamp(Vec2 p) const noexcept;
  /// Distance from p to the rectangle (0 when inside).
  [[nodiscard]] double distance_to(Vec2 p) const noexcept;
  /// Rectangle grown by `margin` on every side (may be negative; throws if
  /// it would invert).
  [[nodiscard]] Rect inflated(double margin) const;
  /// Uniform random interior point.
  [[nodiscard]] Vec2 sample(util::RngStream& rng) const;

 private:
  Vec2 min_{};
  Vec2 max_{};
};

/// Line segment.
class Segment {
 public:
  Segment() = default;
  Segment(Vec2 a, Vec2 b) noexcept : a_(a), b_(b) {}

  [[nodiscard]] Vec2 a() const noexcept { return a_; }
  [[nodiscard]] Vec2 b() const noexcept { return b_; }
  [[nodiscard]] double length() const noexcept { return distance(a_, b_); }
  /// Point at arc-length fraction t in [0,1] (clamped).
  [[nodiscard]] Vec2 point_at(double t) const noexcept;
  /// Closest point on the segment to p.
  [[nodiscard]] Vec2 closest_point(Vec2 p) const noexcept;
  [[nodiscard]] double distance_to(Vec2 p) const noexcept {
    return distance(closest_point(p), p);
  }

 private:
  Vec2 a_{};
  Vec2 b_{};
};

/// A connected chain of segments (road centreline).
class Polyline {
 public:
  Polyline() = default;
  /// Throws std::invalid_argument with fewer than 2 points.
  explicit Polyline(std::vector<Vec2> points);

  [[nodiscard]] const std::vector<Vec2>& points() const noexcept {
    return points_;
  }
  [[nodiscard]] std::size_t segment_count() const noexcept {
    return points_.size() - 1;
  }
  [[nodiscard]] Segment segment(std::size_t i) const;
  [[nodiscard]] double length() const noexcept { return total_length_; }

  /// Point at arc length s from the start (clamped to [0, length]).
  [[nodiscard]] Vec2 point_at_length(double s) const noexcept;
  /// Closest point on the polyline to p.
  [[nodiscard]] Vec2 closest_point(Vec2 p) const noexcept;
  [[nodiscard]] double distance_to(Vec2 p) const noexcept {
    return distance(closest_point(p), p);
  }

 private:
  std::vector<Vec2> points_;
  std::vector<double> cumulative_;  // cumulative length at each vertex
  double total_length_ = 0.0;
};

}  // namespace mgrid::geo

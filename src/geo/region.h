// Campus access regions.
//
// The paper's experiment site (Fig. 1) exposes 11 regions offering mobile
// grid access: 5 roads and 6 buildings, plus two campus gates. A region is
// either a rectangle (building, gate pad) or a widened polyline (road).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <variant>

#include "geo/shapes.h"
#include "util/types.h"

namespace mgrid::geo {

enum class RegionKind { kRoad, kBuilding, kGate };

[[nodiscard]] std::string_view to_string(RegionKind kind) noexcept;

class Region {
 public:
  /// Building or gate pad region.
  Region(RegionId id, std::string name, RegionKind kind, Rect bounds);
  /// Road region: centreline plus total width. Throws std::invalid_argument
  /// unless width > 0 or if kind is not kRoad.
  Region(RegionId id, std::string name, RegionKind kind, Polyline centreline,
         double width);

  [[nodiscard]] RegionId id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] RegionKind kind() const noexcept { return kind_; }

  [[nodiscard]] bool is_road() const noexcept {
    return kind_ == RegionKind::kRoad;
  }
  [[nodiscard]] bool is_building() const noexcept {
    return kind_ == RegionKind::kBuilding;
  }

  [[nodiscard]] bool contains(Vec2 p) const noexcept;
  /// Distance from p to the region (0 inside).
  [[nodiscard]] double distance_to(Vec2 p) const noexcept;
  /// A representative interior point (rect centre / polyline midpoint).
  [[nodiscard]] Vec2 representative_point() const noexcept;
  /// Uniform random interior point (rejection-free for rects; for roads,
  /// a random arc length plus lateral offset).
  [[nodiscard]] Vec2 sample(util::RngStream& rng) const;

  /// The rectangle, if this region is rect-shaped.
  [[nodiscard]] const Rect* rect() const noexcept;
  /// The centreline, if this region is a road.
  [[nodiscard]] const Polyline* centreline() const noexcept;
  /// Road width (0 for rect regions).
  [[nodiscard]] double road_width() const noexcept { return width_; }

 private:
  RegionId id_;
  std::string name_;
  RegionKind kind_;
  std::variant<Rect, Polyline> shape_;
  double width_ = 0.0;
};

}  // namespace mgrid::geo

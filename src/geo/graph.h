// Waypoint routing graph.
//
// Linear Movement State nodes travel between campus destinations along the
// road network; this graph gives them realistic paths (Dijkstra over road
// waypoints, gates and building entrances) rather than straight-line
// teleports through buildings.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "geo/vec2.h"
#include "util/types.h"

namespace mgrid::geo {

enum class NodeKind {
  kRoad,      ///< road waypoint / intersection — usable by vehicles
  kGate,      ///< campus gate — usable by vehicles and pedestrians
  kEntrance,  ///< building entrance — pedestrians only
};

using NodeIndex = std::uint32_t;
inline constexpr NodeIndex kInvalidNode =
    std::numeric_limits<NodeIndex>::max();

struct GraphNode {
  Vec2 position;
  NodeKind kind = NodeKind::kRoad;
  std::string name;
  /// Region this node belongs to / leads into (e.g. the entrance's
  /// building), if any.
  RegionId region = RegionId::invalid();
};

class WaypointGraph {
 public:
  /// Adds a node, returns its index.
  NodeIndex add_node(GraphNode node);
  /// Adds an undirected edge with weight = Euclidean distance between the
  /// endpoints. Throws std::out_of_range for bad indices,
  /// std::invalid_argument for a self-loop.
  void add_edge(NodeIndex a, NodeIndex b);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edge_count_; }
  [[nodiscard]] const GraphNode& node(NodeIndex i) const {
    return nodes_.at(i);
  }
  [[nodiscard]] const std::vector<std::pair<NodeIndex, double>>& neighbors(
      NodeIndex i) const {
    return adjacency_.at(i);
  }

  /// Node closest to `p`, optionally restricted by kind predicate.
  [[nodiscard]] NodeIndex nearest_node(Vec2 p) const;
  [[nodiscard]] NodeIndex nearest_node_of_kind(Vec2 p, NodeKind kind) const;
  /// First node with the given name, or kInvalidNode.
  [[nodiscard]] NodeIndex find_by_name(std::string_view name) const noexcept;

  /// All node indices of a given kind.
  [[nodiscard]] std::vector<NodeIndex> nodes_of_kind(NodeKind kind) const;

  /// Dijkstra shortest path (inclusive of both endpoints). Empty when
  /// unreachable; a single element when from == to.
  [[nodiscard]] std::vector<NodeIndex> shortest_path(NodeIndex from,
                                                     NodeIndex to) const;
  /// Total length of the shortest path; +inf when unreachable.
  [[nodiscard]] double shortest_distance(NodeIndex from, NodeIndex to) const;

  /// Positions along a node path.
  [[nodiscard]] std::vector<Vec2> path_points(
      const std::vector<NodeIndex>& path) const;

  /// True if every node can reach every other node.
  [[nodiscard]] bool is_connected() const;

 private:
  struct DijkstraResult {
    std::vector<double> dist;
    std::vector<NodeIndex> prev;
  };
  [[nodiscard]] DijkstraResult run_dijkstra(NodeIndex from) const;

  std::vector<GraphNode> nodes_;
  std::vector<std::vector<std::pair<NodeIndex, double>>> adjacency_;
  std::size_t edge_count_ = 0;
};

}  // namespace mgrid::geo

#include "geo/ascii_map.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mgrid::geo {

AsciiMapRenderer::AsciiMapRenderer(const CampusMap& campus,
                                   std::size_t columns)
    : campus_(campus), columns_(columns), bounds_(campus.bounds()) {
  if (columns < 20) {
    throw std::invalid_argument("AsciiMapRenderer: columns must be >= 20");
  }
  const double width = std::max(bounds_.width(), 1.0);
  const double height = std::max(bounds_.height(), 1.0);
  // Terminal cells are roughly twice as tall as wide.
  rows_ = std::max<std::size_t>(
      8, static_cast<std::size_t>(
             std::lround(static_cast<double>(columns) * height / width / 2.0)));
  scale_x_ = (static_cast<double>(columns_) - 1.0) / width;
  scale_y_ = (static_cast<double>(rows_) - 1.0) / height;
}

AsciiMapRenderer::Cell AsciiMapRenderer::to_cell(Vec2 p) const noexcept {
  const double fx = (p.x - bounds_.min().x) * scale_x_;
  // Screen rows grow downward; campus y grows upward.
  const double fy =
      (static_cast<double>(rows_) - 1.0) - (p.y - bounds_.min().y) * scale_y_;
  Cell cell{};
  cell.on_canvas = fx >= -0.5 && fy >= -0.5 &&
                   fx < static_cast<double>(columns_) - 0.5 &&
                   fy < static_cast<double>(rows_) - 0.5;
  cell.col = static_cast<std::size_t>(std::clamp(
      std::lround(fx), 0L, static_cast<long>(columns_) - 1));
  cell.row = static_cast<std::size_t>(std::clamp(
      std::lround(fy), 0L, static_cast<long>(rows_) - 1));
  return cell;
}

std::string AsciiMapRenderer::render(
    const std::vector<MapMarker>& markers) const {
  std::vector<std::string> canvas(rows_, std::string(columns_, ' '));
  auto put = [&](Vec2 p, char glyph) {
    const Cell cell = to_cell(p);
    if (cell.on_canvas) canvas[cell.row][cell.col] = glyph;
  };

  // Roads: sample each centreline densely.
  for (const Region& region : campus_.regions()) {
    const Polyline* line = region.centreline();
    if (line == nullptr) continue;
    const double step =
        std::max(1.0, 0.5 / std::max(scale_x_, scale_y_));
    for (double s = 0.0; s <= line->length(); s += step) {
      put(line->point_at_length(s), '.');
    }
    put(line->points().back(), '.');
  }

  // Buildings: rectangle outlines plus a name label inside.
  for (const Region& region : campus_.regions()) {
    const Rect* rect = region.rect();
    if (rect == nullptr) continue;
    const char glyph = region.kind() == RegionKind::kGate ? 'G' : '#';
    const Cell lo = to_cell({rect->min().x, rect->min().y});
    const Cell hi = to_cell({rect->max().x, rect->max().y});
    const std::size_t row_top = std::min(lo.row, hi.row);
    const std::size_t row_bottom = std::max(lo.row, hi.row);
    for (std::size_t col = hi.col >= lo.col ? lo.col : hi.col;
         col <= std::max(lo.col, hi.col); ++col) {
      canvas[row_top][col] = glyph;
      canvas[row_bottom][col] = glyph;
    }
    for (std::size_t row = row_top; row <= row_bottom; ++row) {
      canvas[row][lo.col] = glyph;
      canvas[row][hi.col] = glyph;
    }
    if (region.kind() == RegionKind::kBuilding) {
      const Cell centre = to_cell(rect->center());
      const std::string& name = region.name();
      std::size_t col = centre.col >= name.size() / 2
                            ? centre.col - name.size() / 2
                            : 0;
      for (char c : name) {
        if (col >= columns_) break;
        canvas[centre.row][col++] = c;
      }
    }
  }

  for (const MapMarker& marker : markers) {
    put(marker.position, marker.glyph);
  }

  std::string out;
  out.reserve(rows_ * (columns_ + 1));
  for (const std::string& row : canvas) {
    out += row;
    out += '\n';
  }
  return out;
}

}  // namespace mgrid::geo

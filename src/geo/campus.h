// The synthetic university campus (paper Fig. 1 substitute).
//
// 11 mobile-grid access regions — roads R1..R5 and buildings B1..B6 — plus
// gates A and B on the south edge, wired into a waypoint routing graph. The
// default layout mirrors the paper's description: gates on the south side,
// the library (B4) reached from gate B via R2, lecture/lab buildings off the
// northern road spurs.
#pragma once

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "geo/graph.h"
#include "geo/region.h"
#include "util/types.h"

namespace mgrid::geo {

class CampusMap {
 public:
  /// Builds the default campus described above.
  static CampusMap default_campus();

  /// Generates a Manhattan-grid campus of `blocks_x` x `blocks_y` city
  /// blocks (block edge `block_size` metres): (blocks_x+1) vertical and
  /// (blocks_y+1) horizontal roads, one building per block interior with an
  /// entrance onto its western road, and two gates on the south edge. Used
  /// by the scalability experiments — the Table-1 workload recipe scales
  /// with the region count. Throws std::invalid_argument for zero blocks
  /// or non-positive sizes.
  static CampusMap grid_campus(std::size_t blocks_x, std::size_t blocks_y,
                               double block_size = 120.0,
                               double road_width = 10.0);

  /// Builder used by tests / custom scenarios. Regions must be added before
  /// graph nodes referring to them.
  CampusMap() = default;

  RegionId add_region(Region region);
  WaypointGraph& graph() noexcept { return graph_; }
  [[nodiscard]] const WaypointGraph& graph() const noexcept { return graph_; }

  [[nodiscard]] std::size_t region_count() const noexcept {
    return regions_.size();
  }
  [[nodiscard]] const Region& region(RegionId id) const;
  [[nodiscard]] const std::vector<Region>& regions() const noexcept {
    return regions_;
  }
  /// First region with the given name; nullptr when absent.
  [[nodiscard]] const Region* find_region(std::string_view name) const noexcept;

  [[nodiscard]] std::vector<RegionId> regions_of_kind(RegionKind kind) const;
  [[nodiscard]] std::vector<RegionId> roads() const {
    return regions_of_kind(RegionKind::kRoad);
  }
  [[nodiscard]] std::vector<RegionId> buildings() const {
    return regions_of_kind(RegionKind::kBuilding);
  }

  /// Region containing p. Buildings take precedence over roads (an entrance
  /// point belongs to the building), roads over gates. nullopt when p lies
  /// on none of the regions (open ground).
  [[nodiscard]] std::optional<RegionId> locate(Vec2 p) const noexcept;

  /// Region whose boundary is closest to p (always defined).
  [[nodiscard]] RegionId nearest_region(Vec2 p) const;

  /// Entrance graph node of a building region; kInvalidNode if none.
  [[nodiscard]] NodeIndex entrance_of(RegionId building) const noexcept;

  /// Overall bounding rectangle of all regions (with a small margin).
  [[nodiscard]] Rect bounds() const;

 private:
  std::vector<Region> regions_;
  WaypointGraph graph_;
};

}  // namespace mgrid::geo

#include "geo/shapes.h"

#include <algorithm>
#include <stdexcept>

namespace mgrid::geo {

Rect::Rect(Vec2 min, Vec2 max) : min_(min), max_(max) {
  if (min.x > max.x || min.y > max.y) {
    throw std::invalid_argument("Rect: min must be <= max componentwise");
  }
}

bool Rect::contains(Vec2 p) const noexcept {
  return p.x >= min_.x && p.x <= max_.x && p.y >= min_.y && p.y <= max_.y;
}

Vec2 Rect::clamp(Vec2 p) const noexcept {
  return {std::clamp(p.x, min_.x, max_.x), std::clamp(p.y, min_.y, max_.y)};
}

double Rect::distance_to(Vec2 p) const noexcept {
  return distance(clamp(p), p);
}

Rect Rect::inflated(double margin) const {
  return Rect({min_.x - margin, min_.y - margin},
              {max_.x + margin, max_.y + margin});
}

Vec2 Rect::sample(util::RngStream& rng) const {
  return {rng.uniform(min_.x, max_.x), rng.uniform(min_.y, max_.y)};
}

Vec2 Segment::point_at(double t) const noexcept {
  return lerp(a_, b_, std::clamp(t, 0.0, 1.0));
}

Vec2 Segment::closest_point(Vec2 p) const noexcept {
  const Vec2 ab = b_ - a_;
  const double len2 = ab.norm_squared();
  if (len2 == 0.0) return a_;
  const double t = std::clamp((p - a_).dot(ab) / len2, 0.0, 1.0);
  return a_ + ab * t;
}

Polyline::Polyline(std::vector<Vec2> points) : points_(std::move(points)) {
  if (points_.size() < 2) {
    throw std::invalid_argument("Polyline: needs at least 2 points");
  }
  cumulative_.reserve(points_.size());
  cumulative_.push_back(0.0);
  for (std::size_t i = 1; i < points_.size(); ++i) {
    total_length_ += distance(points_[i - 1], points_[i]);
    cumulative_.push_back(total_length_);
  }
}

Segment Polyline::segment(std::size_t i) const {
  if (i + 1 >= points_.size()) {
    throw std::out_of_range("Polyline::segment index");
  }
  return {points_[i], points_[i + 1]};
}

Vec2 Polyline::point_at_length(double s) const noexcept {
  if (s <= 0.0) return points_.front();
  if (s >= total_length_) return points_.back();
  // Binary search for the segment containing arc length s.
  auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), s);
  const std::size_t idx =
      static_cast<std::size_t>(it - cumulative_.begin()) - 1;
  const double seg_start = cumulative_[idx];
  const double seg_len = cumulative_[idx + 1] - seg_start;
  const double t = seg_len > 0.0 ? (s - seg_start) / seg_len : 0.0;
  return lerp(points_[idx], points_[idx + 1], t);
}

Vec2 Polyline::closest_point(Vec2 p) const noexcept {
  Vec2 best = points_.front();
  double best_d2 = distance_squared(best, p);
  for (std::size_t i = 0; i + 1 < points_.size(); ++i) {
    const Vec2 candidate = Segment(points_[i], points_[i + 1]).closest_point(p);
    const double d2 = distance_squared(candidate, p);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = candidate;
    }
  }
  return best;
}

}  // namespace mgrid::geo

#include "geo/graph.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace mgrid::geo {

NodeIndex WaypointGraph::add_node(GraphNode node) {
  nodes_.push_back(std::move(node));
  adjacency_.emplace_back();
  return static_cast<NodeIndex>(nodes_.size() - 1);
}

void WaypointGraph::add_edge(NodeIndex a, NodeIndex b) {
  if (a >= nodes_.size() || b >= nodes_.size()) {
    throw std::out_of_range("WaypointGraph::add_edge: bad node index");
  }
  if (a == b) {
    throw std::invalid_argument("WaypointGraph::add_edge: self-loop");
  }
  const double w = distance(nodes_[a].position, nodes_[b].position);
  adjacency_[a].emplace_back(b, w);
  adjacency_[b].emplace_back(a, w);
  ++edge_count_;
}

NodeIndex WaypointGraph::nearest_node(Vec2 p) const {
  NodeIndex best = kInvalidNode;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (NodeIndex i = 0; i < nodes_.size(); ++i) {
    const double d2 = distance_squared(nodes_[i].position, p);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = i;
    }
  }
  return best;
}

NodeIndex WaypointGraph::nearest_node_of_kind(Vec2 p, NodeKind kind) const {
  NodeIndex best = kInvalidNode;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (NodeIndex i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].kind != kind) continue;
    const double d2 = distance_squared(nodes_[i].position, p);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = i;
    }
  }
  return best;
}

NodeIndex WaypointGraph::find_by_name(std::string_view name) const noexcept {
  for (NodeIndex i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == name) return i;
  }
  return kInvalidNode;
}

std::vector<NodeIndex> WaypointGraph::nodes_of_kind(NodeKind kind) const {
  std::vector<NodeIndex> out;
  for (NodeIndex i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].kind == kind) out.push_back(i);
  }
  return out;
}

WaypointGraph::DijkstraResult WaypointGraph::run_dijkstra(
    NodeIndex from) const {
  if (from >= nodes_.size()) {
    throw std::out_of_range("WaypointGraph: bad source node");
  }
  DijkstraResult result;
  result.dist.assign(nodes_.size(), std::numeric_limits<double>::infinity());
  result.prev.assign(nodes_.size(), kInvalidNode);
  using Entry = std::pair<double, NodeIndex>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
  result.dist[from] = 0.0;
  queue.emplace(0.0, from);
  while (!queue.empty()) {
    auto [d, u] = queue.top();
    queue.pop();
    if (d > result.dist[u]) continue;  // stale entry
    for (auto [v, w] : adjacency_[u]) {
      const double candidate = d + w;
      if (candidate < result.dist[v]) {
        result.dist[v] = candidate;
        result.prev[v] = u;
        queue.emplace(candidate, v);
      }
    }
  }
  return result;
}

std::vector<NodeIndex> WaypointGraph::shortest_path(NodeIndex from,
                                                    NodeIndex to) const {
  if (to >= nodes_.size()) {
    throw std::out_of_range("WaypointGraph: bad target node");
  }
  if (from == to) return {from};
  const DijkstraResult result = run_dijkstra(from);
  if (result.prev[to] == kInvalidNode) return {};
  std::vector<NodeIndex> path;
  for (NodeIndex at = to; at != kInvalidNode; at = result.prev[at]) {
    path.push_back(at);
    if (at == from) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

double WaypointGraph::shortest_distance(NodeIndex from, NodeIndex to) const {
  if (to >= nodes_.size()) {
    throw std::out_of_range("WaypointGraph: bad target node");
  }
  return run_dijkstra(from).dist[to];
}

std::vector<Vec2> WaypointGraph::path_points(
    const std::vector<NodeIndex>& path) const {
  std::vector<Vec2> out;
  out.reserve(path.size());
  for (NodeIndex i : path) out.push_back(node(i).position);
  return out;
}

bool WaypointGraph::is_connected() const {
  if (nodes_.empty()) return true;
  const DijkstraResult result = run_dijkstra(0);
  return std::all_of(result.dist.begin(), result.dist.end(), [](double d) {
    return d < std::numeric_limits<double>::infinity();
  });
}

}  // namespace mgrid::geo

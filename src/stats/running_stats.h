// Streaming moment statistics (Welford's algorithm).
#pragma once

#include <cstddef>
#include <limits>

namespace mgrid::stats {

/// Numerically stable running mean / variance / min / max over a stream of
/// samples. O(1) memory; merging two accumulators is supported so per-thread
/// partial statistics can be combined.
class RunningStats {
 public:
  void add(double sample) noexcept;
  /// Combines another accumulator into this one (parallel-merge formula).
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  /// Mean of samples; 0 when empty.
  [[nodiscard]] double mean() const noexcept;
  /// Population variance; 0 with fewer than 2 samples.
  [[nodiscard]] double variance() const noexcept;
  /// Sample (Bessel-corrected) variance; 0 with fewer than 2 samples.
  [[nodiscard]] double sample_variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double sum() const noexcept { return mean() * count_; }
  /// +inf / -inf when empty (so min/max of an empty merge behaves).
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // sum of squared deviations from the mean
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exponentially-weighted moving average (used for adaptive monitoring of
/// velocity in the classifier).
class Ewma {
 public:
  /// `alpha` in (0, 1]: weight of the newest sample.
  explicit Ewma(double alpha);

  void add(double sample) noexcept;
  void reset() noexcept;

  [[nodiscard]] bool empty() const noexcept { return !initialized_; }
  /// Current smoothed value; 0 when empty.
  [[nodiscard]] double value() const noexcept {
    return initialized_ ? value_ : 0.0;
  }
  [[nodiscard]] double alpha() const noexcept { return alpha_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

}  // namespace mgrid::stats

#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace mgrid::stats {

Histogram::Histogram(double lo, double hi, std::size_t bucket_count)
    : lo_(lo), hi_(hi) {
  if (!(lo < hi)) throw std::invalid_argument("Histogram: requires lo < hi");
  if (bucket_count == 0) {
    throw std::invalid_argument("Histogram: requires bucket_count > 0");
  }
  counts_.assign(bucket_count, 0);
  bucket_width_ = (hi - lo) / static_cast<double>(bucket_count);
}

void Histogram::add(double sample) noexcept {
  ++total_;
  if (sample < lo_) {
    ++underflow_;
    return;
  }
  if (sample >= hi_) {
    ++overflow_;
    return;
  }
  auto bucket = static_cast<std::size_t>((sample - lo_) / bucket_width_);
  bucket = std::min(bucket, counts_.size() - 1);  // guard FP edge at hi
  ++counts_[bucket];
}

void Histogram::merge(const Histogram& other) {
  if (lo_ != other.lo_ || hi_ != other.hi_ ||
      counts_.size() != other.counts_.size()) {
    throw std::invalid_argument("Histogram::merge: mismatched layout");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

double Histogram::bucket_lo(std::size_t bucket) const {
  if (bucket >= counts_.size()) {
    throw std::out_of_range("Histogram::bucket_lo");
  }
  return lo_ + static_cast<double>(bucket) * bucket_width_;
}

double Histogram::bucket_hi(std::size_t bucket) const {
  return bucket_lo(bucket) + bucket_width_;
}

double Histogram::cdf_at(std::size_t bucket) const {
  if (bucket >= counts_.size()) throw std::out_of_range("Histogram::cdf_at");
  const std::size_t in_range = total_ - underflow_ - overflow_;
  if (in_range == 0) return 0.0;
  std::size_t cumulative = 0;
  for (std::size_t i = 0; i <= bucket; ++i) cumulative += counts_[i];
  return static_cast<double>(cumulative) / static_cast<double>(in_range);
}

std::string Histogram::render(std::size_t max_width) const {
  const std::size_t peak = counts_.empty()
                               ? 0
                               : *std::max_element(counts_.begin(),
                                                   counts_.end());
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar =
        peak == 0 ? 0 : counts_[i] * std::max<std::size_t>(max_width, 1) / peak;
    out << '[' << bucket_lo(i) << ", " << bucket_hi(i) << ") "
        << std::string(bar, '#') << ' ' << counts_[i] << '\n';
  }
  if (underflow_ != 0) out << "underflow " << underflow_ << '\n';
  if (overflow_ != 0) out << "overflow " << overflow_ << '\n';
  return out.str();
}

}  // namespace mgrid::stats

// Time-bucketed series collection.
//
// Every figure in the paper is a per-second series over the 1800 s run; the
// collectors bucket samples by simulation time and expose mean / sum / count
// per bucket plus whole-series summaries.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "stats/running_stats.h"
#include "util/types.h"

namespace mgrid::stats {

/// One bucket of a TimeSeries.
struct SeriesBucket {
  SimTime start = 0.0;  ///< inclusive bucket start time
  RunningStats stats;   ///< samples that fell into this bucket
};

/// A series of fixed-width time buckets starting at t0. Adding a sample for a
/// time beyond the current end extends the series (empty buckets are kept so
/// the x-axis stays regular).
class TimeSeries {
 public:
  /// `bucket_width` must be > 0.
  explicit TimeSeries(Duration bucket_width, SimTime t0 = 0.0);

  /// Records `value` at simulation time `t`. Times before t0 are clamped to
  /// the first bucket.
  void add(SimTime t, double value);

  /// Merges another series bucketwise. Throws std::invalid_argument unless
  /// bucket width and origin match.
  void merge(const TimeSeries& other);

  /// Adds `value` to a pure-count series (equivalent to add(t, value) where
  /// consumers read sum()).
  void add_count(SimTime t, double value = 1.0) { add(t, value); }

  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return buckets_.size();
  }
  [[nodiscard]] Duration bucket_width() const noexcept { return width_; }
  [[nodiscard]] const SeriesBucket& bucket(std::size_t i) const {
    return buckets_.at(i);
  }
  [[nodiscard]] const std::vector<SeriesBucket>& buckets() const noexcept {
    return buckets_;
  }

  /// Per-bucket sums (counts for counter series) / means, in time order.
  [[nodiscard]] std::vector<double> sums() const;
  [[nodiscard]] std::vector<double> means() const;
  /// Cumulative per-bucket sums.
  [[nodiscard]] std::vector<double> cumulative_sums() const;

  /// Whole-series totals.
  [[nodiscard]] double total_sum() const noexcept;
  [[nodiscard]] std::size_t total_count() const noexcept;
  /// Mean of per-bucket sums — e.g. "average LUs per second".
  [[nodiscard]] double mean_bucket_sum() const noexcept;

 private:
  Duration width_;
  SimTime t0_;
  std::vector<SeriesBucket> buckets_;
};

/// Percentile of a sample set (linear interpolation, p in [0,100]).
/// Throws std::invalid_argument on an empty set or out-of-range p.
[[nodiscard]] double percentile(std::vector<double> samples, double p);

}  // namespace mgrid::stats

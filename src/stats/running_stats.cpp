#include "stats/running_stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mgrid::stats {

void RunningStats::add(double sample) noexcept {
  ++count_;
  const double delta = sample - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (sample - mean_);
  min_ = std::min(min_, sample);
  max_ = std::max(max_, sample);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() noexcept { *this = RunningStats{}; }

double RunningStats::mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::sample_variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

Ewma::Ewma(double alpha) : alpha_(alpha) {
  if (!(alpha > 0.0) || alpha > 1.0) {
    throw std::invalid_argument("Ewma: alpha must be in (0, 1]");
  }
}

void Ewma::add(double sample) noexcept {
  if (!initialized_) {
    value_ = sample;
    initialized_ = true;
    return;
  }
  value_ = alpha_ * sample + (1.0 - alpha_) * value_;
}

void Ewma::reset() noexcept {
  value_ = 0.0;
  initialized_ = false;
}

}  // namespace mgrid::stats

// Fixed-range histogram with overflow/underflow tracking.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mgrid::stats {

class Histogram {
 public:
  /// Buckets span [lo, hi) uniformly. Requires lo < hi and bucket_count > 0.
  Histogram(double lo, double hi, std::size_t bucket_count);

  void add(double sample) noexcept;

  /// Combines another histogram into this one (per-thread partial
  /// histograms, telemetry shards). Ranges and bucket counts must match;
  /// throws std::invalid_argument otherwise.
  void merge(const Histogram& other);

  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return counts_.size();
  }
  [[nodiscard]] std::size_t count(std::size_t bucket) const {
    return counts_.at(bucket);
  }
  [[nodiscard]] std::size_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::size_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  /// Inclusive lower edge of bucket i.
  [[nodiscard]] double bucket_lo(std::size_t bucket) const;
  [[nodiscard]] double bucket_hi(std::size_t bucket) const;

  /// Fraction of in-range samples at or below the upper edge of bucket i.
  [[nodiscard]] double cdf_at(std::size_t bucket) const;

  /// Multi-line ASCII rendering (for example programs).
  [[nodiscard]] std::string render(std::size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  double bucket_width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace mgrid::stats

#include "stats/csv.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace mgrid::stats {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) {
    throw std::invalid_argument("Table: header must not be empty");
  }
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table: row width " +
                                std::to_string(row.size()) +
                                " != header width " +
                                std::to_string(header_.size()));
  }
  rows_.push_back(std::move(row));
}

void Table::add_row_numeric(const std::vector<double>& row, int precision) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) cells.push_back(format_double(v, precision));
  add_row(std::move(cells));
}

std::string csv_escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string format_double(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

void Table::write_csv(std::ostream& out) const {
  auto write_row = [&out](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) out << ',';
      out << csv_escape(row[i]);
    }
    out << '\n';
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
}

void Table::write_pretty(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    out << '\n';
  };
  write_row(header_);
  std::size_t rule_width = 0;
  for (std::size_t w : widths) rule_width += w + 2;
  out << std::string(rule_width, '-') << '\n';
  for (const auto& row : rows_) write_row(row);
}

void Table::save_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Table: cannot write " + path);
  write_csv(out);
}

}  // namespace mgrid::stats

#include "stats/time_series.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mgrid::stats {

TimeSeries::TimeSeries(Duration bucket_width, SimTime t0)
    : width_(bucket_width), t0_(t0) {
  if (!(bucket_width > 0.0)) {
    throw std::invalid_argument("TimeSeries: bucket_width must be > 0");
  }
}

void TimeSeries::add(SimTime t, double value) {
  double offset = (t - t0_) / width_;
  std::size_t index =
      offset <= 0.0 ? 0 : static_cast<std::size_t>(std::floor(offset));
  if (index >= buckets_.size()) {
    const std::size_t old_size = buckets_.size();
    buckets_.resize(index + 1);
    for (std::size_t i = old_size; i < buckets_.size(); ++i) {
      buckets_[i].start = t0_ + static_cast<double>(i) * width_;
    }
  }
  buckets_[index].stats.add(value);
}

void TimeSeries::merge(const TimeSeries& other) {
  if (other.width_ != width_ || other.t0_ != t0_) {
    throw std::invalid_argument("TimeSeries::merge: mismatched geometry");
  }
  if (other.buckets_.size() > buckets_.size()) {
    const std::size_t old_size = buckets_.size();
    buckets_.resize(other.buckets_.size());
    for (std::size_t i = old_size; i < buckets_.size(); ++i) {
      buckets_[i].start = t0_ + static_cast<double>(i) * width_;
    }
  }
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i].stats.merge(other.buckets_[i].stats);
  }
}

std::vector<double> TimeSeries::sums() const {
  std::vector<double> out;
  out.reserve(buckets_.size());
  for (const SeriesBucket& b : buckets_) out.push_back(b.stats.sum());
  return out;
}

std::vector<double> TimeSeries::means() const {
  std::vector<double> out;
  out.reserve(buckets_.size());
  for (const SeriesBucket& b : buckets_) out.push_back(b.stats.mean());
  return out;
}

std::vector<double> TimeSeries::cumulative_sums() const {
  std::vector<double> out = sums();
  double running = 0.0;
  for (double& v : out) {
    running += v;
    v = running;
  }
  return out;
}

double TimeSeries::total_sum() const noexcept {
  double total = 0.0;
  for (const SeriesBucket& b : buckets_) total += b.stats.sum();
  return total;
}

std::size_t TimeSeries::total_count() const noexcept {
  std::size_t total = 0;
  for (const SeriesBucket& b : buckets_) total += b.stats.count();
  return total;
}

double TimeSeries::mean_bucket_sum() const noexcept {
  if (buckets_.empty()) return 0.0;
  return total_sum() / static_cast<double>(buckets_.size());
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) {
    throw std::invalid_argument("percentile: empty sample set");
  }
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("percentile: p out of [0, 100]");
  }
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples.front();
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

}  // namespace mgrid::stats

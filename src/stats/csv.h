// CSV / console table writer.
//
// Bench binaries print each figure both as an aligned console table (for a
// human) and optionally as CSV (for re-plotting). Quoting follows RFC 4180.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mgrid::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must match the header width.
  void add_row(std::vector<std::string> row);
  /// Convenience: formats doubles with the given precision.
  void add_row_numeric(const std::vector<double>& row, int precision = 3);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t column_count() const noexcept {
    return header_.size();
  }
  [[nodiscard]] const std::vector<std::string>& header() const noexcept {
    return header_;
  }
  [[nodiscard]] const std::vector<std::string>& row(std::size_t i) const {
    return rows_.at(i);
  }

  /// RFC-4180 CSV (fields containing comma/quote/newline are quoted).
  void write_csv(std::ostream& out) const;
  /// Space-padded console rendering.
  void write_pretty(std::ostream& out) const;
  /// Writes CSV to a file; throws std::runtime_error if unwritable.
  void save_csv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Quotes one CSV field per RFC 4180 if needed.
[[nodiscard]] std::string csv_escape(const std::string& field);

/// Formats a double with fixed precision (helper shared by benches).
[[nodiscard]] std::string format_double(double value, int precision = 3);

}  // namespace mgrid::stats

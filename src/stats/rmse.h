// Root-mean-square-error accumulation (paper §4.2, Ghilani & Wolf).
//
// The paper scores location accuracy as RMSE = sqrt(sum((RL - EL)^2) / n)
// where RL is the real location, EL the broker's (estimated or stale) view,
// and n the number of MN samples.
#pragma once

#include <cstddef>

namespace mgrid::stats {

class RmseAccumulator {
 public:
  /// Adds one scalar error term (already a distance).
  void add_error(double error) noexcept;
  /// Adds the error between a real and an estimated 2D point.
  void add_point(double real_x, double real_y, double est_x,
                 double est_y) noexcept;
  void merge(const RmseAccumulator& other) noexcept;
  void reset() noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  /// sqrt(mean squared error); 0 when empty.
  [[nodiscard]] double rmse() const noexcept;
  /// mean absolute error; 0 when empty.
  [[nodiscard]] double mae() const noexcept;
  /// Largest single error seen.
  [[nodiscard]] double max_error() const noexcept { return max_error_; }

 private:
  std::size_t count_ = 0;
  double sum_squared_ = 0.0;
  double sum_abs_ = 0.0;
  double max_error_ = 0.0;
};

}  // namespace mgrid::stats

#include "stats/rmse.h"

#include <algorithm>
#include <cmath>

namespace mgrid::stats {

void RmseAccumulator::add_error(double error) noexcept {
  const double magnitude = std::abs(error);
  ++count_;
  sum_squared_ += magnitude * magnitude;
  sum_abs_ += magnitude;
  max_error_ = std::max(max_error_, magnitude);
}

void RmseAccumulator::add_point(double real_x, double real_y, double est_x,
                                double est_y) noexcept {
  const double dx = real_x - est_x;
  const double dy = real_y - est_y;
  add_error(std::sqrt(dx * dx + dy * dy));
}

void RmseAccumulator::merge(const RmseAccumulator& other) noexcept {
  count_ += other.count_;
  sum_squared_ += other.sum_squared_;
  sum_abs_ += other.sum_abs_;
  max_error_ = std::max(max_error_, other.max_error_);
}

void RmseAccumulator::reset() noexcept { *this = RmseAccumulator{}; }

double RmseAccumulator::rmse() const noexcept {
  if (count_ == 0) return 0.0;
  return std::sqrt(sum_squared_ / static_cast<double>(count_));
}

double RmseAccumulator::mae() const noexcept {
  if (count_ == 0) return 0.0;
  return sum_abs_ / static_cast<double>(count_);
}

}  // namespace mgrid::stats

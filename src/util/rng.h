// Deterministic random-number streams.
//
// Every stochastic component (mobility models, channel loss, workload
// construction) draws from a named stream derived from a single experiment
// seed, so an experiment is reproducible bit-for-bit regardless of the order
// in which components are constructed or stepped.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace mgrid::util {

/// A single deterministic random stream (thin wrapper over mt19937_64 with
/// the distribution helpers this codebase needs).
class RngStream {
 public:
  explicit RngStream(std::uint64_t seed) noexcept : engine_(seed) {}

  /// Uniform double in [lo, hi). Requires lo <= hi.
  [[nodiscard]] double uniform(double lo, double hi);
  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01();
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Normal with the given mean / stddev. Requires stddev >= 0.
  [[nodiscard]] double normal(double mean, double stddev);
  /// Exponential with the given rate. Requires rate > 0.
  [[nodiscard]] double exponential(double rate);
  /// Bernoulli trial.
  [[nodiscard]] bool chance(double probability);
  /// Uniformly chosen index into a container of `size` elements. Requires
  /// size > 0.
  [[nodiscard]] std::size_t index(std::size_t size);

  /// Pick a uniformly random element.
  template <typename T>
  [[nodiscard]] const T& pick(std::span<const T> items) {
    return items[index(items.size())];
  }
  template <typename T>
  [[nodiscard]] const T& pick(const std::vector<T>& items) {
    return items[index(items.size())];
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[index(i)]);
    }
  }

  /// Access to the raw engine for std distributions not wrapped above.
  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Derives independent named streams from one experiment seed.
///
/// The sub-seed is a hash of (root seed, stream name), so adding a new stream
/// never perturbs existing ones.
class RngRegistry {
 public:
  explicit RngRegistry(std::uint64_t root_seed) noexcept
      : root_seed_(root_seed) {}

  /// A fresh stream for `name`. Calling twice with the same name yields two
  /// streams with identical state (it derives, it does not share).
  [[nodiscard]] RngStream stream(std::string_view name) const;

  /// A fresh stream for (name, index) — e.g. one per mobile node.
  [[nodiscard]] RngStream stream(std::string_view name,
                                 std::uint64_t index) const;

  [[nodiscard]] std::uint64_t root_seed() const noexcept { return root_seed_; }

 private:
  std::uint64_t root_seed_;
};

/// Stable 64-bit FNV-1a hash of a string (used for seed derivation; must not
/// change across platforms or releases).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view text) noexcept;

/// SplitMix64 step — used to whiten derived seeds.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t x) noexcept;

}  // namespace mgrid::util

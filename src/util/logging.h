// Minimal leveled logger.
//
// Simulation components log through a process-global logger so examples can
// turn on tracing (`log_level=debug`) without plumbing a logger handle
// through every constructor. The logger is synchronised; the threaded
// federation executor logs from multiple threads.
#pragma once

#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace mgrid::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

[[nodiscard]] std::string_view to_string(LogLevel level) noexcept;
/// Parses "trace|debug|info|warn|error|off" (case-insensitive); returns
/// kInfo for unknown text.
[[nodiscard]] LogLevel parse_log_level(std::string_view text) noexcept;

class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  /// The process-global logger (default: kWarn to stderr).
  static Logger& instance();

  void set_level(LogLevel level) noexcept;
  [[nodiscard]] LogLevel level() const noexcept;
  [[nodiscard]] bool enabled(LogLevel level) const noexcept;

  /// Replaces the output sink (tests capture output this way). Custom sinks
  /// receive the raw, unformatted message; only the default stderr sink
  /// prints the format_line() prefix. Pass nullptr to restore the default
  /// stderr sink.
  void set_sink(Sink sink);

  /// Installs a simulation-time source consulted when formatting the default
  /// sink's prefix (the federation installs its grant time for the duration
  /// of a run). Pass nullptr to clear; the prefix then omits sim time.
  /// The clock is per-thread: when several federations run concurrently
  /// (sweep engine), each worker's log lines carry its own grant time.
  void set_clock(std::function<double()> clock);

  /// The default sink's line format:
  ///   [LEVEL HH:MM:SS.mmm sim=12.500] message     (with a clock installed)
  ///   [LEVEL HH:MM:SS.mmm] message                (without)
  [[nodiscard]] std::string format_line(LogLevel level,
                                        std::string_view message) const;

  void log(LogLevel level, std::string_view message);

 private:
  Logger();

  mutable std::mutex mutex_;
  LogLevel level_;
  Sink sink_;
};

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream out;
  (out << ... << std::forward<Args>(args));
  return out.str();
}
}  // namespace detail

/// Streams all arguments into one message; evaluation is skipped entirely
/// when the level is disabled.
template <typename... Args>
void log(LogLevel level, Args&&... args) {
  Logger& logger = Logger::instance();
  if (!logger.enabled(level)) return;
  logger.log(level, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_trace(Args&&... args) {
  log(LogLevel::kTrace, std::forward<Args>(args)...);
}
template <typename... Args>
void log_debug(Args&&... args) {
  log(LogLevel::kDebug, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(Args&&... args) {
  log(LogLevel::kInfo, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(Args&&... args) {
  log(LogLevel::kWarn, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(Args&&... args) {
  log(LogLevel::kError, std::forward<Args>(args)...);
}

}  // namespace mgrid::util

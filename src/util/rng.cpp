#include "util/rng.h"

#include <stdexcept>

namespace mgrid::util {

double RngStream::uniform(double lo, double hi) {
  if (lo > hi) throw std::invalid_argument("RngStream::uniform: lo > hi");
  if (lo == hi) return lo;
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

double RngStream::uniform01() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

std::int64_t RngStream::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("RngStream::uniform_int: lo > hi");
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double RngStream::normal(double mean, double stddev) {
  if (stddev < 0.0) {
    throw std::invalid_argument("RngStream::normal: stddev < 0");
  }
  if (stddev == 0.0) return mean;
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

double RngStream::exponential(double rate) {
  if (rate <= 0.0) {
    throw std::invalid_argument("RngStream::exponential: rate <= 0");
  }
  return std::exponential_distribution<double>(rate)(engine_);
}

bool RngStream::chance(double probability) {
  if (probability <= 0.0) return false;
  if (probability >= 1.0) return true;
  return uniform01() < probability;
}

std::size_t RngStream::index(std::size_t size) {
  if (size == 0) throw std::invalid_argument("RngStream::index: empty range");
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(size) - 1));
}

std::uint64_t fnv1a64(std::string_view text) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (char c : text) {
    hash ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

RngStream RngRegistry::stream(std::string_view name) const {
  return RngStream(splitmix64(root_seed_ ^ fnv1a64(name)));
}

RngStream RngRegistry::stream(std::string_view name,
                              std::uint64_t index) const {
  return RngStream(splitmix64(splitmix64(root_seed_ ^ fnv1a64(name)) + index));
}

}  // namespace mgrid::util

// Minimal JSON writer + reader (no dependencies).
//
// JsonWriter emits RFC 8259 JSON with proper string escaping and
// non-finite-number handling. JsonValue::parse() is the matching reader —
// added for the sweep engine's --baseline A/B comparisons, which ingest a
// prior run's sweep JSON artifact. It is a strict, small recursive-descent
// parser for the documents this repository writes, not a general validator.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mgrid::util {

/// Escapes a string for inclusion inside JSON quotes.
[[nodiscard]] std::string json_escape(std::string_view text);

/// Streaming writer with explicit begin/end nesting. Misuse (ending the
/// wrong scope, keys in arrays, ...) throws std::logic_error.
class JsonWriter {
 public:
  JsonWriter();

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Sets the key for the next value (only valid inside an object).
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(double number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(bool boolean);
  JsonWriter& null();

  /// Convenience: key + value.
  template <typename T>
  JsonWriter& field(std::string_view name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }

  /// Key + array of doubles in one call.
  JsonWriter& field_array(std::string_view name,
                          const std::vector<double>& values);

  /// The finished document. Throws std::logic_error when scopes are still
  /// open or nothing was written.
  [[nodiscard]] std::string str() const;

 private:
  enum class Scope { kObject, kArray };

  void before_value();

  std::string out_;
  std::vector<Scope> stack_;
  std::vector<bool> first_in_scope_;
  bool key_pending_ = false;
  bool done_ = false;
};

/// Thrown by JsonValue::parse on malformed input (message carries the byte
/// offset of the failure).
class JsonParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Immutable parsed JSON document. Numbers are doubles (the writer never
/// emits integers outside the exact-double range); object member order is
/// preserved as written.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  using Member = std::pair<std::string, JsonValue>;

  /// Parses one complete JSON document (trailing garbage is an error).
  [[nodiscard]] static JsonValue parse(std::string_view text);

  JsonValue() = default;

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }

  /// Typed accessors; throw JsonParseError on a kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& as_array() const;
  [[nodiscard]] const std::vector<Member>& as_object() const;

  /// Object member by key; nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;
  /// Object member by key; throws JsonParseError when absent.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;
  /// Convenience: member `key` as a double, or `fallback` when absent.
  [[nodiscard]] double number_or(std::string_view key,
                                 double fallback) const noexcept;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<Member> object_;
};

}  // namespace mgrid::util

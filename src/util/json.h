// Minimal JSON writer (no dependencies).
//
// Emits RFC 8259 JSON with proper string escaping and non-finite-number
// handling. Writer-only by design: the repository exports results for
// external plotting/analysis, it never ingests JSON.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mgrid::util {

/// Escapes a string for inclusion inside JSON quotes.
[[nodiscard]] std::string json_escape(std::string_view text);

/// Streaming writer with explicit begin/end nesting. Misuse (ending the
/// wrong scope, keys in arrays, ...) throws std::logic_error.
class JsonWriter {
 public:
  JsonWriter();

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Sets the key for the next value (only valid inside an object).
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(double number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(bool boolean);
  JsonWriter& null();

  /// Convenience: key + value.
  template <typename T>
  JsonWriter& field(std::string_view name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }

  /// Key + array of doubles in one call.
  JsonWriter& field_array(std::string_view name,
                          const std::vector<double>& values);

  /// The finished document. Throws std::logic_error when scopes are still
  /// open or nothing was written.
  [[nodiscard]] std::string str() const;

 private:
  enum class Scope { kObject, kArray };

  void before_value();

  std::string out_;
  std::vector<Scope> stack_;
  std::vector<bool> first_in_scope_;
  bool key_pending_ = false;
  bool done_ = false;
};

}  // namespace mgrid::util

#include "util/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace mgrid::util {

namespace {
bool is_space(char c) noexcept {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}
}  // namespace

std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_trimmed(std::string_view s, char sep) {
  std::vector<std::string> out = split(s, sep);
  for (std::string& field : out) field = std::string(trim(field));
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::optional<double> parse_double(std::string_view s) noexcept {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  // std::from_chars for double is available in libstdc++ 11+.
  double value = 0.0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

std::optional<std::int64_t> parse_int(std::string_view s) noexcept {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  std::int64_t value = 0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

std::optional<bool> parse_bool(std::string_view s) {
  const std::string lowered = to_lower(trim(s));
  if (lowered == "true" || lowered == "1" || lowered == "yes" ||
      lowered == "on") {
    return true;
  }
  if (lowered == "false" || lowered == "0" || lowered == "no" ||
      lowered == "off") {
    return false;
  }
  return std::nullopt;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += sep;
    out += items[i];
  }
  return out;
}

}  // namespace mgrid::util

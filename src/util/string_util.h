// Small string helpers used by the config parser and CSV writers.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mgrid::util {

/// Removes leading/trailing whitespace.
[[nodiscard]] std::string_view trim(std::string_view s) noexcept;

/// Splits on `sep`, keeping empty fields. "a,,b" -> {"a", "", "b"}.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Splits on `sep` and trims each field.
[[nodiscard]] std::vector<std::string> split_trimmed(std::string_view s,
                                                     char sep);

/// ASCII lower-casing.
[[nodiscard]] std::string to_lower(std::string_view s);

/// True if `s` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s,
                               std::string_view prefix) noexcept;

/// Strict full-string parses. Return nullopt on any trailing garbage.
[[nodiscard]] std::optional<double> parse_double(std::string_view s) noexcept;
[[nodiscard]] std::optional<std::int64_t> parse_int(
    std::string_view s) noexcept;
[[nodiscard]] std::optional<bool> parse_bool(std::string_view s);

/// Joins items with `sep`.
[[nodiscard]] std::string join(const std::vector<std::string>& items,
                               std::string_view sep);

}  // namespace mgrid::util

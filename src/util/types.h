// Strongly-typed identifiers and time types shared by every subsystem.
//
// The mobile grid manipulates several id spaces (mobile nodes, regions,
// clusters, gateways, federates). Mixing them up is a classic source of silent
// bugs, so each space gets its own tag type; ids are only comparable within a
// space.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>

namespace mgrid {

/// Simulation time in seconds. All kernels, filters and estimators use this.
using SimTime = double;

/// Duration in seconds.
using Duration = double;

namespace detail {

/// A typed integral id. `Tag` makes each instantiation a distinct type.
template <typename Tag>
class TypedId {
 public:
  using value_type = std::uint32_t;

  static constexpr value_type kInvalidValue =
      std::numeric_limits<value_type>::max();

  constexpr TypedId() noexcept = default;
  constexpr explicit TypedId(value_type v) noexcept : value_(v) {}

  [[nodiscard]] constexpr value_type value() const noexcept { return value_; }
  [[nodiscard]] constexpr bool valid() const noexcept {
    return value_ != kInvalidValue;
  }

  static constexpr TypedId invalid() noexcept { return TypedId{}; }

  friend constexpr auto operator<=>(TypedId, TypedId) noexcept = default;

 private:
  value_type value_ = kInvalidValue;
};

}  // namespace detail

struct MnTag {};
struct RegionTag {};
struct ClusterTag {};
struct GatewayTag {};
struct FederateTag {};
struct JobTag {};

/// Identifier of a mobile node (MN).
using MnId = detail::TypedId<MnTag>;
/// Identifier of a campus region (road, building or gate).
using RegionId = detail::TypedId<RegionTag>;
/// Identifier of an ADF velocity/direction cluster.
using ClusterId = detail::TypedId<ClusterTag>;
/// Identifier of a wireless gateway (AP or base station).
using GatewayId = detail::TypedId<GatewayTag>;
/// Identifier of a federate in the HLA-lite federation.
using FederateId = detail::TypedId<FederateTag>;
/// Identifier of a grid job submitted to the broker.
using JobId = detail::TypedId<JobTag>;

}  // namespace mgrid

namespace std {
template <typename Tag>
struct hash<mgrid::detail::TypedId<Tag>> {
  size_t operator()(mgrid::detail::TypedId<Tag> id) const noexcept {
    return std::hash<typename mgrid::detail::TypedId<Tag>::value_type>{}(
        id.value());
  }
};
}  // namespace std

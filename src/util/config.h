// Key/value experiment configuration.
//
// Examples and benches accept `key=value` pairs (command line or file) so an
// experiment can be re-run with different DTH factors, seeds or durations
// without recompiling. Keys are case-sensitive; `#` starts a comment.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace mgrid::util {

/// Thrown when a requested key is missing or fails to parse as the requested
/// type.
class ConfigError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Config {
 public:
  Config() = default;

  /// Parses newline-separated `key = value` text. Blank lines and `#`
  /// comments are ignored. Later duplicates override earlier ones.
  /// Throws ConfigError on a malformed (no '=') non-empty line.
  static Config from_text(std::string_view text);

  /// Parses `key=value` tokens (e.g. argv tail). A token without '=' is an
  /// error. GNU-style spellings are normalised: leading dashes are stripped
  /// and dashes inside the key become underscores, so `--metrics-out=m.prom`
  /// sets `metrics_out`.
  static Config from_args(const std::vector<std::string>& args);

  /// Loads from a file. Throws ConfigError if unreadable.
  static Config from_file(const std::string& path);

  /// The one entry point every binary should use: parses argv[1..argc)
  /// with from_args' dash normalisation, and when `file_key` names a config
  /// file (e.g. `config=run.cfg`) loads it and merges the command line over
  /// it — so flags beat the file everywhere, identically. Pass a different
  /// `file_key` when the binary already uses one (run_sweep's `grid=`);
  /// empty disables file loading.
  static Config from_argv(int argc, const char* const* argv,
                          std::string_view file_key = "config");

  void set(std::string key, std::string value);

  [[nodiscard]] bool contains(std::string_view key) const noexcept;
  [[nodiscard]] std::optional<std::string> get(std::string_view key) const;

  /// Typed access with a default when the key is absent; throws ConfigError
  /// when present but unparsable (a typo should never be silently ignored).
  [[nodiscard]] std::string get_string(std::string_view key,
                                       std::string_view fallback) const;
  [[nodiscard]] double get_double(std::string_view key, double fallback) const;
  [[nodiscard]] std::int64_t get_int(std::string_view key,
                                     std::int64_t fallback) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool fallback) const;

  /// Typed access for required keys; throws ConfigError when absent.
  [[nodiscard]] double require_double(std::string_view key) const;
  [[nodiscard]] std::int64_t require_int(std::string_view key) const;
  [[nodiscard]] std::string require_string(std::string_view key) const;

  /// Comma-separated list of doubles, e.g. "0.75,1.0,1.25".
  [[nodiscard]] std::vector<double> get_double_list(
      std::string_view key, const std::vector<double>& fallback) const;

  /// Merges `other` over this config (other wins on conflicts).
  void merge(const Config& other);

  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
  [[nodiscard]] const std::map<std::string, std::string, std::less<>>& values()
      const noexcept {
    return values_;
  }

 private:
  std::map<std::string, std::string, std::less<>> values_;
};

}  // namespace mgrid::util

#include "util/logging.h"

#include <chrono>
#include <cstdio>
#include <ctime>
#include <iostream>

#include "util/string_util.h"

namespace mgrid::util {

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace:
      return "trace";
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "unknown";
}

LogLevel parse_log_level(std::string_view text) noexcept {
  const std::string lowered = to_lower(trim(text));
  if (lowered == "trace") return LogLevel::kTrace;
  if (lowered == "debug") return LogLevel::kDebug;
  if (lowered == "info") return LogLevel::kInfo;
  if (lowered == "warn" || lowered == "warning") return LogLevel::kWarn;
  if (lowered == "error") return LogLevel::kError;
  if (lowered == "off" || lowered == "none") return LogLevel::kOff;
  return LogLevel::kInfo;
}

namespace {

/// Wall-clock timestamp "HH:MM:SS.mmm" (local time).
std::string wall_timestamp() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm tm_buf{};
  localtime_r(&seconds, &tm_buf);
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "%02d:%02d:%02d.%03d", tm_buf.tm_hour,
                tm_buf.tm_min, tm_buf.tm_sec, static_cast<int>(millis));
  return buffer;
}

/// Calling thread's sim-time source. Thread-local (not a locked member) so
/// concurrent federation runs never race on it and each thread's lines are
/// stamped with the grant time of the federation *it* is executing.
thread_local std::function<double()> t_clock;

}  // namespace

Logger::Logger() : level_(LogLevel::kWarn), sink_(nullptr) {}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_level(LogLevel level) noexcept {
  std::lock_guard lock(mutex_);
  level_ = level;
}

LogLevel Logger::level() const noexcept {
  std::lock_guard lock(mutex_);
  return level_;
}

bool Logger::enabled(LogLevel level) const noexcept {
  return level != LogLevel::kOff && level >= this->level();
}

void Logger::set_sink(Sink sink) {
  std::lock_guard lock(mutex_);
  sink_ = std::move(sink);
}

void Logger::set_clock(std::function<double()> clock) {
  t_clock = std::move(clock);
}

std::string Logger::format_line(LogLevel level,
                                std::string_view message) const {
  const std::function<double()>& clock = t_clock;
  std::string line;
  line += '[';
  line += to_string(level);
  line += ' ';
  line += wall_timestamp();
  if (clock) {
    char sim[32];
    std::snprintf(sim, sizeof(sim), " sim=%.3f", clock());
    line += sim;
  }
  line += "] ";
  line += message;
  return line;
}

void Logger::log(LogLevel level, std::string_view message) {
  // Format (which re-locks to read the clock) before taking the sink lock.
  if (level == LogLevel::kOff || !enabled(level)) return;
  Sink sink;
  {
    std::lock_guard lock(mutex_);
    sink = sink_;
  }
  if (sink) {
    sink(level, message);
    return;
  }
  const std::string line = format_line(level, message);
  std::lock_guard lock(mutex_);
  std::cerr << line << '\n';
}

}  // namespace mgrid::util

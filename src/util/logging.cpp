#include "util/logging.h"

#include <iostream>

#include "util/string_util.h"

namespace mgrid::util {

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace:
      return "trace";
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "unknown";
}

LogLevel parse_log_level(std::string_view text) noexcept {
  const std::string lowered = to_lower(trim(text));
  if (lowered == "trace") return LogLevel::kTrace;
  if (lowered == "debug") return LogLevel::kDebug;
  if (lowered == "info") return LogLevel::kInfo;
  if (lowered == "warn" || lowered == "warning") return LogLevel::kWarn;
  if (lowered == "error") return LogLevel::kError;
  if (lowered == "off" || lowered == "none") return LogLevel::kOff;
  return LogLevel::kInfo;
}

Logger::Logger() : level_(LogLevel::kWarn), sink_(nullptr) {}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_level(LogLevel level) noexcept {
  std::lock_guard lock(mutex_);
  level_ = level;
}

LogLevel Logger::level() const noexcept {
  std::lock_guard lock(mutex_);
  return level_;
}

bool Logger::enabled(LogLevel level) const noexcept {
  return level != LogLevel::kOff && level >= this->level();
}

void Logger::set_sink(Sink sink) {
  std::lock_guard lock(mutex_);
  sink_ = std::move(sink);
}

void Logger::log(LogLevel level, std::string_view message) {
  std::lock_guard lock(mutex_);
  if (level == LogLevel::kOff || level < level_) return;
  if (sink_) {
    sink_(level, message);
    return;
  }
  std::cerr << '[' << to_string(level) << "] " << message << '\n';
}

}  // namespace mgrid::util

#include "util/config.h"

#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace mgrid::util {

namespace {

void parse_line(std::string_view line, Config& config) {
  // Strip comments first so `key = value  # note` works.
  if (std::size_t hash = line.find('#'); hash != std::string_view::npos) {
    line = line.substr(0, hash);
  }
  line = trim(line);
  if (line.empty()) return;
  std::size_t eq = line.find('=');
  if (eq == std::string_view::npos) {
    throw ConfigError("config line missing '=': " + std::string(line));
  }
  std::string key{trim(line.substr(0, eq))};
  std::string value{trim(line.substr(eq + 1))};
  if (key.empty()) {
    throw ConfigError("config line with empty key: " + std::string(line));
  }
  config.set(std::move(key), std::move(value));
}

}  // namespace

Config Config::from_text(std::string_view text) {
  Config config;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t nl = text.find('\n', start);
    std::string_view line = (nl == std::string_view::npos)
                                ? text.substr(start)
                                : text.substr(start, nl - start);
    parse_line(line, config);
    if (nl == std::string_view::npos) break;
    start = nl + 1;
  }
  return config;
}

Config Config::from_args(const std::vector<std::string>& args) {
  Config config;
  for (const std::string& arg : args) {
    // Accept flag spellings on the command line only: `--metrics-out=x`
    // is the key `metrics_out`. Config files keep keys verbatim.
    std::string_view token = arg;
    while (!token.empty() && token.front() == '-') token.remove_prefix(1);
    const std::size_t eq = token.find('=');
    if (eq != std::string_view::npos) {
      std::string normalized(token);
      for (std::size_t i = 0; i < eq; ++i) {
        if (normalized[i] == '-') normalized[i] = '_';
      }
      parse_line(normalized, config);
    } else {
      parse_line(token, config);
    }
  }
  return config;
}

Config Config::from_argv(int argc, const char* const* argv,
                         std::string_view file_key) {
  std::vector<std::string> args;
  args.reserve(argc > 0 ? static_cast<std::size_t>(argc - 1) : 0);
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  Config config = from_args(args);
  if (!file_key.empty() && config.contains(file_key)) {
    Config file = from_file(config.require_string(file_key));
    file.merge(config);  // command line overrides the file
    config = std::move(file);
  }
  return config;
}

Config Config::from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ConfigError("cannot open config file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_text(buffer.str());
}

void Config::set(std::string key, std::string value) {
  values_.insert_or_assign(std::move(key), std::move(value));
}

bool Config::contains(std::string_view key) const noexcept {
  return values_.find(key) != values_.end();
}

std::optional<std::string> Config::get(std::string_view key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(std::string_view key,
                               std::string_view fallback) const {
  auto value = get(key);
  return value ? *value : std::string(fallback);
}

double Config::get_double(std::string_view key, double fallback) const {
  auto value = get(key);
  if (!value) return fallback;
  auto parsed = parse_double(*value);
  if (!parsed) {
    throw ConfigError("config key '" + std::string(key) +
                      "' is not a double: " + *value);
  }
  return *parsed;
}

std::int64_t Config::get_int(std::string_view key,
                             std::int64_t fallback) const {
  auto value = get(key);
  if (!value) return fallback;
  auto parsed = parse_int(*value);
  if (!parsed) {
    throw ConfigError("config key '" + std::string(key) +
                      "' is not an integer: " + *value);
  }
  return *parsed;
}

bool Config::get_bool(std::string_view key, bool fallback) const {
  auto value = get(key);
  if (!value) return fallback;
  auto parsed = parse_bool(*value);
  if (!parsed) {
    throw ConfigError("config key '" + std::string(key) +
                      "' is not a bool: " + *value);
  }
  return *parsed;
}

double Config::require_double(std::string_view key) const {
  if (!contains(key)) {
    throw ConfigError("missing required config key: " + std::string(key));
  }
  return get_double(key, 0.0);
}

std::int64_t Config::require_int(std::string_view key) const {
  if (!contains(key)) {
    throw ConfigError("missing required config key: " + std::string(key));
  }
  return get_int(key, 0);
}

std::string Config::require_string(std::string_view key) const {
  auto value = get(key);
  if (!value) {
    throw ConfigError("missing required config key: " + std::string(key));
  }
  return *value;
}

std::vector<double> Config::get_double_list(
    std::string_view key, const std::vector<double>& fallback) const {
  auto value = get(key);
  if (!value) return fallback;
  std::vector<double> out;
  for (const std::string& field : split_trimmed(*value, ',')) {
    if (field.empty()) continue;
    auto parsed = parse_double(field);
    if (!parsed) {
      throw ConfigError("config key '" + std::string(key) +
                        "' has a non-numeric element: " + field);
    }
    out.push_back(*parsed);
  }
  return out;
}

void Config::merge(const Config& other) {
  for (const auto& [key, value] : other.values()) {
    values_.insert_or_assign(key, value);
  }
}

}  // namespace mgrid::util

#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace mgrid::util {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonWriter::JsonWriter() = default;

void JsonWriter::before_value() {
  if (done_) throw std::logic_error("JsonWriter: document already complete");
  if (stack_.empty()) {
    // Top-level single value.
    return;
  }
  if (stack_.back() == Scope::kObject && !key_pending_) {
    throw std::logic_error("JsonWriter: value inside object without a key");
  }
  if (stack_.back() == Scope::kArray) {
    if (!first_in_scope_.back()) out_ += ',';
    first_in_scope_.back() = false;
  }
  key_pending_ = false;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (done_) throw std::logic_error("JsonWriter: document already complete");
  if (stack_.empty() || stack_.back() != Scope::kObject) {
    throw std::logic_error("JsonWriter: key outside an object");
  }
  if (key_pending_) throw std::logic_error("JsonWriter: duplicate key call");
  if (!first_in_scope_.back()) out_ += ',';
  first_in_scope_.back() = false;
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\":";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  stack_.push_back(Scope::kObject);
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Scope::kObject || key_pending_) {
    throw std::logic_error("JsonWriter: mismatched end_object");
  }
  out_ += '}';
  stack_.pop_back();
  first_in_scope_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  stack_.push_back(Scope::kArray);
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Scope::kArray) {
    throw std::logic_error("JsonWriter: mismatched end_array");
  }
  out_ += ']';
  stack_.pop_back();
  first_in_scope_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  before_value();
  out_ += '"';
  out_ += json_escape(text);
  out_ += '"';
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  before_value();
  if (!std::isfinite(number)) {
    out_ += "null";  // JSON has no Infinity/NaN
  } else {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.10g", number);
    out_ += buffer;
  }
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  before_value();
  out_ += std::to_string(number);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  before_value();
  out_ += std::to_string(number);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool boolean) {
  before_value();
  out_ += boolean ? "true" : "false";
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::field_array(std::string_view name,
                                    const std::vector<double>& values) {
  key(name);
  begin_array();
  for (double v : values) value(v);
  return end_array();
}

std::string JsonWriter::str() const {
  if (!done_ || !stack_.empty()) {
    throw std::logic_error("JsonWriter: document incomplete");
  }
  return out_;
}

}  // namespace mgrid::util

#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace mgrid::util {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonWriter::JsonWriter() = default;

void JsonWriter::before_value() {
  if (done_) throw std::logic_error("JsonWriter: document already complete");
  if (stack_.empty()) {
    // Top-level single value.
    return;
  }
  if (stack_.back() == Scope::kObject && !key_pending_) {
    throw std::logic_error("JsonWriter: value inside object without a key");
  }
  if (stack_.back() == Scope::kArray) {
    if (!first_in_scope_.back()) out_ += ',';
    first_in_scope_.back() = false;
  }
  key_pending_ = false;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (done_) throw std::logic_error("JsonWriter: document already complete");
  if (stack_.empty() || stack_.back() != Scope::kObject) {
    throw std::logic_error("JsonWriter: key outside an object");
  }
  if (key_pending_) throw std::logic_error("JsonWriter: duplicate key call");
  if (!first_in_scope_.back()) out_ += ',';
  first_in_scope_.back() = false;
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\":";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  stack_.push_back(Scope::kObject);
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Scope::kObject || key_pending_) {
    throw std::logic_error("JsonWriter: mismatched end_object");
  }
  out_ += '}';
  stack_.pop_back();
  first_in_scope_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  stack_.push_back(Scope::kArray);
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Scope::kArray) {
    throw std::logic_error("JsonWriter: mismatched end_array");
  }
  out_ += ']';
  stack_.pop_back();
  first_in_scope_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  before_value();
  out_ += '"';
  out_ += json_escape(text);
  out_ += '"';
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  before_value();
  if (!std::isfinite(number)) {
    out_ += "null";  // JSON has no Infinity/NaN
  } else {
    // Shortest representation that parses back to the same double, so a
    // written document compares bit-equal after a JsonValue::parse round
    // trip (the sweep --baseline A/B relies on this).
    char buffer[32];
    for (int precision = 10; precision <= 17; ++precision) {
      std::snprintf(buffer, sizeof buffer, "%.*g", precision, number);
      if (std::strtod(buffer, nullptr) == number) break;
    }
    out_ += buffer;
  }
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  before_value();
  out_ += std::to_string(number);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  before_value();
  out_ += std::to_string(number);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool boolean) {
  before_value();
  out_ += boolean ? "true" : "false";
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::field_array(std::string_view name,
                                    const std::vector<double>& values) {
  key(name);
  begin_array();
  for (double v : values) value(v);
  return end_array();
}

std::string JsonWriter::str() const {
  if (!done_ || !stack_.empty()) {
    throw std::logic_error("JsonWriter: document incomplete");
  }
  return out_;
}

// --- reader ----------------------------------------------------------------

class JsonParser {
 public:
  /// Nesting ceiling for objects/arrays. Recursive-descent parsing uses one
  /// native stack frame per level, so hostile inputs like 100k '[' would
  /// otherwise overflow the stack instead of throwing JsonParseError.
  static constexpr std::size_t kMaxDepth = 128;

  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonParseError("JSON parse error at byte " + std::to_string(pos_) +
                         ": " + what);
  }

  void skip_whitespace() noexcept {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        JsonValue value;
        value.kind_ = JsonValue::Kind::kString;
        value.string_ = parse_string();
        return value;
      }
      case 't':
      case 'f': {
        JsonValue value;
        value.kind_ = JsonValue::Kind::kBool;
        if (consume_literal("true")) {
          value.bool_ = true;
        } else if (consume_literal("false")) {
          value.bool_ = false;
        } else {
          fail("bad literal");
        }
        return value;
      }
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default:
        return parse_number();
    }
  }

  struct DepthGuard {
    explicit DepthGuard(JsonParser& parser) : parser_(parser) {
      if (++parser_.depth_ > kMaxDepth) {
        parser_.fail("nesting deeper than " + std::to_string(kMaxDepth) +
                     " levels");
      }
    }
    ~DepthGuard() { --parser_.depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;

   private:
    JsonParser& parser_;
  };

  JsonValue parse_object() {
    const DepthGuard guard(*this);
    expect('{');
    JsonValue value;
    value.kind_ = JsonValue::Kind::kObject;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      value.object_.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      const char next = peek();
      ++pos_;
      if (next == '}') return value;
      if (next != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    const DepthGuard guard(*this);
    expect('[');
    JsonValue value;
    value.kind_ = JsonValue::Kind::kArray;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.array_.push_back(parse_value());
      skip_whitespace();
      const char next = peek();
      ++pos_;
      if (next == ']') return value;
      if (next != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape digit");
            }
          }
          // UTF-8 encode the BMP code point (the writer only escapes
          // control characters, so surrogate pairs never occur in our own
          // documents; lone surrogates are passed through as-is).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    auto digits = [this] {
      std::size_t n = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) fail("expected number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("expected fraction digits");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (digits() == 0) fail("expected exponent digits");
    }
    JsonValue value;
    value.kind_ = JsonValue::Kind::kNumber;
    // The slice is a valid JSON number, which strtod parses exactly.
    const std::string slice(text_.substr(start, pos_ - start));
    value.number_ = std::strtod(slice.c_str(), nullptr);
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

JsonValue JsonValue::parse(std::string_view text) {
  return JsonParser(text).parse_document();
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) throw JsonParseError("JsonValue: not a bool");
  return bool_;
}

double JsonValue::as_double() const {
  if (kind_ != Kind::kNumber) throw JsonParseError("JsonValue: not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) throw JsonParseError("JsonValue: not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) throw JsonParseError("JsonValue: not an array");
  return array_;
}

const std::vector<JsonValue::Member>& JsonValue::as_object() const {
  if (kind_ != Kind::kObject) throw JsonParseError("JsonValue: not an object");
  return object_;
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  for (const Member& member : object_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* value = find(key);
  if (value == nullptr) {
    throw JsonParseError("JsonValue: missing key '" + std::string(key) + "'");
  }
  return *value;
}

double JsonValue::number_or(std::string_view key,
                            double fallback) const noexcept {
  const JsonValue* value = find(key);
  return value != nullptr && value->kind_ == Kind::kNumber ? value->number_
                                                           : fallback;
}

}  // namespace mgrid::util
